#include "shard/recovery.hpp"

#include <cstring>
#include <memory>
#include <utility>

#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "shard/codec.hpp"

namespace fa::shard {

namespace {

using fault::ErrCode;
using fault::Status;

// Same read-corruption seam as the monolithic loader — one name, one
// key scheme ("store.read.corrupt" by generation number), so existing
// chaos configs exercise both ladders. MAP_PRIVATE keeps flips
// process-local.
void apply_read_corruption(store::MappedFile& file, std::uint64_t key) {
  const auto& injector = fault::Injector::global();
  if (!injector.fires("store.read.corrupt", key)) return;
  unsigned char* bytes = file.mutable_data();
  const std::uint64_t flips =
      1 + injector.draw("store.read.corrupt", key ^ 0x9E3779B97F4A7C15ull) % 4;
  for (std::uint64_t i = 0; i < flips; ++i) {
    const std::uint64_t r = injector.draw("store.read.corrupt", key + 1 + i);
    bytes[r % file.size()] ^= static_cast<unsigned char>(1u << (r % 8));
  }
}

}  // namespace

fault::Result<ShardedWorld> ShardRecoveryManager::load_generation(
    const store::Generation& generation, bool* migrated) {
  if (migrated) *migrated = false;
  const std::string path = dir_.file_path(generation.filename);
  auto mapped = store::MappedFile::open(path);
  if (!mapped.ok()) return mapped.status();
  auto file =
      std::make_shared<store::MappedFile>(std::move(mapped).take());
  apply_read_corruption(*file, generation.number);

  if (file->size() < 8) {
    return Status::error(ErrCode::kTruncated, file->size(), path,
                         "image shorter than a magic");
  }
  if (std::memcmp(file->data(), store::kMagic, 8) == 0) {
    // Pre-sharding monolithic image: full-ladder decode, then migrate.
    // Delegating keeps the manifest-CRC rung and decode semantics in
    // one place; the remap is cheap next to the decode itself.
    store::RecoveryManager mono(dir_);
    auto loaded = mono.load_generation(generation);
    if (!loaded.ok()) return loaded.status();
    obs::count(obs::metrics::kShardMigrations);
    if (migrated) *migrated = true;
    store::LoadedWorld lw = std::move(loaded).take();
    return ShardedWorld::from_world(lw.world, lw.provider_risk, layout_);
  }

  // FASHRD01 (or garbage — open_sharded rejects a bad magic). Always
  // deep-verify: the per-shard payload CRCs run as a parallel sweep
  // inside open_sharded, so integrity costs one fan-out over the file
  // instead of the monolithic ladder's serial whole-file pass — and a
  // failed CRC quarantines precisely the damaged shard while the rest
  // of the geography serves. The all-or-nothing manifest rung is
  // exactly what sharding exists to relax.
  OpenOptions options;
  options.deep_verify = true;
  const void* data = file->data();
  const std::size_t size = file->size();
  auto opened = open_sharded(data, size, std::move(file), path, options);
  if (!opened.ok()) return opened.status();
  ShardedWorld world = std::move(opened).take();
  if (world.shard_count() > 0 &&
      world.quarantined_count() == world.shard_count()) {
    return Status::error(ErrCode::kIoFailure, world.shard_count(), path,
                         "every shard quarantined; nothing servable");
  }
  if (world.quarantined_count() > 0) {
    obs::count(obs::metrics::kShardDegradedServes);
  }
  return world;
}

fault::Result<RecoveredShardedWorld> ShardRecoveryManager::recover(
    store::RecoveryReport* report) {
  obs::Span span(obs::metrics::kStoreRecoverNs);
  store::Manifest manifest;
  auto from_manifest = dir_.read_manifest();
  if (from_manifest.ok()) {
    manifest = std::move(from_manifest.value());
  } else {
    obs::count(obs::metrics::kStoreManifestFallbacks);
    if (report) {
      report->manifest_fallback = true;
      report->steps.push_back(from_manifest.status());
    }
    manifest = dir_.scan();
  }
  if (manifest.generations.empty()) {
    return Status::error(ErrCode::kIoFailure, 0, dir_.path(),
                         "store holds no generations");
  }
  Status last;
  for (auto it = manifest.generations.rbegin();
       it != manifest.generations.rend(); ++it) {
    obs::count(obs::metrics::kStoreRecoverAttempts);
    bool migrated = false;
    auto loaded = load_generation(*it, &migrated);
    if (loaded.ok()) {
      obs::count(obs::metrics::kStoreRecoverLoaded);
      if (report) {
        Status okstep;
        okstep.source = dir_.file_path(it->filename);
        okstep.message = migrated ? "loaded (migrated from monolithic image)"
                                  : "loaded";
        report->steps.push_back(okstep);
      }
      return RecoveredShardedWorld{std::move(loaded).take(), *it, migrated};
    }
    obs::count(obs::metrics::kStoreRecoverRejected);
    last = loaded.status();
    if (report) report->steps.push_back(last);
  }
  last.message = "every generation rejected; newest failure: " + last.message;
  return last;
}

fault::Result<RecoveredShardedWorld> recover_sharded(
    const std::string& path, const LayoutOptions& layout,
    store::RecoveryReport* report) {
  auto dir = store::StoreDir::open(path, /*create=*/false);
  if (!dir.ok()) return dir.status();
  ShardRecoveryManager manager(std::move(dir).take(), layout);
  return manager.recover(report);
}

}  // namespace fa::shard

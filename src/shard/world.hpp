// fa::shard — a geo-sharded view of the analysis world.
//
// A ShardedWorld holds the same content as a core::World, rearranged
// for continental-scale serving: the global layers every query touches
// (WHP surface, county map, provider-risk aggregate, scenario meta)
// stay whole, while the per-transceiver columns are partitioned by a
// ShardLayout into shards. Each shard carries its columns in *local bin
// order* — a shard-local GridIndex's counting-sorted layout — so a
// shard query is a sequential sweep over contiguous spans: no gather
// through a global id permutation, no per-record decode.
//
// The spans are views. An in-memory build (from_world, delta rebuild)
// points them into owned column vectors; an opened FASHRD01 container
// points them straight into the mmap, which is what makes shard open
// O(sections) instead of O(bytes). Every shard keeps its storage alive
// through `payload`, so a successor view after a delta apply can mix
// rebuilt shards (fresh vectors) with untouched ones (the base's
// payload, by refcount) without copying either.
//
// Determinism contract (pinned by tests/shard/equivalence_test.cpp):
// for any query, scattering over shards_overlapping() and merging in
// ascending shard id yields responses byte-identical to the monolithic
// path — the shards partition the point set, every query applies its
// exact containment filters per point, and the merged aggregates are
// order-independent sums or totally-ordered rankings.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/provider_risk.hpp"
#include "core/world.hpp"
#include "fault/status.hpp"
#include "shard/layout.hpp"
#include "store/codec.hpp"

namespace fa::shard {

// Owned in-memory column storage for one shard (the from-world builder
// and the delta rebuilder produce these; an opened container does not).
struct ShardColumns {
  std::vector<std::uint32_t> ids;
  std::vector<double> xs, ys;
  std::vector<std::uint32_t> cell_start;
  std::vector<std::uint8_t> cls, provider, radio;
  std::vector<std::uint16_t> mcc, mnc;
  std::vector<std::uint32_t> cell_id;
  std::vector<std::int16_t> state;
  std::vector<std::int32_t> county;
};

// One shard: local-grid geometry plus column views in local bin order.
// Entry k is transceiver ids[k] at (xs[k], ys[k]) with hazard class
// cls[k], etc. — evaluation reads columns positionally and only ever
// *copies* ids into responses, so a corrupt id can mislabel an answer
// but never index out of bounds.
struct Shard {
  geo::BBox bounds;  // union of member tile boxes (layout extent)
  int cols = 0;
  int rows = 0;
  double inv_cw = 0.0;
  double inv_ch = 0.0;
  // Structurally or checksum-damaged at open: columns are empty and the
  // planner answers queries that touch this shard degraded.
  bool quarantined = false;

  std::span<const std::uint32_t> ids;
  std::span<const double> xs, ys;
  std::span<const std::uint32_t> cell_start;  // cols*rows+1 prefix sums
  std::span<const std::uint8_t> cls, provider, radio;
  std::span<const std::uint16_t> mcc, mnc;
  std::span<const std::uint32_t> cell_id;
  std::span<const std::int16_t> state;
  std::span<const std::int32_t> county;

  // Keeps the spans' storage alive: a ShardColumns for in-memory
  // shards, the shared MappedFile for opened containers.
  std::shared_ptr<const void> payload;

  std::size_t n() const { return ids.size(); }

  // Clamped local binning — the same expressions index::GridIndex uses,
  // over the same bounds/dims, so local cell ranges cover exactly the
  // points a local GridIndex would visit.
  int col_of(double x) const {
    const int c = static_cast<int>((x - bounds.min_x) * inv_cw);
    return c < 0 ? 0 : (c >= cols ? cols - 1 : c);
  }
  int row_of(double y) const {
    const int r = static_cast<int>((y - bounds.min_y) * inv_ch);
    return r < 0 ? 0 : (r >= rows ? rows - 1 : r);
  }

  // fn(begin, end) per row-contiguous candidate span, mirroring
  // GridIndex::query_spans — except with no bounds-intersect early-out:
  // the planner already routed this shard by exact clamped-tile
  // arithmetic, and skipping here on a floating-point bbox comparison
  // could drop an edge-clamped point the monolithic path would count.
  template <class Fn>
  void query_spans(const geo::BBox& query, Fn&& fn) const {
    if (ids.empty() || !query.valid()) return;
    const int c0 = col_of(query.min_x);
    const int c1 = col_of(query.max_x);
    const int r0 = row_of(query.min_y);
    const int r1 = row_of(query.max_y);
    for (int r = r0; r <= r1; ++r) {
      const std::size_t row = static_cast<std::size_t>(r) * cols;
      const std::uint32_t begin =
          cell_start[row + static_cast<std::size_t>(c0)];
      const std::uint32_t end =
          cell_start[row + static_cast<std::size_t>(c1) + 1];
      if (begin < end) fn(begin, end);
    }
  }
};

class ShardedWorld {
 public:
  ShardedWorld() = default;

  // Partitions a built world. The three-arg form derives a balanced
  // layout from the world's point distribution; the fixed-layout form
  // is the delta path's reference derivation (the layout of a lineage
  // never changes, only shard membership does).
  static ShardedWorld from_world(const core::World& world,
                                 const core::ProviderRiskResult& risk,
                                 const LayoutOptions& options = {});
  static ShardedWorld from_world(const core::World& world,
                                 const core::ProviderRiskResult& risk,
                                 ShardLayout layout);

  const ShardLayout& layout() const { return layout_; }
  const std::vector<Shard>& shards() const { return shards_; }
  const Shard& shard(std::size_t s) const { return shards_[s]; }
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t quarantined_count() const { return quarantined_; }

  const geo::BBox& domain() const { return layout_.domain(); }
  std::uint64_t total_points() const { return meta_.transceivers; }
  const synth::ScenarioConfig& config() const { return meta_.config; }
  std::uint64_t ingest_dropped() const { return meta_.ingest_dropped; }
  std::uint64_t ingest_repaired() const { return meta_.ingest_repaired; }
  const store::MetaFields& meta() const { return meta_; }
  // Global index grid dims, carried so materialize() can rebuild the
  // monolithic GridIndex bit-for-bit.
  int global_cols() const { return gcols_; }
  int global_rows() const { return grows_; }

  const synth::WhpModel& whp() const { return *whp_; }
  const synth::CountyMap& counties() const { return *counties_; }
  const std::shared_ptr<const synth::WhpModel>& whp_ptr() const {
    return whp_;
  }
  const std::shared_ptr<const synth::CountyMap>& counties_ptr() const {
    return counties_;
  }
  const core::ProviderRiskResult& provider_risk() const { return risk_; }

  // Reassembles the monolithic core::World: scatter every shard's
  // columns back to id order (validating that shard ids form a
  // permutation and every value is in domain — the open path skipped
  // per-record validation on purpose), rebuild the global GridIndex,
  // and cross-check the stored provider-risk aggregate. The result
  // encodes byte-identical to the world the view was built from.
  // Errors when any shard is quarantined or the columns are corrupt.
  fault::Result<core::World> materialize() const;

 private:
  friend struct Codec;    // shard/codec.cpp
  friend struct Applier;  // shard/apply.cpp

  store::MetaFields meta_;
  std::shared_ptr<const synth::WhpModel> whp_;
  std::shared_ptr<const synth::CountyMap> counties_;
  core::ProviderRiskResult risk_;
  ShardLayout layout_;
  int gcols_ = 0;
  int grows_ = 0;
  std::vector<Shard> shards_;
  std::size_t quarantined_ = 0;
};

// Builds one shard's columns for `member_ids` (ascending global ids)
// against a world's per-transceiver arrays, via a shard-local GridIndex
// over `bounds` — shared by from_world and the delta rebuilder so a
// rebuilt shard is bit-identical to a from-scratch one.
Shard build_shard(const core::World& world,
                  std::span<const std::uint32_t> member_ids,
                  const geo::BBox& bounds);

}  // namespace fa::shard

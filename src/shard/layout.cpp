#include "shard/layout.hpp"

#include <algorithm>
#include <cmath>

namespace fa::shard {

namespace {

// Same guard GridIndex uses: a degenerate domain still bins everything
// into the edge tiles instead of dividing by zero.
double inv_extent(double extent, int tiles) {
  return static_cast<double>(tiles) / std::max(extent, 1e-12);
}

int clamp_tile(int t, int n) { return std::clamp(t, 0, n - 1); }

}  // namespace

int ShardLayout::tile_col(double x) const {
  return clamp_tile(static_cast<int>((x - domain_.min_x) * inv_tw_), tiles_x_);
}

int ShardLayout::tile_row(double y) const {
  return clamp_tile(static_cast<int>((y - domain_.min_y) * inv_th_), tiles_y_);
}

geo::BBox ShardLayout::tile_box(std::uint64_t tile) const {
  const std::uint64_t tc = tile % static_cast<std::uint64_t>(tiles_x_);
  const std::uint64_t tr = tile / static_cast<std::uint64_t>(tiles_x_);
  const double tw = domain_.width() / tiles_x_;
  const double th = domain_.height() / tiles_y_;
  return {domain_.min_x + static_cast<double>(tc) * tw,
          domain_.min_y + static_cast<double>(tr) * th,
          domain_.min_x + static_cast<double>(tc + 1) * tw,
          domain_.min_y + static_cast<double>(tr + 1) * th};
}

ShardLayout ShardLayout::build(const geo::BBox& domain,
                               std::span<const geo::Vec2> points,
                               const LayoutOptions& options) {
  ShardLayout l;
  l.domain_ = domain;
  l.tiles_x_ = std::max(1, options.tiles_x);
  l.tiles_y_ = std::max(1, options.tiles_y);
  l.inv_tw_ = inv_extent(domain.width(), l.tiles_x_);
  l.inv_th_ = inv_extent(domain.height(), l.tiles_y_);

  const std::uint64_t tiles =
      static_cast<std::uint64_t>(l.tiles_x_) * l.tiles_y_;
  std::vector<std::uint64_t> tile_count(tiles, 0);
  for (const geo::Vec2& p : points) {
    ++tile_count[static_cast<std::size_t>(l.tile_row(p.y)) * l.tiles_x_ +
                 static_cast<std::size_t>(l.tile_col(p.x))];
  }

  // Greedy row-major prefix cut: exactly `goal` contiguous runs, each at
  // least one tile, each aiming for its share of the points still
  // unassigned when it starts. The adaptive target means a cut that ran
  // long (a dense metro tile is indivisible) shrinks the targets of the
  // shards after it instead of starving the last one.
  const std::uint64_t goal = static_cast<std::uint64_t>(
      std::clamp<std::uint64_t>(options.target_shards, 1, tiles));
  const std::uint64_t total = points.size();
  l.tile_shard_.assign(tiles, 0);
  l.shards_.reserve(goal);
  std::uint64_t assigned = 0;
  std::uint64_t tile = 0;
  for (std::uint64_t s = 0; s < goal; ++s) {
    ShardExtent ext;
    ext.first_tile = tile;
    const std::uint64_t shards_left = goal - s;
    const std::uint64_t tiles_left = tiles - tile;
    const std::uint64_t target =
        (total - assigned + shards_left - 1) / shards_left;
    std::uint64_t count = 0;
    std::uint64_t taken = 0;
    // Leave one tile for each shard still to come; the last shard takes
    // the whole remainder.
    const std::uint64_t max_tiles = tiles_left - (shards_left - 1);
    while (taken < max_tiles &&
           (taken == 0 || count < target || shards_left == 1)) {
      count += tile_count[tile];
      l.tile_shard_[tile] = static_cast<std::uint32_t>(s);
      ++tile;
      ++taken;
      if (shards_left > 1 && count >= target) break;
    }
    ext.tile_count = taken;
    ext.n_points = count;
    ext.bounds = l.tile_box(ext.first_tile);
    for (std::uint64_t t = 1; t < taken; ++t) {
      ext.bounds.expand(l.tile_box(ext.first_tile + t));
    }
    assigned += count;
    l.shards_.push_back(ext);
  }
  return l;
}

std::vector<std::uint32_t> ShardLayout::shards_overlapping(
    const geo::BBox& box) const {
  std::vector<std::uint32_t> out;
  if (shards_.empty() || !box.valid()) return out;
  const int c0 = tile_col(box.min_x);
  const int c1 = tile_col(box.max_x);
  const int r0 = tile_row(box.min_y);
  const int r1 = tile_row(box.max_y);
  for (int r = r0; r <= r1; ++r) {
    for (int c = c0; c <= c1; ++c) {
      const std::uint32_t s =
          tile_shard_[static_cast<std::size_t>(r) * tiles_x_ +
                      static_cast<std::size_t>(c)];
      if (out.empty() || out.back() != s) out.push_back(s);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool ShardLayout::assemble(const geo::BBox& domain, int tiles_x, int tiles_y,
                           std::vector<std::uint32_t> tile_shard,
                           std::vector<ShardExtent> extents,
                           ShardLayout& out) {
  if (tiles_x <= 0 || tiles_y <= 0 || extents.empty()) return false;
  const std::uint64_t tiles =
      static_cast<std::uint64_t>(tiles_x) * static_cast<std::uint64_t>(tiles_y);
  if (tile_shard.size() != tiles) return false;
  if (extents.size() > tiles) return false;
  if (!domain.valid()) return false;
  // Tile ranges must partition [0, tiles) contiguously in shard order,
  // and the table must agree — this is what bounds every routed lookup.
  std::uint64_t cursor = 0;
  for (std::size_t s = 0; s < extents.size(); ++s) {
    const ShardExtent& e = extents[s];
    if (e.first_tile != cursor || e.tile_count == 0) return false;
    if (e.tile_count > tiles - cursor) return false;
    for (std::uint64_t t = 0; t < e.tile_count; ++t) {
      if (tile_shard[cursor + t] != s) return false;
    }
    if (!e.bounds.valid()) return false;
    cursor += e.tile_count;
  }
  if (cursor != tiles) return false;
  out.domain_ = domain;
  out.tiles_x_ = tiles_x;
  out.tiles_y_ = tiles_y;
  out.inv_tw_ = inv_extent(domain.width(), tiles_x);
  out.inv_th_ = inv_extent(domain.height(), tiles_y);
  out.tile_shard_ = std::move(tile_shard);
  out.shards_ = std::move(extents);
  return true;
}

void local_grid_dims(std::uint64_t n_points, const geo::BBox& bounds,
                     int& cols, int& rows) {
  if (n_points == 0) {
    cols = 1;
    rows = 1;
    return;
  }
  // ~6 points per cell: fine enough that a shard-local scan touches a
  // small multiple of its hits (the global 512x256 grid carries ~41
  // points per cell at continental scale), coarse enough that
  // cell_start stays a sliver of the column payload.
  const double target_cells = static_cast<double>(n_points) / 6.0;
  const double aspect =
      std::max(bounds.width(), 1e-12) / std::max(bounds.height(), 1e-12);
  const double c = std::sqrt(target_cells * aspect);
  cols = std::clamp(static_cast<int>(std::lround(c)), 1, 4096);
  rows = std::clamp(
      static_cast<int>(std::ceil(target_cells / static_cast<double>(cols))),
      1, 4096);
}

}  // namespace fa::shard

// ShardedWorld <-> FASHRD01 container codec.
//
// encode_sharded() lays a ShardedWorld into one relocatable byte image:
// the global sections (scenario meta, WHP rasters, county layer,
// provider-risk aggregate, shard layout) followed by twelve 64-byte-
// aligned SoA sections per shard, every payload individually CRC'd in
// the section table. Deterministic: same view, same bytes.
//
// open_sharded() is NOT decode_world's mirror — that is the point. It
// validates the container frame (header/table/footer CRCs, in-bounds
// non-overlapping sections), CRC-checks and decodes only the small
// global sections, structurally checks each shard (column lengths agree
// with the layout record, cell_start is a monotone prefix-sum ending at
// n_s — the memory-safety floor for span queries), and then points the
// shard column spans straight into the caller's mapping. No per-record
// decode, no copy of the dominant payload: open cost is O(sections +
// cells), independent of the transceiver count.
//
// A shard that fails its structural checks (or, under deep_verify, its
// payload CRCs) is quarantined — empty columns, flag set — rather than
// failing the open; only an unwalkable frame, a corrupt global section,
// or a layout that lies about totals rejects the container. The
// recovery ladder (shard/recovery.hpp) turns that into shard-by-shard
// degradation instead of generation-level fallback.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "fault/status.hpp"
#include "geo/bbox.hpp"
#include "shard/world.hpp"
#include "store/store.hpp"

namespace fa::shard {

struct OpenOptions {
  // Also CRC every per-shard payload against the section table (the
  // open stays zero-copy; this adds one sequential pass over the file).
  // Off by default: serving trusts the structural floor and the
  // store's commit-time fsync; the inspector and recovery turn it on.
  bool deep_verify = false;
};

std::string encode_sharded(const ShardedWorld& sw);

// Opens a container over caller-owned bytes. `payload` is retained by
// every shard, keeping the bytes alive for the life of the view (and of
// any successor views that still share untouched shards).
fault::Result<ShardedWorld> open_sharded(const void* data, std::size_t size,
                                         std::shared_ptr<const void> payload,
                                         std::string source,
                                         const OpenOptions& options = {});
fault::Result<ShardedWorld> open_sharded(
    std::shared_ptr<const store::MappedFile> file, std::string source,
    const OpenOptions& options = {});
// mmap + open in one step.
fault::Result<ShardedWorld> open_sharded_file(const std::string& path,
                                              const OpenOptions& options = {});

// -- inspection (fa_store_inspect, tests) ------------------------------

struct ShardReport {
  std::uint32_t shard = 0;
  geo::BBox bounds;
  std::uint64_t n_points = 0;
  std::uint64_t bytes = 0;  // sum of the shard's section payloads
  bool structural_ok = false;
  bool crc_ok = false;
};

struct ContainerReport {
  std::uint64_t file_size = 0;
  std::uint64_t total_points = 0;
  std::uint64_t tiles_x = 0, tiles_y = 0;
  bool globals_ok = false;  // frame + global sections decode and CRC clean
  std::vector<ShardReport> shards;
  bool ok() const;
};

// Deep-verifying structural walk for tooling: reports per-shard bounds,
// payload bytes, and CRC status without building a serving view.
// Returns an error Status only when the frame or the global sections
// are too damaged to enumerate shards at all.
fault::Result<ContainerReport> inspect_sharded(const void* data,
                                               std::size_t size,
                                               std::string source);

}  // namespace fa::shard

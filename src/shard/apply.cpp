#include "shard/apply.hpp"

#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "exec/exec.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "store/access.hpp"

namespace fa::shard {

namespace {

// Bit-exact double comparison: the shared-shard decision must match the
// encoder, which writes raw bytes (operator== would call -0.0 == 0.0
// "unmoved" and then encode different bits).
bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

}  // namespace

// Friend of ShardedWorld: stitches a successor view out of rebuilt and
// shared shards.
struct Applier {
  static ShardedWorld advance(const ShardedWorld& base,
                              const core::World& next,
                              const core::ProviderRiskResult& risk,
                              std::vector<Shard> shards) {
    ShardedWorld sw;
    sw.meta_ = store::MetaFields{next.config(), next.ingest_dropped(),
                                 next.ingest_repaired(),
                                 next.corpus().size()};
    sw.whp_ = next.whp_ptr();
    sw.counties_ = next.counties_ptr();
    sw.risk_ = risk;
    sw.layout_ = base.layout_;
    sw.gcols_ = base.gcols_;
    sw.grows_ = base.grows_;
    sw.shards_ = std::move(shards);
    sw.quarantined_ = 0;
    return sw;
  }
};

ShardedWorld apply_update(const ShardedWorld& base,
                          const delta::ApplyResult& update,
                          ShardApplyStats* stats) {
  const core::World& next = update.world;
  const ShardLayout& layout = base.layout();
  const std::size_t shard_count = layout.shard_count();

  // Retires re-densify every surviving id; a degraded base has shards
  // whose columns cannot be diffed. Both collapse to the reference
  // derivation over the fixed layout.
  if (update.stats.retires > 0 || base.quarantined_count() > 0) {
    if (stats) {
      stats->rebuilt = shard_count;
      stats->shared = 0;
      stats->full_reshard = true;
    }
    obs::count(obs::metrics::kShardDeltaRebuilt, shard_count);
    return ShardedWorld::from_world(next, update.provider_risk,
                                    base.layout());
  }

  // Mark dirty shards: destinations of adds, both endpoints of moves,
  // and every shard overlapping a hazard-dirty region (cached classes
  // inside may have changed without anything moving).
  std::vector<std::uint8_t> dirty(shard_count, 0);
  const index::GridIndex& idx = next.txr_index();
  const std::size_t next_n = idx.size();
  const std::size_t base_n = static_cast<std::size_t>(base.total_points());
  for (std::size_t i = base_n; i < next_n; ++i) {
    dirty[layout.shard_of(idx.point(static_cast<std::uint32_t>(i)))] = 1;
  }
  for (std::size_t s = 0; s < shard_count; ++s) {
    const Shard& sh = base.shard(s);
    for (std::size_t k = 0; k < sh.n(); ++k) {
      const geo::Vec2 np = idx.point(sh.ids[k]);
      if (!same_bits(np.x, sh.xs[k]) || !same_bits(np.y, sh.ys[k])) {
        dirty[s] = 1;
        dirty[layout.shard_of(np)] = 1;
      }
    }
  }
  for (const geo::BBox& box : update.dirty_boxes) {
    for (const std::uint32_t s : layout.shards_overlapping(box)) {
      dirty[s] = 1;
    }
  }

  // Membership for dirty shards only, one routing pass in id order.
  std::vector<std::vector<std::uint32_t>> members(shard_count);
  for (std::size_t i = 0; i < next_n; ++i) {
    const std::uint32_t id = static_cast<std::uint32_t>(i);
    const std::uint32_t s = layout.shard_of(idx.point(id));
    if (dirty[s]) members[s].push_back(id);
  }

  std::vector<Shard> shards(shard_count);
  std::size_t rebuilt = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    if (dirty[s]) {
      ++rebuilt;
    } else {
      // Shared: the copied Shard holds the base payload's refcount, so
      // the columns outlive the base view.
      shards[s] = base.shard(s);
    }
  }
  exec::parallel_for(
      shard_count,
      [&](std::size_t s) {
        if (!dirty[s]) return;
        shards[s] = build_shard(next, members[s], layout.extent(s).bounds);
      },
      exec::ExecOptions{.grain = 1});

  obs::count(obs::metrics::kShardDeltaRebuilt, rebuilt);
  obs::count(obs::metrics::kShardDeltaShared, shard_count - rebuilt);
  if (stats) {
    stats->rebuilt = rebuilt;
    stats->shared = shard_count - rebuilt;
    stats->full_reshard = false;
  }
  return Applier::advance(base, next, update.provider_risk,
                          std::move(shards));
}

}  // namespace fa::shard

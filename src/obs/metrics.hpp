// Canonical metric names for the serving layer (`fa::serve`). The names
// live here rather than in serve itself so the observability namespace
// has one owner: dashboards, tests, and exporters reference these
// constants instead of re-typing strings, and a rename shows up as a
// compile error instead of a silently empty time series.
//
// Conventions (matching the organically grown exec.* / world.* names):
// dot-separated lowercase, counter names are plural events or nouns,
// histogram names end in the unit they record (.ns for nanosecond
// durations, bare nouns for magnitudes such as batch size).
#pragma once

#include <string_view>

namespace fa::obs::metrics {

// -- query front door -------------------------------------------------
// One per request admitted through Server, regardless of path.
inline constexpr std::string_view kServeQueries = "serve.queries";
// End-to-end request latency (cache lookup + evaluation), nanoseconds.
inline constexpr std::string_view kServeQueryNs = "serve.query_ns";

// -- sharded result cache ---------------------------------------------
inline constexpr std::string_view kServeCacheHits = "serve.cache.hits";
inline constexpr std::string_view kServeCacheMisses = "serve.cache.misses";
inline constexpr std::string_view kServeCacheEvictions =
    "serve.cache.evictions";
// Entries discarded by the injected-corruption seam ("serve.cache"):
// a fired entry is treated as failing its integrity check and dropped,
// so the request falls through to recomputation.
inline constexpr std::string_view kServeCacheCorruptDropped =
    "serve.cache.corrupt_dropped";
// Wholesale invalidations (one per snapshot publish).
inline constexpr std::string_view kServeCacheInvalidations =
    "serve.cache.invalidations";

// -- request batching -------------------------------------------------
// Vectorized flushes executed by a batch leader.
inline constexpr std::string_view kServeBatchFlushes = "serve.batch.flushes";
// Requests per flush (histogram; >1 means coalescing happened).
inline constexpr std::string_view kServeBatchSize = "serve.batch.size";
// Admission-queue depth observed at enqueue time (histogram).
inline constexpr std::string_view kServeQueueDepth = "serve.queue.depth";

// -- snapshot hot-swap ------------------------------------------------
// Successful epoch publishes.
inline constexpr std::string_view kServeSwapsPublished =
    "serve.swaps.published";
// Rebuilds that failed before publish (old epoch kept serving).
inline constexpr std::string_view kServeSwapsFailed = "serve.swaps.failed";
// Snapshots displaced by a publish and no longer reachable by new
// queries; they stay alive until their last in-flight reader releases.
inline constexpr std::string_view kServeSnapshotsRetired =
    "serve.snapshots.retired";
// Retired snapshots whose storage has actually been reclaimed.
inline constexpr std::string_view kServeSnapshotsReclaimed =
    "serve.snapshots.reclaimed";

// -- network front door (`fa::net`) -----------------------------------
// Connection lifecycle.
inline constexpr std::string_view kNetConnectionsAccepted =
    "net.connections.accepted";
inline constexpr std::string_view kNetConnectionsClosed =
    "net.connections.closed";
// Connections dropped because their outbox exceeded the slow-client
// cap (the reader stopped draining while responses kept landing).
inline constexpr std::string_view kNetConnectionsDroppedSlow =
    "net.connections.dropped_slow";
// Connections closed by the idle sweep (no traffic) or the read-timeout
// sweep (stalled mid-frame).
inline constexpr std::string_view kNetTimeouts = "net.timeouts";

// Traffic volume.
inline constexpr std::string_view kNetBytesIn = "net.bytes.in";
inline constexpr std::string_view kNetBytesOut = "net.bytes.out";
// Complete binary frames parsed off / written to sockets.
inline constexpr std::string_view kNetFramesIn = "net.frames.in";
inline constexpr std::string_view kNetFramesOut = "net.frames.out";
// Complete HTTP requests parsed (the shim shares all other counters).
inline constexpr std::string_view kNetHttpRequests = "net.http.requests";

// Admission control. Every parsed request lands in exactly one of:
// ok (queued and answered), bad (malformed), shed (queue full -> BUSY),
// rate_limited (token bucket empty), or shutdown_reject (draining).
inline constexpr std::string_view kNetRequestsOk = "net.requests.ok";
inline constexpr std::string_view kNetRequestsBad = "net.requests.bad";
inline constexpr std::string_view kNetSheds = "net.sheds";
inline constexpr std::string_view kNetRateLimited = "net.rate_limited";
inline constexpr std::string_view kNetShutdownRejects =
    "net.shutdown_rejects";
// Admission-queue depth observed at enqueue time (histogram).
inline constexpr std::string_view kNetQueueDepth = "net.queue.depth";

// Per-endpoint latency, enqueue to response-encoded (histograms, ns).
inline constexpr std::string_view kNetLatencyPointRiskNs =
    "net.latency.point_risk_ns";
inline constexpr std::string_view kNetLatencyBBoxNs = "net.latency.bbox_ns";
inline constexpr std::string_view kNetLatencyProviderNs =
    "net.latency.provider_ns";
inline constexpr std::string_view kNetLatencyTopKNs = "net.latency.top_k_ns";
inline constexpr std::string_view kNetLatencyScenarioNs =
    "net.latency.scenario_ns";
// Both ensemble-backed endpoints (summary + fragile-sites) share one
// histogram: they run the same driver and differ only in projection.
inline constexpr std::string_view kNetLatencyEnsembleNs =
    "net.latency.ensemble_ns";

// -- cascading-scenario ensembles (`fa::ensemble`) --------------------
// Ensemble runs started (one per run_ensemble call).
inline constexpr std::string_view kEnsembleRuns = "ensemble.runs";
// Members simulated to completion and members quarantined by the
// "ensemble.member" fault seam (every scheduled member lands in exactly
// one of the two).
inline constexpr std::string_view kEnsembleMembers = "ensemble.members";
inline constexpr std::string_view kEnsembleQuarantined =
    "ensemble.members.quarantined";
// Fires ignited and site-days of outage accumulated across all members.
inline constexpr std::string_view kEnsembleFires = "ensemble.fires";
inline constexpr std::string_view kEnsembleOutageSiteDays =
    "ensemble.outage_site_days";
// Hardening-optimizer invocations and marginal-gain evaluations (the
// lazy-greedy heap makes evaluations << candidates x budget).
inline constexpr std::string_view kEnsembleOptimizerRuns =
    "ensemble.optimizer.runs";
inline constexpr std::string_view kEnsembleOptimizerEvals =
    "ensemble.optimizer.evals";
// Span/histogram names (nanoseconds). inputs = shared-state preparation,
// run = whole ensemble, member_ns = one member end to end.
inline constexpr std::string_view kEnsembleInputsNs = "ensemble.inputs_ns";
inline constexpr std::string_view kEnsembleRunNs = "ensemble.run_ns";
inline constexpr std::string_view kEnsembleMemberNs = "ensemble.member_ns";
inline constexpr std::string_view kEnsembleOptimizeNs =
    "ensemble.optimize_ns";

// -- prepared-geometry kernels ----------------------------------------
// PreparedRing builds (one per ring: outer, hole, or multipolygon part).
inline constexpr std::string_view kGeoPreparedBuilds = "geo.prepared.builds";
// Total y-slabs allocated across builds.
inline constexpr std::string_view kGeoPreparedSlabs = "geo.prepared.slabs";
// Points pushed through a polygon-level contains_batch kernel.
inline constexpr std::string_view kGeoPreparedBatchProbes =
    "geo.prepared.batch_probes";
// Batch probes answered by the bbox-exterior or interior-box fast path
// without touching a single edge.
inline constexpr std::string_view kGeoPreparedFastPathHits =
    "geo.prepared.fastpath_hits";

// -- snapshot persistence (`fa::store`) -------------------------------
// Committed generations and bytes written through the atomic protocol.
inline constexpr std::string_view kStoreSaves = "store.saves";
inline constexpr std::string_view kStoreSaveBytes = "store.save.bytes";
// Commits that failed (torn write seam, IO failure); no generation was
// published and the manifest is untouched.
inline constexpr std::string_view kStoreSaveFailures = "store.save.failures";
// Old generations unlinked by the keep-window prune.
inline constexpr std::string_view kStorePruned = "store.pruned";
// Successful mmap loads and bytes validated+copied out of images.
inline constexpr std::string_view kStoreLoads = "store.loads";
inline constexpr std::string_view kStoreLoadBytes = "store.load.bytes";
// Recovery ladder: generations attempted, rejected (corrupt/unreadable),
// and successfully restored; manifest reads that had to fall back to a
// directory scan.
inline constexpr std::string_view kStoreRecoverAttempts =
    "store.recover.attempts";
inline constexpr std::string_view kStoreRecoverRejected =
    "store.recover.rejected";
inline constexpr std::string_view kStoreRecoverLoaded =
    "store.recover.loaded";
inline constexpr std::string_view kStoreManifestFallbacks =
    "store.manifest.fallbacks";
// Boots that exhausted every generation and fell back to a full
// rebuild (counted by the serve layer).
inline constexpr std::string_view kStoreRecoverRebuilds =
    "store.recover.rebuilds";
// Span/histogram names (nanoseconds).
inline constexpr std::string_view kStoreSaveNs = "store.save_ns";
inline constexpr std::string_view kStoreLoadNs = "store.load_ns";
inline constexpr std::string_view kStoreRecoverNs = "store.recover_ns";

// -- geo-sharded world (`fa::shard`) -----------------------------------
// Sharded views built from in-memory worlds (from_world) and opened
// from mmap'd FASHRD01 containers.
inline constexpr std::string_view kShardBuilds = "shard.builds";
inline constexpr std::string_view kShardOpens = "shard.opens";
// Shards quarantined at open / deep-verify (structural or CRC damage);
// the rest of the container keeps serving degraded.
inline constexpr std::string_view kShardQuarantined = "shard.quarantined";
// Point queries routed (counter += shards touched; one in the common
// case, more when a neighborhood disc straddles a shard boundary).
inline constexpr std::string_view kShardPointRoutes = "shard.point_routes";
// Scatter/gather fan-outs (one per bbox/top-K query) and the shards
// each touched.
inline constexpr std::string_view kShardFanouts = "shard.fanouts";
inline constexpr std::string_view kShardFanoutShards = "shard.fanout_shards";
// Queries that touched a quarantined shard and answered degraded.
inline constexpr std::string_view kShardDegradedServes =
    "shard.degraded_serves";
// Lazy monolithic-world materializations off a sharded view.
inline constexpr std::string_view kShardMaterializes = "shard.materializes";
// Delta applies routed through the sharded view: shards rebuilt vs
// payload-shared untouched.
inline constexpr std::string_view kShardDeltaRebuilt = "shard.delta.rebuilt";
inline constexpr std::string_view kShardDeltaShared = "shard.delta.shared";
// Monolithic FASNAP01 generations migrated to a sharded view by the
// recovery ladder.
inline constexpr std::string_view kShardMigrations = "shard.migrations";
// Span/histogram names (nanoseconds).
inline constexpr std::string_view kShardOpenNs = "shard.open_ns";
inline constexpr std::string_view kShardBuildNs = "shard.build_ns";
inline constexpr std::string_view kShardMaterializeNs =
    "shard.materialize_ns";

// -- live-feed incremental updates (`fa::delta`) ----------------------
// Events emitted by the synthetic feed / seen by the ingestor.
inline constexpr std::string_view kDeltaFeedEvents = "delta.feed.events";
// Ingestor dispositions: each raw event lands in exactly one.
inline constexpr std::string_view kDeltaFeedAccepted = "delta.feed.accepted";
inline constexpr std::string_view kDeltaFeedDuplicates =
    "delta.feed.duplicates";
inline constexpr std::string_view kDeltaFeedStale = "delta.feed.stale";
inline constexpr std::string_view kDeltaFeedMalformed =
    "delta.feed.malformed";
// Batches applied to produce a new epoch, and their event volume.
inline constexpr std::string_view kDeltaApplies = "delta.applies";
inline constexpr std::string_view kDeltaApplyEvents = "delta.apply.events";
// Applies that failed before producing a world (injected delta.apply
// fault, strict-policy validation error).
inline constexpr std::string_view kDeltaApplyFailures =
    "delta.apply.failures";
// WHP raster cells rewritten and transceivers re-evaluated per apply.
inline constexpr std::string_view kDeltaApplyWhpCells =
    "delta.apply.whp_cells";
inline constexpr std::string_view kDeltaApplyDirtyTxr =
    "delta.apply.dirty_txr";
// Hash-chained increment log: durable appends, append failures
// (durability degraded, serving unaffected), batches replayed on cold
// start, and chains truncated at a broken link.
inline constexpr std::string_view kDeltaLogAppends = "delta.log.appends";
inline constexpr std::string_view kDeltaLogAppendFailures =
    "delta.log.append_failures";
inline constexpr std::string_view kDeltaLogReplayed = "delta.log.replayed";
inline constexpr std::string_view kDeltaLogTruncated = "delta.log.truncated";
// Span names (nanoseconds).
inline constexpr std::string_view kDeltaFeedTickNs = "delta.feed.tick_ns";
inline constexpr std::string_view kDeltaApplyNs = "delta.apply_ns";
inline constexpr std::string_view kDeltaLogReplayNs = "delta.log.replay_ns";

}  // namespace fa::obs::metrics

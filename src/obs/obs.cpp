#include "obs/obs.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fa::obs {

namespace detail {

namespace {

bool enabled_from_env() {
  const char* env = std::getenv("FA_OBS");
  if (env == nullptr || *env == '\0') return true;
  return !(std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
           std::strcmp(env, "false") == 0 || std::strcmp(env, "OFF") == 0);
}

}  // namespace

std::atomic<bool> g_enabled{enabled_from_env()};

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

namespace {

std::uint32_t current_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

std::uint64_t next_registry_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Minimal RFC 8259 string escaping for instrument names.
void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(ch));
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

// Fixed-point microseconds with nanosecond precision; %g would lose
// sub-microsecond resolution once a trace runs for more than a second.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  out += buf;
}

}  // namespace

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

struct Registry::EventBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
};

Registry::Registry()
    : epoch_(std::chrono::steady_clock::now()), id_(next_registry_id()) {}

Registry::~Registry() = default;

namespace {

// Override installed by ScopedRegistry; null means the default instance.
std::atomic<Registry*> g_global_override{nullptr};

}  // namespace

Registry& Registry::global() {
  static Registry reg;
  Registry* override = g_global_override.load(std::memory_order_acquire);
  return override != nullptr ? *override : reg;
}

ScopedRegistry::ScopedRegistry()
    : previous_(g_global_override.load(std::memory_order_acquire)) {
  g_global_override.store(&registry_, std::memory_order_release);
}

ScopedRegistry::~ScopedRegistry() {
  g_global_override.store(previous_, std::memory_order_release);
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Histogram& Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_.emplace(std::string(name), std::make_unique<Histogram>())
              .first->second;
}

Registry::EventBuffer& Registry::local_buffer() {
  // Cache is keyed by (registry address, registry id): the id rules out
  // a stale match when a registry is destroyed and another is allocated
  // at the same address on this thread.
  thread_local Registry* t_owner = nullptr;
  thread_local std::uint64_t t_owner_id = 0;
  thread_local EventBuffer* t_buf = nullptr;
  if (t_owner != this || t_owner_id != id_) {
    auto buf = std::make_unique<EventBuffer>();
    EventBuffer* raw = buf.get();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      buffers_.push_back(std::move(buf));
    }
    t_owner = this;
    t_owner_id = id_;
    t_buf = raw;
  }
  return *t_buf;
}

void Registry::record_span(std::string_view name, std::uint64_t start_ns,
                           std::uint64_t dur_ns) {
  if (!enabled()) return;
  histogram(name).record(dur_ns);
  EventBuffer& buf = local_buffer();
  const std::lock_guard<std::mutex> lock(buf.mu);
  if (buf.events.size() >= kMaxEventsPerThread) {
    ++buf.dropped;
    return;
  }
  buf.events.push_back(TraceEvent{std::string(name), current_tid(), start_ns,
                                  dur_ns});
}

std::map<std::string, std::uint64_t> Registry::counters() const {
  std::map<std::string, std::uint64_t> out;
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) out.emplace(name, c->value());
  return out;
}

std::vector<HistogramSnapshot> Registry::histograms() const {
  std::vector<HistogramSnapshot> out;
  const std::lock_guard<std::mutex> lock(mu_);
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot snap;
    snap.name = name;
    snap.count = h->count();
    snap.sum = h->sum();
    snap.max = h->max();
    snap.buckets.resize(Histogram::kBuckets);
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      snap.buckets[static_cast<std::size_t>(i)] = h->bucket(i);
    }
    out.push_back(std::move(snap));
  }
  return out;
}

std::vector<TraceEvent> Registry::events() const {
  std::vector<TraceEvent> out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buf : buffers_) {
      const std::lock_guard<std::mutex> buf_lock(buf->mu);
      out.insert(out.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.name < b.name;
            });
  return out;
}

std::uint64_t Registry::events_dropped() const {
  std::uint64_t dropped = 0;
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    const std::lock_guard<std::mutex> buf_lock(buf->mu);
    dropped += buf->dropped;
  }
  return dropped;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, h] : histograms_) h->reset();
  for (const auto& buf : buffers_) {
    const std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->events.clear();
    buf->dropped = 0;
  }
}

std::string to_json(const Registry& registry) {
  std::string out;
  out.reserve(4096);
  out += "{\"enabled\":";
  out += enabled() ? "true" : "false";
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : registry.counters()) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out.push_back(':');
    append_u64(out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramSnapshot& h : registry.histograms()) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, h.name);
    out += ":{\"count\":";
    append_u64(out, h.count);
    out += ",\"sum_ns\":";
    append_u64(out, h.sum);
    out += ",\"max_ns\":";
    append_u64(out, h.max);
    out += ",\"mean_ns\":";
    append_double(out, h.count ? static_cast<double>(h.sum) /
                                     static_cast<double>(h.count)
                               : 0.0);
    // Sparse bucket list: [floor_ns, count] pairs for non-empty buckets.
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = h.buckets[static_cast<std::size_t>(i)];
      if (n == 0) continue;
      if (!first_bucket) out.push_back(',');
      first_bucket = false;
      out.push_back('[');
      append_u64(out, Histogram::bucket_floor(i));
      out.push_back(',');
      append_u64(out, n);
      out.push_back(']');
    }
    out += "]}";
  }
  const std::vector<TraceEvent> events = registry.events();
  out += "},\"events\":{\"recorded\":";
  append_u64(out, events.size());
  out += ",\"dropped\":";
  append_u64(out, registry.events_dropped());
  out += "}}";
  return out;
}

std::string to_chrome_trace(const Registry& registry) {
  const std::vector<TraceEvent> events = registry.events();
  std::string out;
  out.reserve(events.size() * 96 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    append_json_string(out, e.name);
    out += ",\"cat\":\"fa\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    append_u64(out, e.tid);
    out += ",\"ts\":";
    append_us(out, e.start_ns);
    out += ",\"dur\":";
    append_us(out, e.dur_ns);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace fa::obs

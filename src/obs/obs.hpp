// fa::obs — the observability substrate: monotonic counters, fixed-
// bucket latency histograms, and nestable Span scopes collected in a
// thread-safe Registry, with JSON and chrome-trace exporters.
//
// Zero dependencies (standard library only) so every other module can
// link it. Instrumentation is a runtime no-op when disabled: the FA_OBS
// environment variable ("off"/"0"/"false" disables, anything else or
// unset enables) is read once into an atomic flag, and every record
// path bails on a single relaxed load before touching a clock or a
// lock. Counter values are exact (relaxed atomic adds); what must stay
// deterministic across thread counts is the *count*, never the timing:
// counters incremented from exec chunk bodies with per-chunk totals are
// additive, so a pipeline stage reports identical record/drop counters
// at 1 and 8 threads (tests/obs/additivity_test.cpp pins this).
// Scheduling-dependent counters ("exec.steals", "exec.inline_regions")
// are the documented exceptions, excluded from that contract.
#pragma once

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fa::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

// Process-wide toggle, initialized from FA_OBS at static-init time.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
// Test/embedder override of the FA_OBS default.
void set_enabled(bool on);

// Monotonic event counter. add() is a relaxed fetch_add when obs is
// enabled and a no-op otherwise; value() is exact once the threads that
// incremented it have joined (end of a parallel region).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (enabled()) v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// Fixed power-of-two bucket histogram for nanosecond durations (or any
// u64 magnitude): bucket 0 holds zeros, bucket i holds values in
// [2^(i-1), 2^i). 40 buckets span 1 ns .. ~9 minutes; larger values
// clamp into the last bucket. Lock-free, exact count/sum/max.
class Histogram {
 public:
  static constexpr int kBuckets = 40;

  void record(std::uint64_t value) {
    if (!enabled()) return;
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
  }
  std::uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  // Smallest value landing in bucket i.
  static std::uint64_t bucket_floor(int i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }
  static int bucket_index(std::uint64_t value) {
    const int w = std::bit_width(value);
    return w < kBuckets ? w : kBuckets - 1;
  }
  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

// One completed Span, for the chrome-trace exporter. Timestamps are
// nanoseconds on the owning Registry's monotonic clock; tid is a small
// sequential id assigned per OS thread at first use.
struct TraceEvent {
  std::string name;
  std::uint32_t tid = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::vector<std::uint64_t> buckets;  // kBuckets entries
};

// Thread-safe name → instrument registry. Lookup takes a mutex and
// returns a reference that stays valid for the registry's lifetime
// (reset() zeroes values but never removes entries), so hot paths can
// cache the reference outside their loops. Trace events append to
// per-thread buffers (capped at kMaxEventsPerThread each; overflow is
// counted, not resized) and merge at export time.
class Registry {
 public:
  static constexpr std::size_t kMaxEventsPerThread = 16384;

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Nanoseconds on the monotonic clock since this registry was created.
  std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  // Records a completed scope: duration lands in histogram(name) and a
  // TraceEvent is appended to the calling thread's buffer.
  void record_span(std::string_view name, std::uint64_t start_ns,
                   std::uint64_t dur_ns);

  // Snapshots (each takes the registry lock; values are relaxed reads).
  std::map<std::string, std::uint64_t> counters() const;
  std::vector<HistogramSnapshot> histograms() const;
  // Merged across threads, ordered by (start, tid, name).
  std::vector<TraceEvent> events() const;
  std::uint64_t events_dropped() const;

  // Zeroes every counter/histogram and clears trace buffers; references
  // handed out earlier remain valid.
  void reset();

  // The process-wide registry all library instrumentation records into
  // (the default instance, unless a ScopedRegistry is active).
  static Registry& global();

  // Process-unique instance id. Code that caches instrument references
  // across calls must key the cache on (address, id): successive
  // ScopedRegistry instances can reuse an address, so the pointer alone
  // cannot detect the swap.
  std::uint64_t id() const { return id_; }

 private:
  struct EventBuffer;
  EventBuffer& local_buffer();

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::vector<std::unique_ptr<EventBuffer>> buffers_;
  std::chrono::steady_clock::time_point epoch_;
  std::uint64_t id_;  // process-unique, guards thread-local buffer reuse
};

// Swaps Registry::global() for a fresh registry for a scope, so a test
// can assert on exact counter values without bleed from instrumentation
// recorded earlier in the same binary (the process-wide registry's
// reset() zeroes history but not concurrently-running recorders). Like
// fault::ScopedInjector, the swap is not synchronized with running
// parallel regions — install/restore only between them, from one
// thread. Code that cached instrument references out of the previous
// registry keeps recording there; per-call paths (obs::count, Span,
// per-region handle resolution in fa::exec) pick up the scoped registry
// immediately.
class ScopedRegistry {
 public:
  ScopedRegistry();
  ~ScopedRegistry();
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

  Registry& registry() { return registry_; }

 private:
  Registry registry_;
  Registry* previous_;
};

// RAII timing scope. Construction reads the clock only when obs is
// enabled; destruction (or stop()) records into histogram(name) and the
// trace buffer. Nesting works naturally — the chrome-trace view stacks
// events by time containment per thread.
class Span {
 public:
  explicit Span(std::string_view name) : Span(name, Registry::global()) {}
  Span(std::string_view name, Registry& registry) {
    if (!enabled()) return;
    registry_ = &registry;
    name_ = name;
    start_ = registry.now_ns();
  }
  ~Span() { stop(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void stop() {
    if (registry_ == nullptr) return;
    registry_->record_span(name_, start_, registry_->now_ns() - start_);
    registry_ = nullptr;
  }

 private:
  Registry* registry_ = nullptr;
  std::string name_;
  std::uint64_t start_ = 0;
};

// Convenience: bump a named counter in the global registry. Callers on
// hot loops should cache `Registry::global().counter(name)` instead —
// this does a locked map lookup per call.
inline void count(std::string_view name, std::uint64_t n = 1) {
  if (enabled()) Registry::global().counter(name).add(n);
}

// {"counters":{...},"histograms":{...},"events":{...}} — self-contained
// serializer (obs depends on nothing, including fa_io); the output is
// strict RFC 8259 and round-trips through io::parse_json.
std::string to_json(const Registry& registry = Registry::global());

// Chrome trace-event JSON ({"traceEvents":[...]}) loadable in
// chrome://tracing or https://ui.perfetto.dev. Timestamps microseconds.
std::string to_chrome_trace(const Registry& registry = Registry::global());

}  // namespace fa::obs

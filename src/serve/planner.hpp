// Scatter/gather query planner over a geo-sharded world (fa::shard).
//
// The planner is the sharded twin of the monolithic evaluate() bodies
// in snapshot.cpp, with one routing contract per query family:
//   * point queries touch the global rasters only; a neighborhood scan
//     routes through layout().shards_overlapping(disc bbox) — exactly
//     one shard unless the disc straddles a tile boundary;
//   * bbox and top-K queries scatter across the overlapping shard set
//     on fa::exec (one task per shard, each writing only its own
//     partial slot) and merge the partials serially in ascending shard
//     id;
//   * provider exposure reads the container's provider-risk aggregate,
//     O(1) like the monolithic path.
//
// Determinism contract (pinned by tests/shard/equivalence_test.cpp):
// responses are byte-identical to the monolithic evaluate() at any
// thread count. The shards partition the point set, every per-point
// filter (bbox containment, haversine radius) is the same expression
// over the same doubles, the merged tallies are order-independent
// integer sums, and the top-K comparator is a strict total order
// (txr id tiebreak), so merge order cannot leak into any response byte.
//
// Quarantined shards are skipped and counted (shard.degraded_serves):
// a degraded container serves the surviving geography instead of
// failing the query — the responses are then *not* byte-identical to
// an undamaged world, by design.
#pragma once

#include <algorithm>
#include <cmath>
#include <numbers>

#include "geo/bbox.hpp"
#include "geo/geodesy.hpp"
#include "geo/lonlat.hpp"
#include "serve/types.hpp"
#include "shard/world.hpp"

namespace fa::serve {

namespace detail {

// Lon/lat box enclosing the great-circle disc (center, radius_m); the
// exact haversine test runs on the candidates it yields. cos(lat)
// shrinks toward the poles, so widen longitude by the worst latitude in
// the box. Shared by the monolithic and sharded paths so both scan the
// same candidate box — the byte-identity contract starts here.
inline geo::BBox disc_bbox(geo::LonLat center, double radius_m) {
  const double dlat = radius_m / geo::meters_per_deg_lat();
  const double worst_lat =
      std::min(89.0, std::max(std::abs(center.lat - dlat),
                              std::abs(center.lat + dlat)));
  const double dlon = radius_m / geo::meters_per_deg_lon(worst_lat);
  return {center.lon - dlon, center.lat - dlat, center.lon + dlon,
          center.lat + dlat};
}

// Exact disc membership with a trig-free fast path over the shard SoA
// columns. The haversine distance is
//
//   d = 2R * asin(sqrt(min(1, h))),
//   h = sin^2(dphi/2) + cos(phi_c) cos(phi_p) sin^2(dlam/2),
//
// and asin/sqrt are monotone, so `d <= r` is exactly `h <= sin^2(r/2R)`.
// Over the disc's bounding box the cos product is bracketed by
// [cos_lo^2, cos_hi^2], and t^2 (1 - t^2/3) <= sin^2(t) <= t^2 brackets
// both sine terms, so about ten flops yield provable lower and upper
// bounds on h. Candidates whose bounds land clear of the threshold —
// everything but a thin annulus around the disc edge — are classified
// without evaluating a transcendental; the annulus falls through to the
// exact haversine_m call, so every accept/reject decision is
// bit-identical to the monolithic evaluator's `haversine_m(...) > r`
// (the equivalence tests pin this). The 1e-9 radius guards on the two
// thresholds dwarf floating-point noise in the closed-form bounds
// (~1e-14 relative), keeping both bounds conservative.
class DiscFilter {
 public:
  DiscFilter(geo::LonLat center, double radius_m, const geo::BBox& box)
      : lon_(center.lon), lat_(center.lat) {
    const double half = radius_m / (2.0 * geo::kEarthRadiusM);
    // Past a quarter turn sin is no longer monotone in the half-angle;
    // no real neighborhood is 20,000 km, but stay exact if one is.
    exact_only_ = !(half * (1.0 + 1e-9) < std::numbers::pi / 2.0);
    const double sin_in = std::sin(half * (1.0 - 1e-9));
    const double sin_out = std::sin(half * (1.0 + 1e-9));
    h_in_ = sin_in * sin_in;
    h_out_ = sin_out * sin_out;
    // cos(lat) over the box's latitude band: even and decreasing in
    // |lat|, so the band max is at the latitude nearest the equator
    // (1 when the band crosses it) and the min at the farthest.
    const double lo = std::max(box.min_y, -90.0) * geo::kDegToRad;
    const double hi = std::min(box.max_y, 90.0) * geo::kDegToRad;
    const double far_lat = std::max(std::abs(lo), std::abs(hi));
    const double near_lat =
        (lo <= 0.0 && hi >= 0.0) ? 0.0 : std::min(std::abs(lo), std::abs(hi));
    const double cos_hi = std::cos(near_lat);
    const double cos_lo = std::max(0.0, std::cos(far_lat));
    cos2_hi_ = cos_hi * cos_hi;
    cos2_lo_ = cos_lo * cos_lo;
  }

  // -1: provably outside the disc. +1: provably inside. 0: within the
  // boundary annulus — the caller must run the exact haversine test.
  int classify(double plon, double plat) const {
    if (exact_only_) return 0;
    const double t1 = (plat - lat_) * (0.5 * geo::kDegToRad);
    const double t2 = (plon - lon_) * (0.5 * geo::kDegToRad);
    const double a1 = t1 * t1;
    const double a2 = t2 * t2;
    if (a1 + cos2_hi_ * a2 <= h_in_) return 1;
    // max(0, .) keeps the cubic lower bound valid out to a half turn.
    const double low = a1 * std::max(0.0, 1.0 - a1 * (1.0 / 3.0)) +
                       cos2_lo_ * a2 * std::max(0.0, 1.0 - a2 * (1.0 / 3.0));
    if (low > h_out_) return -1;
    return 0;
  }

 private:
  double lon_;
  double lat_;
  double h_in_;
  double h_out_;
  double cos2_hi_;
  double cos2_lo_;
  bool exact_only_;
};

}  // namespace detail

PointRiskResponse evaluate_sharded(const shard::ShardedWorld& sw, Epoch epoch,
                                   const PointRiskQuery& q);
BBoxAggregateResponse evaluate_sharded(const shard::ShardedWorld& sw,
                                       Epoch epoch,
                                       const BBoxAggregateQuery& q);
ProviderExposureResponse evaluate_sharded(const shard::ShardedWorld& sw,
                                          Epoch epoch,
                                          const ProviderExposureQuery& q);
TopKSitesResponse evaluate_sharded(const shard::ShardedWorld& sw, Epoch epoch,
                                   const TopKSitesQuery& q);

}  // namespace fa::serve

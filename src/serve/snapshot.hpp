// Immutable world snapshots and the RCU-style store that hot-swaps them.
//
// A Snapshot is everything one query epoch reads: the built World (WHP
// surface, corpus, spatial index, per-transceiver caches) plus the
// aggregates that make O(1) answers possible (per-provider exposure).
// After build() returns, a Snapshot is never mutated — queries touch it
// through const references only, so any number of reader threads share
// one snapshot without synchronization.
//
// The SnapshotStore publishes new epochs atomically: readers acquire()
// a shared_ptr to the current snapshot (one small critical section),
// while publish() swaps the pointer and retires the old epoch. A
// retired snapshot stays alive exactly until its last in-flight reader
// drops the reference — the shared_ptr control block is the epoch
// reclamation mechanism — and the store's retired-list accounting makes
// that reclamation observable (the swap-race test asserts retired
// snapshots actually die once readers drain).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/provider_risk.hpp"
#include "core/world.hpp"
#include "fault/diagnostics.hpp"
#include "serve/types.hpp"
#include "shard/layout.hpp"

namespace fa::shard {
class ShardedWorld;
}  // namespace fa::shard

namespace fa::serve {

// Fault-injection seam: armed as "serve.snapshot.build" (keyed by the
// epoch under construction), a fired build returns its Status instead
// of a snapshot, and the store keeps serving the previous epoch.
inline constexpr std::string_view kSnapshotBuildSite = "serve.snapshot.build";

class Snapshot {
 public:
  // Builds the world for `config` and precomputes the query-side
  // aggregates. Any ingest failure (per `policy`) or injected
  // serve.snapshot.build fault surfaces as the error Status.
  static fault::Result<std::shared_ptr<const Snapshot>> build(
      const synth::ScenarioConfig& config, Epoch epoch,
      fault::RecoveryPolicy policy = fault::RecoveryPolicy::kQuarantine);

  // Wraps an already-built world (restored from the snapshot store) as
  // an epoch. The provider-risk aggregate is recomputed from the world,
  // exactly like build() — so a loaded epoch is indistinguishable from
  // a built one, which is what the byte-identity tests pin.
  static std::shared_ptr<const Snapshot> adopt(core::World world, Epoch epoch);

  // Wraps a world whose provider-risk aggregate is already known — the
  // delta path, where the aggregate was maintained incrementally
  // alongside the world and a recompute would throw away exactly the
  // work the incremental path saved. The aggregate must equal
  // run_provider_risk(world); the delta equivalence tests pin that.
  static std::shared_ptr<const Snapshot> adopt(
      core::World world, Epoch epoch, core::ProviderRiskResult provider_risk);

  // Wraps a geo-sharded view (fa::shard) as an epoch. Interactive
  // queries route through the scatter/gather planner (planner.cpp) and
  // never touch a monolithic World; world() materializes one lazily for
  // the paths that need id-ordered arrays (ensemble queries, delta
  // applies). The second overload is for callers that already hold the
  // monolithic world the view was sharded from (rebuilds, delta
  // applies) — passing it skips the materialization entirely.
  static std::shared_ptr<const Snapshot> adopt_sharded(
      shard::ShardedWorld sharded, Epoch epoch);
  static std::shared_ptr<const Snapshot> adopt_sharded(
      shard::ShardedWorld sharded, Epoch epoch, core::World world);

  // build()'s sharded twin: same injection seam, same diagnostics
  // plumbing, but the built world is partitioned by `layout` and the
  // snapshot serves through the planner. The monolithic world is
  // retained (it was just built — re-materializing it later would be
  // pure waste), so ensemble queries and delta applies stay cheap.
  static fault::Result<std::shared_ptr<const Snapshot>> build_sharded(
      const synth::ScenarioConfig& config, Epoch epoch,
      fault::RecoveryPolicy policy = fault::RecoveryPolicy::kQuarantine,
      const shard::LayoutOptions& layout = {});

  Epoch epoch() const { return epoch_; }
  // Monolithic world backing this epoch. For a sharded snapshot opened
  // zero-copy this *materializes* on first use (validated scatter back
  // to id order, counted as shard.materializes) and caches the result
  // for the snapshot's lifetime; a view too damaged to materialize
  // (quarantined shards) throws fault::IoError. Sharded callers on the
  // interactive query path never get here — the planner answers off
  // the shard columns directly.
  const core::World& world() const;
  // Null for monolithic snapshots.
  const shard::ShardedWorld* sharded() const { return sharded_.get(); }
  const core::ProviderRiskResult& provider_risk() const {
    return provider_risk_;
  }
  // Scenario config without forcing a sharded snapshot to materialize.
  const synth::ScenarioConfig& config() const;
  const fault::Diagnostics& diagnostics() const { return diagnostics_; }

 private:
  Snapshot(core::World world, Epoch epoch);
  Snapshot(core::World world, Epoch epoch,
           core::ProviderRiskResult provider_risk);
  Snapshot(std::shared_ptr<const shard::ShardedWorld> sharded, Epoch epoch,
           std::optional<core::World> world);

  // Engaged at construction for monolithic snapshots; lazily engaged
  // (once_flag-guarded) for sharded ones.
  mutable std::once_flag materialize_once_;
  mutable std::optional<core::World> world_;
  std::shared_ptr<const shard::ShardedWorld> sharded_;
  Epoch epoch_;
  core::ProviderRiskResult provider_risk_;
  fault::Diagnostics diagnostics_;
};

// -- query evaluation --------------------------------------------------
// Pure functions of (snapshot, query); the Server adds caching and
// batching on top. Responses are deterministic: same snapshot content,
// same query, same bytes — the property the cache equivalence tests pin.
PointRiskResponse evaluate(const Snapshot& snap, const PointRiskQuery& q);
BBoxAggregateResponse evaluate(const Snapshot& snap,
                               const BBoxAggregateQuery& q);
ProviderExposureResponse evaluate(const Snapshot& snap,
                                  const ProviderExposureQuery& q);
TopKSitesResponse evaluate(const Snapshot& snap, const TopKSitesQuery& q);
// The ensemble pair runs a whole seeded scenario ensemble against the
// snapshot's world (fa::ensemble) — expensive on a cache miss, but a
// pure function of (snapshot content, members, seed) like every other
// evaluate, so the cache and the equivalence tests treat it identically.
// Implemented in ensemble_eval.cpp.
EnsembleSummaryResponse evaluate(const Snapshot& snap,
                                 const EnsembleSummaryQuery& q);
TopKFragileSitesResponse evaluate(const Snapshot& snap,
                                  const TopKFragileSitesQuery& q);

// RCU-style current-snapshot holder. acquire() and publish() are safe
// from any thread; the critical sections are pointer-sized.
class SnapshotStore {
 public:
  // Current snapshot, pinned for as long as the caller holds the
  // returned pointer. Null only before the first publish.
  std::shared_ptr<const Snapshot> acquire() const;

  // Atomically makes `next` the current snapshot. The displaced epoch
  // moves to the retired list; in-flight readers keep it alive until
  // they release. Returns the displaced snapshot's epoch (0 if none).
  Epoch publish(std::shared_ptr<const Snapshot> next);

  Epoch current_epoch() const;

  // Retired-epoch accounting (monotonic): how many snapshots have been
  // displaced, and how many of those have since been reclaimed (their
  // last reference dropped). reclaimed() sweeps expired entries.
  std::uint64_t retired() const;
  std::uint64_t reclaimed() const;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const Snapshot> current_;
  // Displaced epochs, held weakly: an expired entry is a reclaimed one.
  mutable std::vector<std::weak_ptr<const Snapshot>> retired_;
  mutable std::uint64_t retired_total_ = 0;
  mutable std::uint64_t reclaimed_total_ = 0;
};

}  // namespace fa::serve

// Canonical byte layout for the serve request/response model — ONE
// serializer shared by cache fingerprinting and the network codec, so
// hashing and encoding can never drift.
//
// Every encodable value has exactly one canonical payload:
//
//   payload := u8 version (kWireVersion)
//              u8 type tag (Tag)
//              body (little-endian fixed-width fields; see wire.cpp)
//
// Doubles are canonicalized on write: -0.0 is normalized to +0.0 (the
// two compare equal but differ in bit pattern, the old fingerprint
// footgun), then serialized via their bit pattern. NaNs pass through
// bit-exactly. A query's fingerprint is FNV-1a over its canonical
// payload, so two queries fingerprint equal iff their canonical
// encodings are byte-identical.
//
// The same payloads travel the wire: fa::net frames are a u32 length
// prefix followed by one canonical payload (plus an error payload type
// the serving model itself never produces — see net/protocol.hpp).
// decode_request/decode_response are total functions returning
// fault::Result — malformed bytes (truncated, trailing garbage, bad
// tag, out-of-domain enum, absurd counts) come back as a Status, never
// UB; tests/net/codec_test.cpp fuzzes them through fa::fault.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "fault/status.hpp"
#include "serve/types.hpp"

namespace fa::serve::wire {

inline constexpr std::uint8_t kWireVersion = 1;

// Payload type tags. Requests are 0x01..; responses mirror them with
// the high bit set; 0xEE is the net-layer error payload (encoded and
// decoded in fa::net, reserved here so the tag space has one owner).
enum class Tag : std::uint8_t {
  kPointRiskQuery = 0x01,
  kBBoxAggregateQuery = 0x02,
  kProviderExposureQuery = 0x03,
  kTopKSitesQuery = 0x04,
  kEnsembleSummaryQuery = 0x05,
  kTopKFragileSitesQuery = 0x06,
  kPointRiskResponse = 0x81,
  kBBoxAggregateResponse = 0x82,
  kProviderExposureResponse = 0x83,
  kTopKSitesResponse = 0x84,
  kEnsembleSummaryResponse = 0x85,
  kTopKFragileSitesResponse = 0x86,
  kError = 0xEE,
};

// Largest TopKSitesQuery::k the decoder accepts; bounds the response
// payload (~30 KiB) under the net layer's 64 KiB frame cap.
inline constexpr std::uint32_t kMaxTopK = 1024;

// Largest ensemble the decoder admits: each member is a full cascading
// season simulation, so this caps the compute one request can demand
// (the cache makes repeats cheap; the first run still has to happen).
inline constexpr std::uint32_t kMaxEnsembleMembers = 4096;
// Exceedance rows a summary response may carry.
inline constexpr std::uint32_t kMaxExceedanceRows = 256;

namespace detail {

// Byte sinks the canonical writers are templated over: std::string for
// wire encoding, FixedSink for zero-allocation fingerprinting (every
// query payload is <= 64 bytes).
struct FixedSink {
  std::array<unsigned char, 64> buf;
  std::size_t n = 0;
  void append(const void* p, std::size_t len) {
    std::memcpy(buf.data() + n, p, len);
    n += len;
  }
  std::string_view view() const {
    return {reinterpret_cast<const char*>(buf.data()), n};
  }
};

inline void sink_append(std::string& s, const void* p, std::size_t len) {
  s.append(static_cast<const char*>(p), len);
}
inline void sink_append(FixedSink& s, const void* p, std::size_t len) {
  s.append(p, len);
}

template <class Sink>
void put_u8(Sink& s, std::uint8_t v) {
  sink_append(s, &v, 1);
}

template <class Sink>
void put_u16(Sink& s, std::uint16_t v) {
  const unsigned char b[2] = {static_cast<unsigned char>(v),
                              static_cast<unsigned char>(v >> 8)};
  sink_append(s, b, 2);
}

template <class Sink>
void put_u32(Sink& s, std::uint32_t v) {
  unsigned char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  sink_append(s, b, 4);
}

template <class Sink>
void put_u64(Sink& s, std::uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  sink_append(s, b, 8);
}

template <class Sink>
void put_i32(Sink& s, std::int32_t v) {
  put_u32(s, static_cast<std::uint32_t>(v));
}

// The one canonicalization point: -0.0 normalizes to +0.0 before the
// bit pattern is written.
template <class Sink>
void put_f64(Sink& s, double v) {
  if (v == 0.0) v = 0.0;
  put_u64(s, std::bit_cast<std::uint64_t>(v));
}

template <class Sink>
void put_header(Sink& s, Tag tag) {
  put_u8(s, kWireVersion);
  put_u8(s, static_cast<std::uint8_t>(tag));
}

// -- canonical payloads, one writer per type ---------------------------

template <class Sink>
void put_payload(Sink& s, const PointRiskQuery& q) {
  put_header(s, Tag::kPointRiskQuery);
  put_f64(s, q.point.lon);
  put_f64(s, q.point.lat);
  put_f64(s, q.neighborhood_m);
}

template <class Sink>
void put_payload(Sink& s, const BBoxAggregateQuery& q) {
  put_header(s, Tag::kBBoxAggregateQuery);
  put_f64(s, q.bbox.min_x);
  put_f64(s, q.bbox.min_y);
  put_f64(s, q.bbox.max_x);
  put_f64(s, q.bbox.max_y);
}

template <class Sink>
void put_payload(Sink& s, const ProviderExposureQuery& q) {
  put_header(s, Tag::kProviderExposureQuery);
  put_u8(s, static_cast<std::uint8_t>(q.provider));
}

template <class Sink>
void put_payload(Sink& s, const TopKSitesQuery& q) {
  put_header(s, Tag::kTopKSitesQuery);
  put_f64(s, q.center.lon);
  put_f64(s, q.center.lat);
  put_f64(s, q.radius_m);
  put_u32(s, q.k);
}

template <class Sink>
void put_payload(Sink& s, const EnsembleSummaryQuery& q) {
  put_header(s, Tag::kEnsembleSummaryQuery);
  put_u32(s, q.members);
  put_u64(s, q.seed);
}

template <class Sink>
void put_payload(Sink& s, const TopKFragileSitesQuery& q) {
  put_header(s, Tag::kTopKFragileSitesQuery);
  put_u32(s, q.members);
  put_u64(s, q.seed);
  put_u32(s, q.k);
}

template <class Sink>
void put_payload(Sink& s, const Request& q) {
  std::visit([&s](const auto& query) { put_payload(s, query); }, q);
}

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

inline std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = kFnvOffset;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace detail

// -- wire codec (implemented in wire.cpp) ------------------------------

// Canonical payload bytes (version + tag + body) for one value.
std::string encode(const Request& request);
std::string encode(const Response& response);

// Inverse of encode. Errors (source "serve.wire"): kTruncated when the
// payload ends mid-field, kParse on an unknown/mismatched tag or
// version, kOutOfRange on out-of-domain enums or counts, kSchema on
// trailing bytes after a complete body.
fault::Result<Request> decode_request(std::string_view payload);
fault::Result<Response> decode_response(std::string_view payload);

// Tag of a payload without decoding it (0 when empty).
inline std::uint8_t peek_tag(std::string_view payload) {
  return payload.size() >= 2 ? static_cast<std::uint8_t>(payload[1]) : 0;
}

}  // namespace fa::serve::wire

namespace fa::serve {

// FNV-1a over the query's canonical wire payload. One definition for
// every query shape — the typed overloads the cache and server call are
// this same template, so the fingerprint can never drift from the
// encoding.
template <class Q>
  requires std::is_same_v<Q, PointRiskQuery> ||
           std::is_same_v<Q, BBoxAggregateQuery> ||
           std::is_same_v<Q, ProviderExposureQuery> ||
           std::is_same_v<Q, TopKSitesQuery> ||
           std::is_same_v<Q, EnsembleSummaryQuery> ||
           std::is_same_v<Q, TopKFragileSitesQuery> ||
           std::is_same_v<Q, Request>
std::uint64_t fingerprint(const Q& q) {
  wire::detail::FixedSink sink;
  wire::detail::put_payload(sink, q);
  return wire::detail::fnv1a(sink.view());
}

}  // namespace fa::serve

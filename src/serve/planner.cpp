#include "serve/planner.hpp"

#include <cstdint>
#include <vector>

#include "exec/exec.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "synth/hazard.hpp"

namespace fa::serve {

namespace {

// One exec task per shard: fan-outs are coarse (a shard is millions of
// points at continental scale), and min_parallel keeps the single-shard
// common case on the calling thread instead of waking the pool.
constexpr exec::ExecOptions kFanOptions{.grain = 1, .min_parallel = 2};

// Scatters `fn(shard_id, slot)` across the overlapping shard set and
// returns true when any overlapping shard was quarantined (the caller
// answered degraded). Slots are per-shard, so the parallel phase writes
// disjoint memory; the caller merges them in ascending shard id.
template <class Fn>
bool scatter(const shard::ShardedWorld& sw,
             const std::vector<std::uint32_t>& touched, Fn&& fn) {
  exec::parallel_for(
      touched.size(),
      [&](std::size_t i) {
        const shard::Shard& sh = sw.shard(touched[i]);
        if (!sh.quarantined) fn(sh, i);
      },
      kFanOptions);
  bool degraded = false;
  for (const std::uint32_t s : touched) {
    if (sw.shard(s).quarantined) degraded = true;
  }
  if (degraded) obs::count(obs::metrics::kShardDegradedServes);
  return degraded;
}

}  // namespace

PointRiskResponse evaluate_sharded(const shard::ShardedWorld& sw, Epoch epoch,
                                   const PointRiskQuery& q) {
  const synth::WhpModel& whp = sw.whp();
  PointRiskResponse r;
  r.epoch = epoch;
  r.whp = whp.class_at(q.point);
  r.at_risk = synth::whp_at_risk(r.whp);
  r.urban = whp.is_urban(q.point);
  r.roadside = whp.is_road(q.point);
  r.state = whp.state_at(q.point);
  r.county = sw.counties().county_of(q.point);
  if (q.neighborhood_m > 0.0) {
    const geo::BBox box = detail::disc_bbox(q.point, q.neighborhood_m);
    const std::vector<std::uint32_t> touched =
        sw.layout().shards_overlapping(box);
    obs::count(obs::metrics::kShardPointRoutes, touched.size());
    const detail::DiscFilter disc(q.point, q.neighborhood_m, box);
    bool degraded = false;
    // Ascending shard order; the tallies are order-independent sums, so
    // the order is a readability convention, not a correctness need.
    for (const std::uint32_t s : touched) {
      const shard::Shard& sh = sw.shard(s);
      if (sh.quarantined) {
        degraded = true;
        continue;
      }
      sh.query_spans(box, [&](std::uint32_t b, std::uint32_t e) {
        for (std::uint32_t k = b; k < e; ++k) {
          const geo::Vec2 p{sh.xs[k], sh.ys[k]};
          if (!box.contains(p)) continue;
          const int side = disc.classify(p.x, p.y);
          if (side < 0) continue;
          if (side == 0 &&
              geo::haversine_m(q.point, geo::LonLat::from_vec(p)) >
                  q.neighborhood_m) {
            continue;
          }
          ++r.nearby_txr;
          if (synth::whp_at_risk(static_cast<synth::WhpClass>(sh.cls[k]))) {
            ++r.nearby_at_risk;
          }
        }
      });
    }
    if (degraded) obs::count(obs::metrics::kShardDegradedServes);
  }
  return r;
}

BBoxAggregateResponse evaluate_sharded(const shard::ShardedWorld& sw,
                                       Epoch epoch,
                                       const BBoxAggregateQuery& q) {
  BBoxAggregateResponse r;
  r.epoch = epoch;
  const std::vector<std::uint32_t> touched =
      sw.layout().shards_overlapping(q.bbox);
  obs::count(obs::metrics::kShardFanouts);
  obs::count(obs::metrics::kShardFanoutShards, touched.size());
  std::vector<BBoxAggregateResponse> partial(touched.size());
  scatter(sw, touched, [&](const shard::Shard& sh, std::size_t i) {
    BBoxAggregateResponse& p = partial[i];
    sh.query_spans(q.bbox, [&](std::uint32_t b, std::uint32_t e) {
      for (std::uint32_t k = b; k < e; ++k) {
        if (!q.bbox.contains({sh.xs[k], sh.ys[k]})) continue;
        const auto c = static_cast<synth::WhpClass>(sh.cls[k]);
        ++p.transceivers;
        ++p.by_class[static_cast<std::size_t>(c)];
        if (synth::whp_at_risk(c)) ++p.at_risk;
        ++p.by_provider[sh.provider[k]];
      }
    });
  });
  // Gather in ascending shard id (touched is ascending by contract).
  for (const BBoxAggregateResponse& p : partial) {
    r.transceivers += p.transceivers;
    r.at_risk += p.at_risk;
    for (std::size_t c = 0; c < r.by_class.size(); ++c) {
      r.by_class[c] += p.by_class[c];
    }
    for (std::size_t v = 0; v < r.by_provider.size(); ++v) {
      r.by_provider[v] += p.by_provider[v];
    }
  }
  return r;
}

ProviderExposureResponse evaluate_sharded(const shard::ShardedWorld& sw,
                                          Epoch epoch,
                                          const ProviderExposureQuery& q) {
  const core::ProviderRiskRow& row =
      sw.provider_risk().rows[static_cast<std::size_t>(q.provider)];
  ProviderExposureResponse r;
  r.epoch = epoch;
  r.provider = q.provider;
  r.fleet = row.fleet;
  r.moderate = row.moderate;
  r.high = row.high;
  r.very_high = row.very_high;
  return r;
}

TopKSitesResponse evaluate_sharded(const shard::ShardedWorld& sw, Epoch epoch,
                                   const TopKSitesQuery& q) {
  TopKSitesResponse r;
  r.epoch = epoch;
  const geo::BBox box = detail::disc_bbox(q.center, q.radius_m);
  const std::vector<std::uint32_t> touched =
      sw.layout().shards_overlapping(box);
  obs::count(obs::metrics::kShardFanouts);
  obs::count(obs::metrics::kShardFanoutShards, touched.size());
  const detail::DiscFilter disc(q.center, q.radius_m, box);
  std::vector<std::vector<RankedSite>> partial(touched.size());
  scatter(sw, touched, [&](const shard::Shard& sh, std::size_t i) {
    std::vector<RankedSite>& mine = partial[i];
    std::size_t in_box = 0;
    sh.query_spans(box, [&in_box](std::uint32_t b, std::uint32_t e) {
      in_box += e - b;
    });
    mine.reserve(in_box);
    sh.query_spans(box, [&](std::uint32_t b, std::uint32_t e) {
      for (std::uint32_t k = b; k < e; ++k) {
        const geo::Vec2 p{sh.xs[k], sh.ys[k]};
        if (!box.contains(p)) continue;
        // Ranked sites need the exact distance anyway; the filter still
        // pre-rejects the bbox corners without a transcendental.
        if (disc.classify(p.x, p.y) < 0) continue;
        const geo::LonLat pos = geo::LonLat::from_vec(p);
        const double d = geo::haversine_m(q.center, pos);
        if (d > q.radius_m) continue;
        mine.push_back(
            {sh.ids[k], pos, static_cast<synth::WhpClass>(sh.cls[k]), d});
      }
    });
  });
  std::size_t total = 0;
  for (const std::vector<RankedSite>& p : partial) total += p.size();
  std::vector<RankedSite> candidates;
  candidates.reserve(total);
  for (const std::vector<RankedSite>& p : partial) {
    candidates.insert(candidates.end(), p.begin(), p.end());
  }
  r.candidates = static_cast<std::uint32_t>(candidates.size());
  // Strict total order (class desc, distance asc, id asc — ids are
  // unique), so the selected K and their order are independent of the
  // concatenation order above.
  const auto riskier = [](const RankedSite& a, const RankedSite& b) {
    if (a.whp != b.whp) return a.whp > b.whp;
    if (a.distance_m != b.distance_m) return a.distance_m < b.distance_m;
    return a.txr_id < b.txr_id;
  };
  const std::size_t k = std::min<std::size_t>(q.k, candidates.size());
  std::partial_sort(candidates.begin(), candidates.begin() + k,
                    candidates.end(), riskier);
  candidates.resize(k);
  r.sites = std::move(candidates);
  return r;
}

}  // namespace fa::serve

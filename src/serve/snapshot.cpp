#include "serve/snapshot.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "fault/injector.hpp"
#include "geo/geodesy.hpp"
#include "index/grid_index.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "serve/planner.hpp"
#include "shard/world.hpp"

namespace fa::serve {

Snapshot::Snapshot(core::World world, Epoch epoch)
    : world_(std::move(world)),
      epoch_(epoch),
      provider_risk_(core::run_provider_risk(*world_)) {}

fault::Result<std::shared_ptr<const Snapshot>> Snapshot::build(
    const synth::ScenarioConfig& config, Epoch epoch,
    fault::RecoveryPolicy policy) {
  const obs::Span span("serve.snapshot.build");
  const fault::Injector& inj = fault::Injector::global();
  if (inj.armed() && inj.fires(kSnapshotBuildSite, epoch)) {
    return fault::Status::error(fault::ErrCode::kInjected, epoch,
                                std::string(kSnapshotBuildSite),
                                "injected snapshot build failure");
  }
  fault::Diagnostics diagnostics;
  core::World::BuildOptions options;
  options.policy = policy;
  options.diagnostics = &diagnostics;
  fault::Result<core::World> world = core::World::build(config, options);
  if (!world.ok()) return world.status();
  std::shared_ptr<Snapshot> snap(new Snapshot(std::move(world).take(), epoch));
  snap->diagnostics_ = std::move(diagnostics);
  return std::shared_ptr<const Snapshot>(std::move(snap));
}

std::shared_ptr<const Snapshot> Snapshot::adopt(core::World world,
                                                Epoch epoch) {
  return std::shared_ptr<const Snapshot>(
      new Snapshot(std::move(world), epoch));
}

Snapshot::Snapshot(core::World world, Epoch epoch,
                   core::ProviderRiskResult provider_risk)
    : world_(std::move(world)),
      epoch_(epoch),
      provider_risk_(std::move(provider_risk)) {}

std::shared_ptr<const Snapshot> Snapshot::adopt(
    core::World world, Epoch epoch, core::ProviderRiskResult provider_risk) {
  return std::shared_ptr<const Snapshot>(
      new Snapshot(std::move(world), epoch, std::move(provider_risk)));
}

Snapshot::Snapshot(std::shared_ptr<const shard::ShardedWorld> sharded,
                   Epoch epoch, std::optional<core::World> world)
    : world_(std::move(world)),
      sharded_(std::move(sharded)),
      epoch_(epoch),
      provider_risk_(sharded_->provider_risk()) {}

std::shared_ptr<const Snapshot> Snapshot::adopt_sharded(
    shard::ShardedWorld sharded, Epoch epoch) {
  return std::shared_ptr<const Snapshot>(new Snapshot(
      std::make_shared<const shard::ShardedWorld>(std::move(sharded)), epoch,
      std::nullopt));
}

std::shared_ptr<const Snapshot> Snapshot::adopt_sharded(
    shard::ShardedWorld sharded, Epoch epoch, core::World world) {
  return std::shared_ptr<const Snapshot>(new Snapshot(
      std::make_shared<const shard::ShardedWorld>(std::move(sharded)), epoch,
      std::move(world)));
}

fault::Result<std::shared_ptr<const Snapshot>> Snapshot::build_sharded(
    const synth::ScenarioConfig& config, Epoch epoch,
    fault::RecoveryPolicy policy, const shard::LayoutOptions& layout) {
  const obs::Span span("serve.snapshot.build");
  const fault::Injector& inj = fault::Injector::global();
  if (inj.armed() && inj.fires(kSnapshotBuildSite, epoch)) {
    return fault::Status::error(fault::ErrCode::kInjected, epoch,
                                std::string(kSnapshotBuildSite),
                                "injected snapshot build failure");
  }
  fault::Diagnostics diagnostics;
  core::World::BuildOptions options;
  options.policy = policy;
  options.diagnostics = &diagnostics;
  fault::Result<core::World> world = core::World::build(config, options);
  if (!world.ok()) return world.status();
  core::World built = std::move(world).take();
  core::ProviderRiskResult risk = core::run_provider_risk(built);
  shard::ShardedWorld sharded =
      shard::ShardedWorld::from_world(built, risk, layout);
  std::shared_ptr<Snapshot> snap(new Snapshot(
      std::make_shared<const shard::ShardedWorld>(std::move(sharded)), epoch,
      std::move(built)));
  snap->diagnostics_ = std::move(diagnostics);
  return std::shared_ptr<const Snapshot>(std::move(snap));
}

const core::World& Snapshot::world() const {
  // Fast path: monolithic snapshots (and sharded ones constructed with
  // the world in hand) engage world_ before publication; the call_once
  // only ever fires for a zero-copy sharded view whose monolithic form
  // is needed after the fact. call_once leaves the flag unset when the
  // callable throws, so a transiently failing materialization (it is
  // deterministic, but symmetry costs nothing) would retry.
  std::call_once(materialize_once_, [this] {
    if (world_.has_value()) return;
    fault::Result<core::World> materialized = sharded_->materialize();
    if (!materialized.ok()) throw fault::IoError(materialized.status());
    world_.emplace(std::move(materialized).take());
  });
  return *world_;
}

const synth::ScenarioConfig& Snapshot::config() const {
  return sharded_ ? sharded_->config() : world_->config();
}

PointRiskResponse evaluate(const Snapshot& snap, const PointRiskQuery& q) {
  if (snap.sharded()) {
    return evaluate_sharded(*snap.sharded(), snap.epoch(), q);
  }
  const core::World& world = snap.world();
  const synth::WhpModel& whp = world.whp();
  PointRiskResponse r;
  r.epoch = snap.epoch();
  r.whp = whp.class_at(q.point);
  r.at_risk = synth::whp_at_risk(r.whp);
  r.urban = whp.is_urban(q.point);
  r.roadside = whp.is_road(q.point);
  r.state = whp.state_at(q.point);
  r.county = world.counties().county_of(q.point);
  if (q.neighborhood_m > 0.0) {
    // Span sweep over the grid's SoA storage. The disc bbox only
    // encloses the great-circle disc, so the explicit contains() filter
    // (what the Exact query callback applied per point) must stay ahead
    // of the haversine test; the tallies are order-independent sums.
    const geo::BBox box = detail::disc_bbox(q.point, q.neighborhood_m);
    const index::GridIndex& idx = world.txr_index();
    const std::span<const std::uint32_t> ids = idx.binned_ids();
    const std::span<const double> xs = idx.binned_xs();
    const std::span<const double> ys = idx.binned_ys();
    idx.query_spans(box, [&](std::uint32_t b, std::uint32_t e) {
      for (std::uint32_t k = b; k < e; ++k) {
        const geo::Vec2 p{xs[k], ys[k]};
        if (!box.contains(p)) continue;
        if (geo::haversine_m(q.point, geo::LonLat::from_vec(p)) >
            q.neighborhood_m) {
          continue;
        }
        ++r.nearby_txr;
        if (synth::whp_at_risk(world.txr_class(ids[k]))) ++r.nearby_at_risk;
      }
    });
  }
  return r;
}

BBoxAggregateResponse evaluate(const Snapshot& snap,
                               const BBoxAggregateQuery& q) {
  if (snap.sharded()) {
    return evaluate_sharded(*snap.sharded(), snap.epoch(), q);
  }
  const core::World& world = snap.world();
  BBoxAggregateResponse r;
  r.epoch = snap.epoch();
  const index::GridIndex& idx = world.txr_index();
  const std::span<const std::uint32_t> ids = idx.binned_ids();
  const std::span<const double> xs = idx.binned_xs();
  const std::span<const double> ys = idx.binned_ys();
  idx.query_spans(q.bbox, [&](std::uint32_t b, std::uint32_t e) {
    for (std::uint32_t k = b; k < e; ++k) {
      if (!q.bbox.contains({xs[k], ys[k]})) continue;
      const synth::WhpClass c = world.txr_class(ids[k]);
      ++r.transceivers;
      ++r.by_class[static_cast<std::size_t>(c)];
      if (synth::whp_at_risk(c)) ++r.at_risk;
      ++r.by_provider[static_cast<std::size_t>(world.txr_provider(ids[k]))];
    }
  });
  return r;
}

ProviderExposureResponse evaluate(const Snapshot& snap,
                                  const ProviderExposureQuery& q) {
  if (snap.sharded()) {
    return evaluate_sharded(*snap.sharded(), snap.epoch(), q);
  }
  const core::ProviderRiskRow& row =
      snap.provider_risk().rows[static_cast<std::size_t>(q.provider)];
  ProviderExposureResponse r;
  r.epoch = snap.epoch();
  r.provider = q.provider;
  r.fleet = row.fleet;
  r.moderate = row.moderate;
  r.high = row.high;
  r.very_high = row.very_high;
  return r;
}

TopKSitesResponse evaluate(const Snapshot& snap, const TopKSitesQuery& q) {
  if (snap.sharded()) {
    return evaluate_sharded(*snap.sharded(), snap.epoch(), q);
  }
  const core::World& world = snap.world();
  TopKSitesResponse r;
  r.epoch = snap.epoch();
  std::vector<RankedSite> candidates;
  const geo::BBox box = detail::disc_bbox(q.center, q.radius_m);
  const index::GridIndex& idx = world.txr_index();
  const std::span<const std::uint32_t> ids = idx.binned_ids();
  const std::span<const double> xs = idx.binned_xs();
  const std::span<const double> ys = idx.binned_ys();
  std::size_t in_box = 0;
  idx.query_spans(box, [&in_box](std::uint32_t b, std::uint32_t e) {
    in_box += e - b;
  });
  candidates.reserve(in_box);
  idx.query_spans(box, [&](std::uint32_t b, std::uint32_t e) {
    for (std::uint32_t k = b; k < e; ++k) {
      const geo::Vec2 p{xs[k], ys[k]};
      if (!box.contains(p)) continue;
      const geo::LonLat pos = geo::LonLat::from_vec(p);
      const double d = geo::haversine_m(q.center, pos);
      if (d > q.radius_m) continue;
      candidates.push_back({ids[k], pos, world.txr_class(ids[k]), d});
    }
  });
  r.candidates = static_cast<std::uint32_t>(candidates.size());
  const auto riskier = [](const RankedSite& a, const RankedSite& b) {
    if (a.whp != b.whp) return a.whp > b.whp;
    if (a.distance_m != b.distance_m) return a.distance_m < b.distance_m;
    return a.txr_id < b.txr_id;
  };
  const std::size_t k = std::min<std::size_t>(q.k, candidates.size());
  std::partial_sort(candidates.begin(), candidates.begin() + k,
                    candidates.end(), riskier);
  candidates.resize(k);
  r.sites = std::move(candidates);
  return r;
}

std::shared_ptr<const Snapshot> SnapshotStore::acquire() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

Epoch SnapshotStore::publish(std::shared_ptr<const Snapshot> next) {
  std::shared_ptr<const Snapshot> displaced;
  Epoch displaced_epoch = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    displaced = std::move(current_);
    current_ = std::move(next);
    if (displaced) {
      displaced_epoch = displaced->epoch();
      retired_.push_back(displaced);
      ++retired_total_;
    }
  }
  // `displaced` drops outside the lock: if this publish held the last
  // reference, the old world's destructor must not run inside it.
  return displaced_epoch;
}

Epoch SnapshotStore::current_epoch() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return current_ ? current_->epoch() : 0;
}

std::uint64_t SnapshotStore::retired() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return retired_total_;
}

std::uint64_t SnapshotStore::reclaimed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(retired_, [this](const std::weak_ptr<const Snapshot>& w) {
    if (!w.expired()) return false;
    ++reclaimed_total_;
    return true;
  });
  return reclaimed_total_;
}

}  // namespace fa::serve

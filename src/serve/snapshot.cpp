#include "serve/snapshot.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "fault/injector.hpp"
#include "geo/geodesy.hpp"
#include "index/grid_index.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace fa::serve {

namespace {

// Lon/lat box enclosing the great-circle disc (center, radius_m); the
// exact haversine test runs on the candidates it yields. cos(lat)
// shrinks toward the poles, so widen longitude by the worst latitude in
// the box.
geo::BBox disc_bbox(geo::LonLat center, double radius_m) {
  const double dlat = radius_m / geo::meters_per_deg_lat();
  const double worst_lat =
      std::min(89.0, std::max(std::abs(center.lat - dlat),
                              std::abs(center.lat + dlat)));
  const double dlon = radius_m / geo::meters_per_deg_lon(worst_lat);
  return {center.lon - dlon, center.lat - dlat, center.lon + dlon,
          center.lat + dlat};
}

}  // namespace

Snapshot::Snapshot(core::World world, Epoch epoch)
    : world_(std::move(world)),
      epoch_(epoch),
      provider_risk_(core::run_provider_risk(world_)) {}

fault::Result<std::shared_ptr<const Snapshot>> Snapshot::build(
    const synth::ScenarioConfig& config, Epoch epoch,
    fault::RecoveryPolicy policy) {
  const obs::Span span("serve.snapshot.build");
  const fault::Injector& inj = fault::Injector::global();
  if (inj.armed() && inj.fires(kSnapshotBuildSite, epoch)) {
    return fault::Status::error(fault::ErrCode::kInjected, epoch,
                                std::string(kSnapshotBuildSite),
                                "injected snapshot build failure");
  }
  fault::Diagnostics diagnostics;
  core::World::BuildOptions options;
  options.policy = policy;
  options.diagnostics = &diagnostics;
  fault::Result<core::World> world = core::World::build(config, options);
  if (!world.ok()) return world.status();
  std::shared_ptr<Snapshot> snap(new Snapshot(std::move(world).take(), epoch));
  snap->diagnostics_ = std::move(diagnostics);
  return std::shared_ptr<const Snapshot>(std::move(snap));
}

std::shared_ptr<const Snapshot> Snapshot::adopt(core::World world,
                                                Epoch epoch) {
  return std::shared_ptr<const Snapshot>(
      new Snapshot(std::move(world), epoch));
}

Snapshot::Snapshot(core::World world, Epoch epoch,
                   core::ProviderRiskResult provider_risk)
    : world_(std::move(world)),
      epoch_(epoch),
      provider_risk_(std::move(provider_risk)) {}

std::shared_ptr<const Snapshot> Snapshot::adopt(
    core::World world, Epoch epoch, core::ProviderRiskResult provider_risk) {
  return std::shared_ptr<const Snapshot>(
      new Snapshot(std::move(world), epoch, std::move(provider_risk)));
}

PointRiskResponse evaluate(const Snapshot& snap, const PointRiskQuery& q) {
  const core::World& world = snap.world();
  const synth::WhpModel& whp = world.whp();
  PointRiskResponse r;
  r.epoch = snap.epoch();
  r.whp = whp.class_at(q.point);
  r.at_risk = synth::whp_at_risk(r.whp);
  r.urban = whp.is_urban(q.point);
  r.roadside = whp.is_road(q.point);
  r.state = whp.state_at(q.point);
  r.county = world.counties().county_of(q.point);
  if (q.neighborhood_m > 0.0) {
    // Span sweep over the grid's SoA storage. The disc bbox only
    // encloses the great-circle disc, so the explicit contains() filter
    // (what the Exact query callback applied per point) must stay ahead
    // of the haversine test; the tallies are order-independent sums.
    const geo::BBox box = disc_bbox(q.point, q.neighborhood_m);
    const index::GridIndex& idx = world.txr_index();
    const std::span<const std::uint32_t> ids = idx.binned_ids();
    const std::span<const double> xs = idx.binned_xs();
    const std::span<const double> ys = idx.binned_ys();
    idx.query_spans(box, [&](std::uint32_t b, std::uint32_t e) {
      for (std::uint32_t k = b; k < e; ++k) {
        const geo::Vec2 p{xs[k], ys[k]};
        if (!box.contains(p)) continue;
        if (geo::haversine_m(q.point, geo::LonLat::from_vec(p)) >
            q.neighborhood_m) {
          continue;
        }
        ++r.nearby_txr;
        if (synth::whp_at_risk(world.txr_class(ids[k]))) ++r.nearby_at_risk;
      }
    });
  }
  return r;
}

BBoxAggregateResponse evaluate(const Snapshot& snap,
                               const BBoxAggregateQuery& q) {
  const core::World& world = snap.world();
  BBoxAggregateResponse r;
  r.epoch = snap.epoch();
  const index::GridIndex& idx = world.txr_index();
  const std::span<const std::uint32_t> ids = idx.binned_ids();
  const std::span<const double> xs = idx.binned_xs();
  const std::span<const double> ys = idx.binned_ys();
  idx.query_spans(q.bbox, [&](std::uint32_t b, std::uint32_t e) {
    for (std::uint32_t k = b; k < e; ++k) {
      if (!q.bbox.contains({xs[k], ys[k]})) continue;
      const synth::WhpClass c = world.txr_class(ids[k]);
      ++r.transceivers;
      ++r.by_class[static_cast<std::size_t>(c)];
      if (synth::whp_at_risk(c)) ++r.at_risk;
      ++r.by_provider[static_cast<std::size_t>(world.txr_provider(ids[k]))];
    }
  });
  return r;
}

ProviderExposureResponse evaluate(const Snapshot& snap,
                                  const ProviderExposureQuery& q) {
  const core::ProviderRiskRow& row =
      snap.provider_risk().rows[static_cast<std::size_t>(q.provider)];
  ProviderExposureResponse r;
  r.epoch = snap.epoch();
  r.provider = q.provider;
  r.fleet = row.fleet;
  r.moderate = row.moderate;
  r.high = row.high;
  r.very_high = row.very_high;
  return r;
}

TopKSitesResponse evaluate(const Snapshot& snap, const TopKSitesQuery& q) {
  const core::World& world = snap.world();
  TopKSitesResponse r;
  r.epoch = snap.epoch();
  std::vector<RankedSite> candidates;
  const geo::BBox box = disc_bbox(q.center, q.radius_m);
  const index::GridIndex& idx = world.txr_index();
  const std::span<const std::uint32_t> ids = idx.binned_ids();
  const std::span<const double> xs = idx.binned_xs();
  const std::span<const double> ys = idx.binned_ys();
  std::size_t in_box = 0;
  idx.query_spans(box, [&in_box](std::uint32_t b, std::uint32_t e) {
    in_box += e - b;
  });
  candidates.reserve(in_box);
  idx.query_spans(box, [&](std::uint32_t b, std::uint32_t e) {
    for (std::uint32_t k = b; k < e; ++k) {
      const geo::Vec2 p{xs[k], ys[k]};
      if (!box.contains(p)) continue;
      const geo::LonLat pos = geo::LonLat::from_vec(p);
      const double d = geo::haversine_m(q.center, pos);
      if (d > q.radius_m) continue;
      candidates.push_back({ids[k], pos, world.txr_class(ids[k]), d});
    }
  });
  r.candidates = static_cast<std::uint32_t>(candidates.size());
  const auto riskier = [](const RankedSite& a, const RankedSite& b) {
    if (a.whp != b.whp) return a.whp > b.whp;
    if (a.distance_m != b.distance_m) return a.distance_m < b.distance_m;
    return a.txr_id < b.txr_id;
  };
  const std::size_t k = std::min<std::size_t>(q.k, candidates.size());
  std::partial_sort(candidates.begin(), candidates.begin() + k,
                    candidates.end(), riskier);
  candidates.resize(k);
  r.sites = std::move(candidates);
  return r;
}

std::shared_ptr<const Snapshot> SnapshotStore::acquire() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

Epoch SnapshotStore::publish(std::shared_ptr<const Snapshot> next) {
  std::shared_ptr<const Snapshot> displaced;
  Epoch displaced_epoch = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    displaced = std::move(current_);
    current_ = std::move(next);
    if (displaced) {
      displaced_epoch = displaced->epoch();
      retired_.push_back(displaced);
      ++retired_total_;
    }
  }
  // `displaced` drops outside the lock: if this publish held the last
  // reference, the old world's destructor must not run inside it.
  return displaced_epoch;
}

Epoch SnapshotStore::current_epoch() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return current_ ? current_->epoch() : 0;
}

std::uint64_t SnapshotStore::retired() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return retired_total_;
}

std::uint64_t SnapshotStore::reclaimed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(retired_, [this](const std::weak_ptr<const Snapshot>& w) {
    if (!w.expired()) return false;
    ++reclaimed_total_;
    return true;
  });
  return reclaimed_total_;
}

}  // namespace fa::serve

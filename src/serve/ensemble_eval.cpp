// Served ensemble queries: map (snapshot, members, seed) onto a
// fa::ensemble run and project the report into the wire response
// shapes. Both evaluates are pure functions of the snapshot content and
// the query — the ensemble's own determinism contract (byte-identical
// at any thread count) is what makes these cacheable like the O(1)
// queries despite running thousands of seeded season simulations.
//
// SharedInputs are rebuilt per evaluate call. That is deliberate: the
// result cache already absorbs repeats of the same (epoch, query), and
// the wire decoder caps `members`, so the worst case one request can
// demand is bounded. Caching inputs across epochs would couple this
// file to snapshot lifetime for a path the cache already covers.
#include <algorithm>

#include "ensemble/ensemble.hpp"
#include "serve/snapshot.hpp"

namespace fa::serve {

namespace {

ensemble::EnsembleConfig config_for(std::uint32_t members,
                                    std::uint64_t seed) {
  ensemble::EnsembleConfig config;
  config.members = std::max<std::uint32_t>(1, members);
  config.seed = seed;
  return config;
}

}  // namespace

EnsembleSummaryResponse evaluate(const Snapshot& snap,
                                 const EnsembleSummaryQuery& q) {
  const ensemble::EnsembleConfig config = config_for(q.members, q.seed);
  const ensemble::SharedInputs inputs =
      ensemble::SharedInputs::build(snap.world(), config);
  const ensemble::EnsembleReport report =
      ensemble::run_ensemble(inputs, config);
  EnsembleSummaryResponse r;
  r.epoch = snap.epoch();
  r.members = report.members;
  r.quarantined = report.quarantined;
  r.sites = report.sites;
  r.fires = report.fires;
  r.expected_user_hours = report.expected_user_hours;
  r.expected_power_user_hours = report.expected_power_user_hours;
  r.expected_pop_exposure = report.expected_pop_exposure;
  r.expected_overlap_user_hours = report.expected_overlap_user_hours;
  r.exceedance.reserve(report.exceedance.size());
  for (const ensemble::ExceedancePoint& p : report.exceedance) {
    r.exceedance.push_back({p.user_hours, p.probability});
  }
  return r;
}

TopKFragileSitesResponse evaluate(const Snapshot& snap,
                                  const TopKFragileSitesQuery& q) {
  const ensemble::EnsembleConfig config = config_for(q.members, q.seed);
  const ensemble::SharedInputs inputs =
      ensemble::SharedInputs::build(snap.world(), config);
  const ensemble::EnsembleReport report =
      ensemble::run_ensemble(inputs, config);
  const std::vector<ensemble::FragileSite> top =
      ensemble::top_k_fragile(inputs, report, q.k);
  TopKFragileSitesResponse r;
  r.epoch = snap.epoch();
  r.members = report.members;
  r.sites = report.sites;
  r.sites_ranked.reserve(top.size());
  for (const ensemble::FragileSite& s : top) {
    r.sites_ranked.push_back({s.site, s.position, s.users,
                              s.expected_user_hours, s.power_share,
                              s.outage_probability});
  }
  return r;
}

}  // namespace fa::serve

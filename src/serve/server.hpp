// fa::serve — the concurrent risk-query serving layer.
//
// One Server owns a SnapshotStore (versioned immutable worlds with
// RCU-style hot-swap), a ShardedCache (results keyed by epoch +
// query fingerprint), and a PointBatcher (admission queue coalescing
// concurrent point queries into vectorized exec regions). Any number of
// client threads may query concurrently; rebuild() may run concurrently
// with queries and publishes a new epoch atomically — in-flight
// requests finish against the epoch they acquired, and a failed rebuild
// leaves the old epoch serving.
//
// Determinism contract: for a fixed snapshot content, every query path
// (direct, batched, cached, cache-disabled) returns byte-identical
// responses. The cache can change *when* an answer is computed, never
// what it contains; tests/serve/equivalence_test.cpp pins this.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "delta/apply.hpp"
#include "delta/log.hpp"
#include "obs/obs.hpp"
#include "serve/batcher.hpp"
#include "serve/cache.hpp"
#include "serve/snapshot.hpp"
#include "serve/types.hpp"
#include "serve/wire.hpp"
#include "shard/layout.hpp"
#include "store/store.hpp"

namespace fa::serve {

// How handle() routes a request: kDirect evaluates on the calling
// thread; kBatched routes point queries through the flat-combining
// admission queue (other shapes, which never batch, fall back to the
// direct path — same bytes either way).
enum class Dispatch : std::uint8_t { kDirect, kBatched };

struct ServerOptions {
  // Result cache; disabling makes every request recompute (the
  // cache-off baseline in bench_serve_qps).
  bool cache_enabled = true;
  CacheConfig cache;
  // Max point queries coalesced into one batched evaluation round.
  std::size_t max_batch = 64;
  // Ingestion policy for snapshot builds (initial and rebuilds).
  fault::RecoveryPolicy policy = fault::RecoveryPolicy::kQuarantine;
  // Registry for the serve.* instruments; null = obs::Registry::global()
  // at construction time (so an active obs::ScopedRegistry is honored).
  obs::Registry* registry = nullptr;
  // Snapshot store directory (created if missing). When set, the
  // constructor runs the recovery ladder: a clean stored generation
  // whose scenario config matches `config` becomes epoch 1 with no
  // world build at all; otherwise (empty store, corrupt generations,
  // config mismatch) the server falls back to a fresh build and counts
  // store.recover.rebuilds. Empty = no persistence.
  std::string store_dir;
  // Serve from a geo-sharded view (fa::shard). Builds partition the
  // world by `shard_layout`; cold starts go through the shard recovery
  // ladder (FASHRD01 opens zero-copy shard-by-shard, FASNAP01
  // generations migrate in memory); queries route through the
  // scatter/gather planner. Responses stay byte-identical to the
  // monolithic server over the same world.
  bool sharded = false;
  shard::LayoutOptions shard_layout;
};

class Server {
 public:
  // Builds the initial snapshot (epoch 1) synchronously; throws
  // fault::IoError when that scenario cannot be built at all — a server
  // with nothing to serve should fail loudly, unlike a failed *rebuild*
  // (see below), which is survivable.
  explicit Server(const synth::ScenarioConfig& config,
                  const ServerOptions& options = {});

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // -- queries (safe from any thread) ----------------------------------
  // THE entry point: every query shape, one uniform surface. The wire
  // decoder, the batcher admission path, and the cache all dispatch
  // through here; the response alternative always matches the request
  // alternative (PointRiskQuery -> PointRiskResponse, etc.), and the
  // bytes are identical to the legacy typed methods below
  // (tests/serve/unified_api_test.cpp pins both).
  Response handle(const Request& request, Dispatch dispatch = Dispatch::kDirect);

  // Typed convenience wrappers over handle().
  PointRiskResponse point_risk(const PointRiskQuery& q);
  BBoxAggregateResponse bbox_aggregate(const BBoxAggregateQuery& q);
  ProviderExposureResponse provider_exposure(const ProviderExposureQuery& q);
  TopKSitesResponse top_k_sites(const TopKSitesQuery& q);
  EnsembleSummaryResponse ensemble_summary(const EnsembleSummaryQuery& q);
  TopKFragileSitesResponse top_k_fragile_sites(const TopKFragileSitesQuery& q);

  // Point query through the admission queue: concurrent submitters are
  // coalesced into one vectorized evaluation per round, every round
  // answering from a single snapshot. Identical responses to
  // point_risk(); different scheduling.
  PointRiskResponse point_risk_batched(const PointRiskQuery& q);

  // -- snapshot lifecycle ----------------------------------------------
  // Builds a snapshot for `config` and, on success, publishes it as the
  // next epoch and invalidates the cache. On failure (unbuildable
  // scenario, injected serve.snapshot.build fault) returns the error
  // Status and changes nothing: the current epoch keeps serving.
  // Callable from a background thread while queries run.
  fault::Status rebuild(const synth::ScenarioConfig& config);

  // Encodes the currently serving snapshot and commits it to the store
  // as the next generation (atomic: a crash mid-commit never damages
  // existing generations). Error when no store is configured or the
  // commit fails (torn-write seam included) — the serving epoch is
  // unaffected either way.
  fault::Status save_snapshot();

  // Publishes a snapshot restored from the store as the next epoch —
  // the disk-sourced sibling of rebuild(). On any recovery failure the
  // current epoch keeps serving.
  fault::Status rebuild_from_store();

  // Applies a batch of live-feed events (FeedIngestor output: seq
  // order, deduplicated) to the serving epoch and publishes the result
  // as the next epoch — the incremental sibling of rebuild(), with the
  // same survivability contract: on failure (injected delta.apply
  // fault, strict-policy validation error) nothing publishes and the
  // current epoch keeps serving. When a store directory is configured
  // and the serving state is rooted in a committed generation, the
  // batch is also appended to the hash-chained delta log so a cold
  // start replays it; an append failure degrades durability, never
  // serving (counted, not fatal). Callable from a background thread
  // while queries run.
  fault::Status apply_delta(std::span<const delta::FeedEvent> events,
                            delta::ApplyStats* stats = nullptr);

  // True when epoch 1 came from the store instead of a fresh build.
  bool loaded_from_store() const { return loaded_from_store_; }

  Epoch epoch() const { return store_.current_epoch(); }
  const SnapshotStore& snapshots() const { return store_; }
  // Scenario of the currently serving snapshot.
  synth::ScenarioConfig config() const;
  obs::Registry& registry() { return registry_; }

 private:
  // Constructor cold-start ladders (store_dir_ engaged): publish epoch 1
  // from the newest servable generation, replaying its delta-log chain;
  // set loaded_from_store_ on success, leave the fresh-build fallback to
  // the constructor otherwise.
  void cold_start_monolithic(const synth::ScenarioConfig& config);
  void cold_start_sharded(const synth::ScenarioConfig& config);
  // Cache-then-evaluate for one typed query; the body behind handle().
  template <class Query, class Resp>
  Resp answer(const Query& q);
  void evaluate_batch(std::span<const PointRiskQuery> queries,
                      std::span<PointRiskResponse> responses);
  // Publish + retire/cache/counter bookkeeping (rebuild_mu_ held).
  void publish_locked(std::shared_ptr<const Snapshot> next);

  obs::Registry& registry_;
  ServerOptions options_;
  std::optional<store::StoreDir> store_dir_;
  // Increment chain rooted at the generation the serving state derives
  // from (guarded by rebuild_mu_). Engaged only while that rooting is
  // provable: after store recovery, or after save_snapshot() commits.
  std::optional<delta::DeltaLog> delta_log_;
  bool loaded_from_store_ = false;
  std::mutex rebuild_mu_;  // serializes rebuild(); queries never take it
  std::mutex save_mu_;     // serializes save_snapshot() commits
  SnapshotStore store_;
  ShardedCache cache_;
  PointBatcher batcher_;
  // Reclamation already reported to the serve.snapshots.reclaimed
  // counter (guarded by rebuild_mu_; counters are add-only).
  std::uint64_t reclaimed_reported_ = 0;
  obs::Counter& queries_;
  obs::Counter& swaps_published_;
  obs::Counter& swaps_failed_;
  obs::Counter& snapshots_retired_;
  obs::Counter& snapshots_reclaimed_;
  obs::Histogram& query_ns_;
};

}  // namespace fa::serve

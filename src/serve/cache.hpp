// Sharded LRU result cache for the serving layer.
//
// Keyed by (snapshot epoch, query fingerprint): the epoch in the key
// makes a stale hit structurally impossible — a request that acquired
// epoch N can only ever read an answer computed against epoch N — and
// the wholesale invalidation on snapshot publish is then purely a
// memory-reclamation optimization, not a correctness mechanism.
//
// Shards are independent (key → shard by fingerprint bits), each with
// its own mutex, hash map, and intrusive LRU list, so concurrent client
// threads rarely contend on the same lock. Capacity is enforced per
// shard; eviction is strict LRU within the shard.
//
// Fault seam "serve.cache": when armed, a hit whose fingerprint fires
// is treated as failing its integrity check — the entry is dropped and
// counted (serve.cache.corrupt_dropped), and the request recomputes.
// Responses therefore stay byte-identical under injected corruption;
// only the hit rate degrades.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "obs/obs.hpp"
#include "serve/types.hpp"

namespace fa::serve {

inline constexpr std::string_view kCacheCorruptSite = "serve.cache";

struct CacheConfig {
  std::size_t capacity = 4096;  // total entries across shards
  int shards = 8;               // clamped to >= 1
};

class ShardedCache {
 public:
  // Counters land in `registry` under the obs::metrics::kServeCache*
  // names, resolved once here so the hot path never takes the registry
  // lock.
  ShardedCache(const CacheConfig& config, obs::Registry& registry);

  // The cached response for (epoch, fingerprint), refreshing its LRU
  // position; nullopt on miss (counted) or injected corruption.
  std::optional<CachedResponse> get(Epoch epoch, std::uint64_t fingerprint);

  // Inserts or refreshes (epoch, fingerprint) → response, evicting the
  // shard's LRU tail when over budget.
  void put(Epoch epoch, std::uint64_t fingerprint, CachedResponse response);

  // Drops every entry (snapshot publish). Entries for retired epochs
  // could never be served again anyway — the epoch is in the key — so
  // this only releases their memory promptly.
  void invalidate_all();

  std::size_t size() const;

 private:
  struct Key {
    Epoch epoch;
    std::uint64_t fingerprint;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // fingerprint is already FNV-mixed; fold the epoch in.
      return static_cast<std::size_t>(k.fingerprint ^
                                      (k.epoch * 0x9e3779b97f4a7c15ULL));
    }
  };
  struct Entry {
    Key key;
    CachedResponse response;
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
  };

  Shard& shard_of(std::uint64_t fingerprint) {
    // High bits select the shard; low bits feed the in-shard hash.
    return *shards_[(fingerprint >> 48) % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t per_shard_capacity_;
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& evictions_;
  obs::Counter& corrupt_dropped_;
  obs::Counter& invalidations_;
};

}  // namespace fa::serve

// Point-query admission queue with flat-combining batch execution.
//
// Interactive point queries are individually tiny (a few raster samples
// and an index probe) but arrive from many client threads at once.
// Running each one independently pays per-request synchronization and
// leaves the exec substrate idle; the batcher instead coalesces
// concurrent arrivals into rounds and evaluates each round as one
// vectorized region:
//
//   * submit() appends the query to the open round. The first thread to
//     arrive while no leader is active becomes the leader; everyone else
//     parks on the round's condvar.
//   * The leader closes its round (a fresh round opens for subsequent
//     arrivals), evaluates all queries in one shot — the BatchFn runs
//     them under exec::parallel_for against a single acquired snapshot,
//     so a whole round shares one epoch by construction — then wakes
//     its followers and drains any round that filled up while it ran.
//   * Rounds are bounded at max_batch queries (backpressure: an arrival
//     that would overflow the open round starts the next one; rounds
//     queue and the leader drains them in order).
//
// Shapes to keep: this is the admission/coalescing pattern an
// inference-serving stack uses for GPU batching; here the "device" is
// the exec thread pool.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "obs/obs.hpp"
#include "serve/types.hpp"

namespace fa::serve {

class PointBatcher {
 public:
  // Evaluates one closed round: fills responses[i] for queries[i].
  // Invoked on a leader (client) thread, never concurrently with itself.
  using BatchFn = std::function<void(std::span<const PointRiskQuery>,
                                     std::span<PointRiskResponse>)>;

  PointBatcher(std::size_t max_batch, BatchFn evaluate,
               obs::Registry& registry);

  // Blocks until the query's round has been evaluated; returns its
  // response. Safe from any number of threads.
  PointRiskResponse submit(const PointRiskQuery& query);

 private:
  struct Round {
    std::vector<PointRiskQuery> queries;
    std::vector<PointRiskResponse> responses;
    // First exception thrown by the round's evaluation; rethrown to
    // every waiter in the round (leader included).
    std::exception_ptr error;
    bool done = false;
    std::condition_variable cv;
  };

  void run_round(Round& round);

  const std::size_t max_batch_;
  BatchFn evaluate_;

  std::mutex mu_;
  // Rounds accepting or awaiting evaluation, in arrival order; the
  // front round is the next one a leader executes. shared_ptr because
  // followers keep their round alive after the leader pops it.
  std::deque<std::shared_ptr<Round>> rounds_;
  bool leader_active_ = false;

  obs::Counter& flushes_;
  obs::Counter& coalesced_;
  obs::Histogram& batch_size_;
  obs::Histogram& queue_depth_;
};

}  // namespace fa::serve

// fa::serve request/response model: the four interactive query shapes
// the risk surface answers (per-point hazard, bbox aggregates, provider
// exposure, ranked nearby sites), each a small value type so requests
// fingerprint deterministically and responses compare field-for-field.
//
// Every response carries the epoch of the snapshot that answered it.
// A response is computed against exactly one snapshot — the serving
// layer acquires the snapshot once per request (or once per batch), so
// a concurrent hot-swap can never mix epochs within one answer.
#pragma once

#include <array>
#include <cstdint>
#include <variant>
#include <vector>

#include "cellnet/providers.hpp"
#include "geo/bbox.hpp"
#include "geo/lonlat.hpp"
#include "synth/hazard.hpp"

namespace fa::serve {

// Snapshot version number: 1 for a server's initial world, bumped by
// every successful hot-swap. 0 marks "no snapshot" and never appears in
// a served response.
using Epoch = std::uint64_t;

// "What is the wildfire risk right here?" — the paper's per-site hazard
// lookup (Section 3.3) as an interactive query.
struct PointRiskQuery {
  geo::LonLat point;
  // When > 0, also count corpus transceivers within this great-circle
  // radius of the point (the "infrastructure near me" half of the answer).
  double neighborhood_m = 0.0;

  bool operator==(const PointRiskQuery&) const = default;
};

struct PointRiskResponse {
  Epoch epoch = 0;
  synth::WhpClass whp = synth::WhpClass::kNonBurnable;
  bool at_risk = false;    // whp_at_risk(whp)
  bool urban = false;      // urban-core mask (non-burnable by fiat)
  bool roadside = false;   // road-corridor mask (the Section 3.4 artifact)
  int state = -1;          // atlas state index, -1 offshore
  int county = -1;         // county index, -1 unresolved
  std::uint32_t nearby_txr = 0;      // within neighborhood_m (0 if unset)
  std::uint32_t nearby_at_risk = 0;  // of those, in WHP moderate+

  bool operator==(const PointRiskResponse&) const = default;
};

// "How much infrastructure, at what risk, in this viewport?" — the
// Fig 6-9 aggregation restricted to a lon/lat rectangle.
struct BBoxAggregateQuery {
  geo::BBox bbox;  // lon/lat degrees, inclusive

  bool operator==(const BBoxAggregateQuery&) const = default;
};

struct BBoxAggregateResponse {
  Epoch epoch = 0;
  std::uint64_t transceivers = 0;
  std::array<std::uint64_t, synth::kNumWhpClasses> by_class{};
  std::uint64_t at_risk = 0;  // moderate + high + very high
  std::array<std::uint64_t, cellnet::kNumProviders> by_provider{};

  bool operator==(const BBoxAggregateResponse&) const = default;
};

// "How exposed is this carrier's fleet?" — one Table 2 row, O(1) off
// the snapshot's precomputed aggregates.
struct ProviderExposureQuery {
  cellnet::Provider provider = cellnet::Provider::kAtt;

  bool operator==(const ProviderExposureQuery&) const = default;
};

struct ProviderExposureResponse {
  Epoch epoch = 0;
  cellnet::Provider provider = cellnet::Provider::kAtt;
  std::uint64_t fleet = 0;
  std::uint64_t moderate = 0;
  std::uint64_t high = 0;
  std::uint64_t very_high = 0;
  std::uint64_t at_risk() const { return moderate + high + very_high; }

  bool operator==(const ProviderExposureResponse&) const = default;
};

// "The K riskiest transceivers near this point" — ordered by WHP class
// descending, then distance ascending, then id (total order, so the
// ranking is deterministic and cacheable).
struct TopKSitesQuery {
  geo::LonLat center;
  double radius_m = 50e3;
  std::uint32_t k = 10;

  bool operator==(const TopKSitesQuery&) const = default;
};

struct RankedSite {
  std::uint32_t txr_id = 0;
  geo::LonLat position;
  synth::WhpClass whp = synth::WhpClass::kNonBurnable;
  double distance_m = 0.0;

  bool operator==(const RankedSite&) const = default;
};

struct TopKSitesResponse {
  Epoch epoch = 0;
  std::uint32_t candidates = 0;  // transceivers inside the radius
  std::vector<RankedSite> sites;  // best-first, size <= k

  bool operator==(const TopKSitesResponse&) const = default;
};

// "How bad can a fire season get here?" — the cascading-scenario
// ensemble's headline aggregates: expected user-hours lost, population
// exposure, and the season exceedance curve. Deterministic in
// (snapshot, members, seed), so it fingerprints and caches like any
// other query despite running a whole simulation ensemble.
struct EnsembleSummaryQuery {
  std::uint32_t members = 64;
  std::uint64_t seed = 7;

  bool operator==(const EnsembleSummaryQuery&) const = default;
};

struct ExceedanceRow {
  double user_hours = 0.0;   // threshold
  double probability = 0.0;  // P(member season total >= threshold)

  bool operator==(const ExceedanceRow&) const = default;
};

struct EnsembleSummaryResponse {
  Epoch epoch = 0;
  std::uint32_t members = 0;      // scheduled
  std::uint32_t quarantined = 0;  // excluded by the ensemble.member seam
  std::uint32_t sites = 0;        // region sites simulated
  std::uint64_t fires = 0;
  double expected_user_hours = 0.0;
  double expected_power_user_hours = 0.0;
  double expected_pop_exposure = 0.0;     // person-days inside perimeters
  double expected_overlap_user_hours = 0.0;
  std::vector<ExceedanceRow> exceedance;

  bool operator==(const EnsembleSummaryResponse&) const = default;
};

// "Which K sites fail users the most?" — the ensemble's fragility
// ranking (expected user-hours lost descending, site id ascending; a
// total order, so the report is deterministic and cacheable).
struct TopKFragileSitesQuery {
  std::uint32_t members = 64;
  std::uint64_t seed = 7;
  std::uint32_t k = 10;

  bool operator==(const TopKFragileSitesQuery&) const = default;
};

struct FragileSiteRow {
  std::uint32_t site = 0;  // region site index
  geo::LonLat position;
  double users = 0.0;
  double expected_user_hours = 0.0;
  double power_share = 0.0;
  double outage_probability = 0.0;

  bool operator==(const FragileSiteRow&) const = default;
};

struct TopKFragileSitesResponse {
  Epoch epoch = 0;
  std::uint32_t members = 0;
  std::uint32_t sites = 0;  // region sites considered
  std::vector<FragileSiteRow> sites_ranked;  // best-first, size <= k

  bool operator==(const TopKFragileSitesResponse&) const = default;
};

// -- the unified request/response surface ------------------------------
// One type-erased shape for every query the serving layer answers. The
// wire decoder, the batcher admission path, and the result cache all
// dispatch through these two variants (Server::handle is the single
// entry point); the typed query structs above stay the ergonomic API
// for in-process callers.
using Request =
    std::variant<PointRiskQuery, BBoxAggregateQuery, ProviderExposureQuery,
                 TopKSitesQuery, EnsembleSummaryQuery, TopKFragileSitesQuery>;
using Response = std::variant<PointRiskResponse, BBoxAggregateResponse,
                              ProviderExposureResponse, TopKSitesResponse,
                              EnsembleSummaryResponse,
                              TopKFragileSitesResponse>;

// What the result cache stores: the same one-slot-for-every-shape
// variant, so a fingerprint collision across query *types* (already
// prevented by the wire type tag) can also never be misread as the
// wrong shape.
using CachedResponse = Response;

// Query fingerprints are FNV-1a over the query's canonical wire payload
// and live next to the codec they must never drift from: serve/wire.hpp.

}  // namespace fa::serve

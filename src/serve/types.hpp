// fa::serve request/response model: the four interactive query shapes
// the risk surface answers (per-point hazard, bbox aggregates, provider
// exposure, ranked nearby sites), each a small value type so requests
// fingerprint deterministically and responses compare field-for-field.
//
// Every response carries the epoch of the snapshot that answered it.
// A response is computed against exactly one snapshot — the serving
// layer acquires the snapshot once per request (or once per batch), so
// a concurrent hot-swap can never mix epochs within one answer.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <variant>
#include <vector>

#include "cellnet/providers.hpp"
#include "geo/bbox.hpp"
#include "geo/lonlat.hpp"
#include "synth/hazard.hpp"

namespace fa::serve {

// Snapshot version number: 1 for a server's initial world, bumped by
// every successful hot-swap. 0 marks "no snapshot" and never appears in
// a served response.
using Epoch = std::uint64_t;

// "What is the wildfire risk right here?" — the paper's per-site hazard
// lookup (Section 3.3) as an interactive query.
struct PointRiskQuery {
  geo::LonLat point;
  // When > 0, also count corpus transceivers within this great-circle
  // radius of the point (the "infrastructure near me" half of the answer).
  double neighborhood_m = 0.0;

  bool operator==(const PointRiskQuery&) const = default;
};

struct PointRiskResponse {
  Epoch epoch = 0;
  synth::WhpClass whp = synth::WhpClass::kNonBurnable;
  bool at_risk = false;    // whp_at_risk(whp)
  bool urban = false;      // urban-core mask (non-burnable by fiat)
  bool roadside = false;   // road-corridor mask (the Section 3.4 artifact)
  int state = -1;          // atlas state index, -1 offshore
  int county = -1;         // county index, -1 unresolved
  std::uint32_t nearby_txr = 0;      // within neighborhood_m (0 if unset)
  std::uint32_t nearby_at_risk = 0;  // of those, in WHP moderate+

  bool operator==(const PointRiskResponse&) const = default;
};

// "How much infrastructure, at what risk, in this viewport?" — the
// Fig 6-9 aggregation restricted to a lon/lat rectangle.
struct BBoxAggregateQuery {
  geo::BBox bbox;  // lon/lat degrees, inclusive

  bool operator==(const BBoxAggregateQuery&) const = default;
};

struct BBoxAggregateResponse {
  Epoch epoch = 0;
  std::uint64_t transceivers = 0;
  std::array<std::uint64_t, synth::kNumWhpClasses> by_class{};
  std::uint64_t at_risk = 0;  // moderate + high + very high
  std::array<std::uint64_t, cellnet::kNumProviders> by_provider{};

  bool operator==(const BBoxAggregateResponse&) const = default;
};

// "How exposed is this carrier's fleet?" — one Table 2 row, O(1) off
// the snapshot's precomputed aggregates.
struct ProviderExposureQuery {
  cellnet::Provider provider = cellnet::Provider::kAtt;

  bool operator==(const ProviderExposureQuery&) const = default;
};

struct ProviderExposureResponse {
  Epoch epoch = 0;
  cellnet::Provider provider = cellnet::Provider::kAtt;
  std::uint64_t fleet = 0;
  std::uint64_t moderate = 0;
  std::uint64_t high = 0;
  std::uint64_t very_high = 0;
  std::uint64_t at_risk() const { return moderate + high + very_high; }

  bool operator==(const ProviderExposureResponse&) const = default;
};

// "The K riskiest transceivers near this point" — ordered by WHP class
// descending, then distance ascending, then id (total order, so the
// ranking is deterministic and cacheable).
struct TopKSitesQuery {
  geo::LonLat center;
  double radius_m = 50e3;
  std::uint32_t k = 10;

  bool operator==(const TopKSitesQuery&) const = default;
};

struct RankedSite {
  std::uint32_t txr_id = 0;
  geo::LonLat position;
  synth::WhpClass whp = synth::WhpClass::kNonBurnable;
  double distance_m = 0.0;

  bool operator==(const RankedSite&) const = default;
};

struct TopKSitesResponse {
  Epoch epoch = 0;
  std::uint32_t candidates = 0;  // transceivers inside the radius
  std::vector<RankedSite> sites;  // best-first, size <= k

  bool operator==(const TopKSitesResponse&) const = default;
};

// What the result cache stores: one slot type for all four responses,
// so a fingerprint collision across query *types* (already prevented by
// the type tag below) can also never be misread as the wrong shape.
using CachedResponse =
    std::variant<PointRiskResponse, BBoxAggregateResponse,
                 ProviderExposureResponse, TopKSitesResponse>;

// -- query fingerprints ------------------------------------------------
// FNV-1a over the query's canonical bytes, seeded with a per-type tag.
// Doubles hash via their bit pattern, so two queries fingerprint equal
// iff they compare equal (-0.0 vs 0.0 differ; callers normalize if they
// care). The cache key is (epoch, fingerprint), epoch added by the
// cache itself.

namespace detail {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

inline std::uint64_t fnv_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t fnv_f64(std::uint64_t h, double v) {
  return fnv_u64(h, std::bit_cast<std::uint64_t>(v));
}

}  // namespace detail

inline std::uint64_t fingerprint(const PointRiskQuery& q) {
  std::uint64_t h = detail::fnv_u64(detail::kFnvOffset, 1);
  h = detail::fnv_f64(h, q.point.lon);
  h = detail::fnv_f64(h, q.point.lat);
  return detail::fnv_f64(h, q.neighborhood_m);
}

inline std::uint64_t fingerprint(const BBoxAggregateQuery& q) {
  std::uint64_t h = detail::fnv_u64(detail::kFnvOffset, 2);
  h = detail::fnv_f64(h, q.bbox.min_x);
  h = detail::fnv_f64(h, q.bbox.min_y);
  h = detail::fnv_f64(h, q.bbox.max_x);
  return detail::fnv_f64(h, q.bbox.max_y);
}

inline std::uint64_t fingerprint(const ProviderExposureQuery& q) {
  return detail::fnv_u64(detail::kFnvOffset,
                         0x300 + static_cast<std::uint64_t>(q.provider));
}

inline std::uint64_t fingerprint(const TopKSitesQuery& q) {
  std::uint64_t h = detail::fnv_u64(detail::kFnvOffset, 4);
  h = detail::fnv_f64(h, q.center.lon);
  h = detail::fnv_f64(h, q.center.lat);
  h = detail::fnv_f64(h, q.radius_m);
  return detail::fnv_u64(h, q.k);
}

}  // namespace fa::serve

#include "serve/server.hpp"

#include <numeric>
#include <utility>
#include <variant>

#include "exec/exec.hpp"
#include "obs/metrics.hpp"
#include "shard/apply.hpp"
#include "shard/codec.hpp"
#include "shard/recovery.hpp"
#include "store/codec.hpp"
#include "store/recovery.hpp"

namespace fa::serve {

Server::Server(const synth::ScenarioConfig& config,
               const ServerOptions& options)
    : registry_(options.registry != nullptr ? *options.registry
                                            : obs::Registry::global()),
      options_(options),
      cache_(options.cache, registry_),
      batcher_(
          options.max_batch,
          [this](std::span<const PointRiskQuery> queries,
                 std::span<PointRiskResponse> responses) {
            evaluate_batch(queries, responses);
          },
          registry_),
      queries_(registry_.counter(obs::metrics::kServeQueries)),
      swaps_published_(registry_.counter(obs::metrics::kServeSwapsPublished)),
      swaps_failed_(registry_.counter(obs::metrics::kServeSwapsFailed)),
      snapshots_retired_(
          registry_.counter(obs::metrics::kServeSnapshotsRetired)),
      snapshots_reclaimed_(
          registry_.counter(obs::metrics::kServeSnapshotsReclaimed)),
      query_ns_(registry_.histogram(obs::metrics::kServeQueryNs)) {
  // Cold-start ladder: a clean stored generation for this scenario is
  // epoch 1 with no world build; anything short of that (no store, no
  // usable generation, a generation for a different scenario) falls
  // back to the fresh build below.
  if (!options_.store_dir.empty()) {
    if (auto dir = store::StoreDir::open(options_.store_dir); dir.ok()) {
      store_dir_.emplace(std::move(dir).take());
      if (options_.sharded) {
        cold_start_sharded(config);
      } else {
        cold_start_monolithic(config);
      }
      if (!loaded_from_store_) {
        registry_.counter(obs::metrics::kStoreRecoverRebuilds).add();
      }
    }
  }
  if (!loaded_from_store_) {
    // take() throws fault::IoError when the initial scenario is
    // unbuildable — nothing would be serving, so surface it.
    store_.publish(options_.sharded
                       ? Snapshot::build_sharded(config, 1, options_.policy,
                                                 options_.shard_layout)
                             .take()
                       : Snapshot::build(config, 1, options_.policy).take());
  }
}

void Server::cold_start_monolithic(const synth::ScenarioConfig& config) {
  store::RecoveryManager manager(*store_dir_);
  auto recovered = manager.recover();
  if (!recovered.ok()) return;
  if (!(recovered.value().loaded.world.config() == config)) return;
  store::RecoveredWorld rec = std::move(recovered).take();
  core::World world = std::move(rec.loaded.world);
  core::ProviderRiskResult risk = rec.loaded.provider_risk;
  // Replay the generation's delta-log chain so epoch 1 resumes at the
  // last durably applied batch, not the last full snapshot. A batch
  // that no longer applies ends the replay (serve the last provably
  // consistent state) and disengages the log — appending past a
  // divergence would corrupt the chain's meaning.
  if (auto log = delta::DeltaLog::open(*store_dir_, rec.generation.number,
                                       rec.generation.crc);
      log.ok()) {
    delta_log_.emplace(std::move(log).take());
    delta::DeltaLog::Replay replayed = delta_log_->replay();
    bool diverged = false;
    for (const std::vector<delta::FeedEvent>& batch : replayed.batches) {
      delta::ApplyOptions apply_options;
      apply_options.policy = options_.policy;
      auto applied = delta::Applier::apply(world, risk, batch, apply_options);
      if (!applied.ok()) {
        diverged = true;
        break;
      }
      delta::ApplyResult result = std::move(applied).take();
      world = std::move(result.world);
      risk = std::move(result.provider_risk);
    }
    if (diverged) delta_log_.reset();
  }
  store_.publish(Snapshot::adopt(std::move(world), 1, std::move(risk)));
  loaded_from_store_ = true;
}

void Server::cold_start_sharded(const synth::ScenarioConfig& config) {
  shard::ShardRecoveryManager manager(*store_dir_, options_.shard_layout);
  auto recovered = manager.recover();
  if (!recovered.ok()) return;
  shard::RecoveredShardedWorld rec = std::move(recovered).take();
  if (!(rec.world.config() == config)) return;
  shard::ShardedWorld view = std::move(rec.world);
  // Replay the generation's delta-log chain, exactly like the
  // monolithic ladder — but replaying needs the monolithic world, so
  // the view only materializes when the chain is non-empty: the common
  // no-log cold start stays zero-copy. A degraded view (quarantined
  // shards) cannot materialize; it serves the bare generation image and
  // the log disengages, same contract as a diverged batch.
  std::optional<core::World> world;
  core::ProviderRiskResult risk = view.provider_risk();
  if (auto log = delta::DeltaLog::open(*store_dir_, rec.generation.number,
                                       rec.generation.crc);
      log.ok()) {
    delta_log_.emplace(std::move(log).take());
    delta::DeltaLog::Replay replayed = delta_log_->replay();
    bool diverged = false;
    if (!replayed.batches.empty()) {
      if (auto materialized = view.materialize(); materialized.ok()) {
        world.emplace(std::move(materialized).take());
      } else {
        diverged = true;
      }
    }
    if (world.has_value()) {
      for (const std::vector<delta::FeedEvent>& batch : replayed.batches) {
        delta::ApplyOptions apply_options;
        apply_options.policy = options_.policy;
        auto applied = delta::Applier::apply(*world, risk, batch,
                                             apply_options);
        if (!applied.ok()) {
          diverged = true;
          break;
        }
        delta::ApplyResult result = std::move(applied).take();
        view = shard::apply_update(view, result);
        world.emplace(std::move(result.world));
        risk = std::move(result.provider_risk);
      }
    }
    if (diverged) delta_log_.reset();
  }
  store_.publish(world.has_value()
                     ? Snapshot::adopt_sharded(std::move(view), 1,
                                               std::move(*world))
                     : Snapshot::adopt_sharded(std::move(view), 1));
  loaded_from_store_ = true;
}

synth::ScenarioConfig Server::config() const {
  return store_.acquire()->config();
}

template <class Query, class Resp>
Resp Server::answer(const Query& q) {
  // One snapshot acquisition per request: the epoch this pins is the
  // epoch of every byte in the answer, hot-swap or not.
  const std::shared_ptr<const Snapshot> snap = store_.acquire();
  const Epoch epoch = snap->epoch();
  Resp r;
  if (options_.cache_enabled) {
    const std::uint64_t fp = fingerprint(q);
    std::optional<CachedResponse> hit = cache_.get(epoch, fp);
    if (const Resp* cached = hit ? std::get_if<Resp>(&*hit) : nullptr) {
      r = *cached;
    } else {
      r = evaluate(*snap, q);
      cache_.put(epoch, fp, r);
    }
  } else {
    r = evaluate(*snap, q);
  }
  return r;
}

Response Server::handle(const Request& request, Dispatch dispatch) {
  queries_.add();
  const bool timed = obs::enabled();
  const std::uint64_t t0 = timed ? registry_.now_ns() : 0;
  Response r = std::visit(
      [&](const auto& q) -> Response {
        using Q = std::decay_t<decltype(q)>;
        if constexpr (std::is_same_v<Q, PointRiskQuery>) {
          if (dispatch == Dispatch::kBatched) return batcher_.submit(q);
          return answer<Q, PointRiskResponse>(q);
        } else if constexpr (std::is_same_v<Q, BBoxAggregateQuery>) {
          return answer<Q, BBoxAggregateResponse>(q);
        } else if constexpr (std::is_same_v<Q, ProviderExposureQuery>) {
          return answer<Q, ProviderExposureResponse>(q);
        } else if constexpr (std::is_same_v<Q, TopKSitesQuery>) {
          return answer<Q, TopKSitesResponse>(q);
        } else if constexpr (std::is_same_v<Q, EnsembleSummaryQuery>) {
          return answer<Q, EnsembleSummaryResponse>(q);
        } else {
          static_assert(std::is_same_v<Q, TopKFragileSitesQuery>);
          return answer<Q, TopKFragileSitesResponse>(q);
        }
      },
      request);
  if (timed) query_ns_.record(registry_.now_ns() - t0);
  return r;
}

PointRiskResponse Server::point_risk(const PointRiskQuery& q) {
  return std::get<PointRiskResponse>(handle(Request{q}));
}

BBoxAggregateResponse Server::bbox_aggregate(const BBoxAggregateQuery& q) {
  return std::get<BBoxAggregateResponse>(handle(Request{q}));
}

ProviderExposureResponse Server::provider_exposure(
    const ProviderExposureQuery& q) {
  return std::get<ProviderExposureResponse>(handle(Request{q}));
}

TopKSitesResponse Server::top_k_sites(const TopKSitesQuery& q) {
  return std::get<TopKSitesResponse>(handle(Request{q}, Dispatch::kDirect));
}

EnsembleSummaryResponse Server::ensemble_summary(
    const EnsembleSummaryQuery& q) {
  return std::get<EnsembleSummaryResponse>(handle(Request{q}));
}

TopKFragileSitesResponse Server::top_k_fragile_sites(
    const TopKFragileSitesQuery& q) {
  return std::get<TopKFragileSitesResponse>(handle(Request{q}));
}

PointRiskResponse Server::point_risk_batched(const PointRiskQuery& q) {
  return std::get<PointRiskResponse>(handle(Request{q}, Dispatch::kBatched));
}

void Server::evaluate_batch(std::span<const PointRiskQuery> queries,
                            std::span<PointRiskResponse> responses) {
  // One snapshot for the whole round: a batch answers from one epoch.
  const std::shared_ptr<const Snapshot> snap = store_.acquire();
  const Epoch epoch = snap->epoch();
  std::vector<std::uint32_t> miss;
  miss.reserve(queries.size());
  if (options_.cache_enabled) {
    for (std::uint32_t i = 0; i < queries.size(); ++i) {
      std::optional<CachedResponse> hit = cache_.get(epoch,
                                                     fingerprint(queries[i]));
      if (const PointRiskResponse* cached =
              hit ? std::get_if<PointRiskResponse>(&*hit) : nullptr) {
        responses[i] = *cached;
      } else {
        miss.push_back(i);
      }
    }
  } else {
    miss.resize(queries.size());
    std::iota(miss.begin(), miss.end(), 0u);
  }
  // Vectorized evaluation of the misses — the whole point of batching:
  // one exec region amortizes pool dispatch across the round, and
  // min_parallel keeps micro-rounds on the calling thread.
  exec::parallel_for(
      miss.size(),
      [&](std::size_t j) {
        const std::uint32_t i = miss[j];
        responses[i] = evaluate(*snap, queries[i]);
      },
      {.grain = 8, .min_parallel = 16});
  if (options_.cache_enabled) {
    for (const std::uint32_t i : miss) {
      cache_.put(epoch, fingerprint(queries[i]), responses[i]);
    }
  }
}

void Server::publish_locked(std::shared_ptr<const Snapshot> next) {
  store_.publish(std::move(next));
  snapshots_retired_.add();
  // Entries for the displaced epoch can never be served again (the
  // epoch is in the cache key); dropping them now just frees memory.
  cache_.invalidate_all();
  swaps_published_.add();
  const std::uint64_t reclaimed = store_.reclaimed();
  snapshots_reclaimed_.add(reclaimed - reclaimed_reported_);
  reclaimed_reported_ = reclaimed;
}

fault::Status Server::rebuild(const synth::ScenarioConfig& config) {
  const std::lock_guard<std::mutex> lock(rebuild_mu_);
  const Epoch epoch = store_.current_epoch() + 1;
  fault::Result<std::shared_ptr<const Snapshot>> built =
      options_.sharded ? Snapshot::build_sharded(config, epoch,
                                                 options_.policy,
                                                 options_.shard_layout)
                       : Snapshot::build(config, epoch, options_.policy);
  if (!built.ok()) {
    // Failed swap: nothing published, nothing invalidated — the
    // current epoch keeps serving and the epoch number is not burned.
    swaps_failed_.add();
    return built.status();
  }
  publish_locked(std::move(built).take());
  // The serving state no longer derives from the logged generation;
  // appending to the old chain would record history the serving path
  // never took. save_snapshot() re-roots.
  delta_log_.reset();
  return {};
}

fault::Status Server::apply_delta(std::span<const delta::FeedEvent> events,
                                  delta::ApplyStats* stats) {
  const std::lock_guard<std::mutex> lock(rebuild_mu_);
  const std::shared_ptr<const Snapshot> snap = store_.acquire();
  const shard::ShardedWorld* base = snap->sharded();
  // A sharded epoch applies deltas against its materialized world; the
  // materialization can fail (a degraded cold-start view has shards
  // with no data to scatter back), and that failure gets the same
  // survivability contract as any other failed swap.
  const core::World* base_world = nullptr;
  try {
    base_world = &snap->world();
  } catch (const fault::IoError& e) {
    swaps_failed_.add();
    return e.status();
  }
  delta::ApplyOptions apply_options;
  apply_options.policy = options_.policy;
  auto applied = delta::Applier::apply(*base_world, snap->provider_risk(),
                                       events, apply_options);
  if (!applied.ok()) {
    // Same survivability contract as a failed rebuild(): nothing
    // published, the current epoch keeps serving.
    swaps_failed_.add();
    return applied.status();
  }
  delta::ApplyResult result = std::move(applied).take();
  if (stats != nullptr) *stats = result.stats;
  if (base != nullptr) {
    // Route the batch's dirty boxes to the touched shards only; every
    // untouched shard's columns are shared with the serving view by
    // refcount (shard.delta.{rebuilt,shared} count the split).
    shard::ShardedWorld next = shard::apply_update(*base, result);
    publish_locked(Snapshot::adopt_sharded(std::move(next), snap->epoch() + 1,
                                           std::move(result.world)));
  } else {
    publish_locked(Snapshot::adopt(std::move(result.world), snap->epoch() + 1,
                                   std::move(result.provider_risk)));
  }
  if (delta_log_) {
    if (!delta_log_->append(events).ok()) {
      // The serving state now leads the durable chain by this batch; a
      // later append would produce a chain whose replay is not a prefix
      // of serving history. Disengage until the next save_snapshot()
      // re-roots — durability degrades, serving never does.
      delta_log_.reset();
    }
  }
  return {};
}

fault::Status Server::save_snapshot() {
  if (!store_dir_) {
    return fault::Status::error(fault::ErrCode::kIoFailure, 0, "serve.store",
                                "no store directory configured");
  }
  // Hold rebuild_mu_ across encode AND commit: a delta applied between
  // them would re-root the log at an image that predates the serving
  // state, so replay would diverge from serving history. Queries never
  // take this lock; only swaps wait. Lock order rebuild_mu_ -> save_mu_
  // matches every other path.
  const std::lock_guard<std::mutex> rebuild_lock(rebuild_mu_);
  const std::shared_ptr<const Snapshot> snap = store_.acquire();
  if (snap->sharded() != nullptr &&
      snap->sharded()->quarantined_count() > 0) {
    // Persisting a degraded view would commit the data loss as the
    // newest generation — the one recovery prefers.
    return fault::Status::error(
        fault::ErrCode::kIoFailure, snap->epoch(), "serve.store",
        "refusing to persist a degraded sharded view");
  }
  const std::string image =
      snap->sharded() != nullptr
          ? shard::encode_sharded(*snap->sharded())
          : store::encode_world(snap->world(), snap->provider_risk());
  const std::lock_guard<std::mutex> lock(save_mu_);
  auto gen = store_dir_->commit(image);
  if (!gen.ok()) return gen.status();
  // The new generation supersedes every older increment chain, and the
  // serving state is now exactly this image — re-root the delta log so
  // subsequent apply_delta() batches chain off it.
  delta::DeltaLog::prune_stale(*store_dir_, gen.value().number);
  auto log = delta::DeltaLog::open(*store_dir_, gen.value().number,
                                   gen.value().crc);
  if (log.ok()) {
    delta_log_.emplace(std::move(log).take());
  } else {
    delta_log_.reset();
  }
  return {};
}

fault::Status Server::rebuild_from_store() {
  if (!store_dir_) {
    return fault::Status::error(fault::ErrCode::kIoFailure, 0, "serve.store",
                                "no store directory configured");
  }
  const std::lock_guard<std::mutex> lock(rebuild_mu_);
  const Epoch epoch = store_.current_epoch() + 1;
  if (options_.sharded) {
    shard::ShardRecoveryManager manager(*store_dir_, options_.shard_layout);
    auto recovered = manager.recover();
    if (!recovered.ok()) {
      swaps_failed_.add();
      return recovered.status();
    }
    publish_locked(
        Snapshot::adopt_sharded(std::move(recovered).take().world, epoch));
    delta_log_.reset();
    return {};
  }
  store::RecoveryManager manager(*store_dir_);
  auto recovered = manager.recover();
  if (!recovered.ok()) {
    // Same survivability contract as a failed rebuild(): nothing
    // published, current epoch keeps serving.
    swaps_failed_.add();
    return recovered.status();
  }
  publish_locked(
      Snapshot::adopt(std::move(recovered).take().loaded.world, epoch));
  // The published state is the bare generation image — any increments
  // already chained past it are ahead of serving, so appending would
  // diverge. save_snapshot() re-roots.
  delta_log_.reset();
  return {};
}

}  // namespace fa::serve

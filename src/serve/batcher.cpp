#include "serve/batcher.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace fa::serve {

PointBatcher::PointBatcher(std::size_t max_batch, BatchFn evaluate,
                           obs::Registry& registry)
    : max_batch_(max_batch == 0 ? 1 : max_batch),
      evaluate_(std::move(evaluate)),
      flushes_(registry.counter(obs::metrics::kServeBatchFlushes)),
      coalesced_(registry.counter("serve.batch.coalesced")),
      batch_size_(registry.histogram(obs::metrics::kServeBatchSize)),
      queue_depth_(registry.histogram(obs::metrics::kServeQueueDepth)) {}

PointRiskResponse PointBatcher::submit(const PointRiskQuery& query) {
  std::shared_ptr<Round> round;
  std::size_t index = 0;
  bool leader = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (rounds_.empty() || rounds_.back()->queries.size() >= max_batch_) {
      rounds_.push_back(std::make_shared<Round>());
    }
    round = rounds_.back();
    index = round->queries.size();
    round->queries.push_back(query);
    std::size_t depth = 0;
    for (const std::shared_ptr<Round>& r : rounds_) {
      depth += r->queries.size();
    }
    queue_depth_.record(depth);
    if (!leader_active_) {
      leader_active_ = true;
      leader = true;
    }
  }
  if (leader) {
    // Drain every queued round (including this thread's own) before
    // handing leadership back; followers that queued behind us are
    // served by this drain, and arrivals during it open new rounds that
    // we also pick up — so no round is ever left without an executor.
    while (true) {
      std::shared_ptr<Round> work;
      {
        const std::lock_guard<std::mutex> lock(mu_);
        if (rounds_.empty()) {
          leader_active_ = false;
          break;
        }
        work = rounds_.front();
        rounds_.pop_front();
      }
      run_round(*work);
    }
  } else {
    std::unique_lock<std::mutex> lock(mu_);
    round->cv.wait(lock, [&] { return round->done; });
  }
  if (round->error != nullptr) std::rethrow_exception(round->error);
  return round->responses[index];
}

void PointBatcher::run_round(Round& round) {
  // Kernel span: one per vectorized flush, so the bench OBS profile
  // shows how round execution time relates to the geo batch kernels.
  const obs::Span span("serve.batch.run_round");
  // The round left the deque before this call, so `queries` is frozen;
  // only this thread touches `responses` until `done` flips.
  round.responses.resize(round.queries.size());
  std::exception_ptr error;
  try {
    evaluate_(std::span<const PointRiskQuery>(round.queries),
              std::span<PointRiskResponse>(round.responses));
  } catch (...) {
    error = std::current_exception();
  }
  const std::size_t batch = round.queries.size();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    round.error = error;
    round.done = true;
  }
  round.cv.notify_all();
  flushes_.add();
  batch_size_.record(batch);
  if (batch > 1) coalesced_.add(batch - 1);
}

}  // namespace fa::serve

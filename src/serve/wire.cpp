#include "serve/wire.hpp"

#include <utility>

namespace fa::serve::wire {

namespace {

constexpr std::string_view kSource = "serve.wire";

fault::Status err(fault::ErrCode code, std::size_t offset,
                  std::string message) {
  return fault::Status::error(code, offset, std::string(kSource),
                              std::move(message));
}

// Cursor over a payload; every read is bounds-checked and records the
// offset of the first missing byte for truncation diagnostics.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  std::size_t offset() const { return pos_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool done() const { return pos_ == bytes_.size(); }

  bool get_u8(std::uint8_t& out) {
    if (remaining() < 1) return false;
    out = static_cast<std::uint8_t>(bytes_[pos_++]);
    return true;
  }
  bool get_u32(std::uint32_t& out) {
    if (remaining() < 4) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(bytes_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool get_u64(std::uint64_t& out) {
    if (remaining() < 8) return false;
    out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(bytes_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool get_i32(std::int32_t& out) {
    std::uint32_t u = 0;
    if (!get_u32(u)) return false;
    out = static_cast<std::int32_t>(u);
    return true;
  }
  bool get_f64(double& out) {
    std::uint64_t u = 0;
    if (!get_u64(u)) return false;
    out = std::bit_cast<double>(u);
    return true;
  }
  bool get_bool(bool& out) {
    std::uint8_t u = 0;
    if (!get_u8(u)) return false;
    out = u != 0;
    return true;
  }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

fault::Status truncated(const Reader& r) {
  return err(fault::ErrCode::kTruncated, r.offset(),
             "payload ends mid-field");
}

// Version + tag, shared by both decoders.
fault::Result<Tag> decode_header(Reader& r) {
  std::uint8_t version = 0;
  std::uint8_t tag = 0;
  if (!r.get_u8(version) || !r.get_u8(tag)) return truncated(r);
  if (version != kWireVersion) {
    return err(fault::ErrCode::kParse, 0,
               "unsupported wire version " + std::to_string(version));
  }
  return static_cast<Tag>(tag);
}

// A complete body must consume the payload exactly; trailing bytes mean
// the frame length lied about the content.
fault::Status check_drained(const Reader& r) {
  if (r.done()) return {};
  return err(fault::ErrCode::kSchema, r.offset(),
             std::to_string(r.remaining()) + " trailing bytes after body");
}

template <class T>
fault::Result<T> complete(Reader& r, T value) {
  if (fault::Status s = check_drained(r); !s.ok()) return s;
  return value;
}

}  // namespace

std::string encode(const Request& request) {
  std::string out;
  out.reserve(40);
  detail::put_payload(out, request);
  return out;
}

std::string encode(const Response& response) {
  std::string out;
  std::visit(
      [&out](const auto& r) {
        using R = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<R, PointRiskResponse>) {
          out.reserve(40);
          detail::put_header(out, Tag::kPointRiskResponse);
          detail::put_u64(out, r.epoch);
          detail::put_u8(out, static_cast<std::uint8_t>(r.whp));
          detail::put_u8(out, r.at_risk ? 1 : 0);
          detail::put_u8(out, r.urban ? 1 : 0);
          detail::put_u8(out, r.roadside ? 1 : 0);
          detail::put_i32(out, r.state);
          detail::put_i32(out, r.county);
          detail::put_u32(out, r.nearby_txr);
          detail::put_u32(out, r.nearby_at_risk);
        } else if constexpr (std::is_same_v<R, BBoxAggregateResponse>) {
          out.reserve(128);
          detail::put_header(out, Tag::kBBoxAggregateResponse);
          detail::put_u64(out, r.epoch);
          detail::put_u64(out, r.transceivers);
          for (const std::uint64_t c : r.by_class) detail::put_u64(out, c);
          detail::put_u64(out, r.at_risk);
          for (const std::uint64_t p : r.by_provider) detail::put_u64(out, p);
        } else if constexpr (std::is_same_v<R, ProviderExposureResponse>) {
          out.reserve(48);
          detail::put_header(out, Tag::kProviderExposureResponse);
          detail::put_u64(out, r.epoch);
          detail::put_u8(out, static_cast<std::uint8_t>(r.provider));
          detail::put_u64(out, r.fleet);
          detail::put_u64(out, r.moderate);
          detail::put_u64(out, r.high);
          detail::put_u64(out, r.very_high);
        } else if constexpr (std::is_same_v<R, TopKSitesResponse>) {
          out.reserve(16 + r.sites.size() * 29);
          detail::put_header(out, Tag::kTopKSitesResponse);
          detail::put_u64(out, r.epoch);
          detail::put_u32(out, r.candidates);
          detail::put_u32(out, static_cast<std::uint32_t>(r.sites.size()));
          for (const RankedSite& site : r.sites) {
            detail::put_u32(out, site.txr_id);
            detail::put_f64(out, site.position.lon);
            detail::put_f64(out, site.position.lat);
            detail::put_u8(out, static_cast<std::uint8_t>(site.whp));
            detail::put_f64(out, site.distance_m);
          }
        } else if constexpr (std::is_same_v<R, EnsembleSummaryResponse>) {
          out.reserve(64 + r.exceedance.size() * 16);
          detail::put_header(out, Tag::kEnsembleSummaryResponse);
          detail::put_u64(out, r.epoch);
          detail::put_u32(out, r.members);
          detail::put_u32(out, r.quarantined);
          detail::put_u32(out, r.sites);
          detail::put_u64(out, r.fires);
          detail::put_f64(out, r.expected_user_hours);
          detail::put_f64(out, r.expected_power_user_hours);
          detail::put_f64(out, r.expected_pop_exposure);
          detail::put_f64(out, r.expected_overlap_user_hours);
          detail::put_u32(out,
                          static_cast<std::uint32_t>(r.exceedance.size()));
          for (const ExceedanceRow& row : r.exceedance) {
            detail::put_f64(out, row.user_hours);
            detail::put_f64(out, row.probability);
          }
        } else {
          static_assert(std::is_same_v<R, TopKFragileSitesResponse>);
          out.reserve(24 + r.sites_ranked.size() * 52);
          detail::put_header(out, Tag::kTopKFragileSitesResponse);
          detail::put_u64(out, r.epoch);
          detail::put_u32(out, r.members);
          detail::put_u32(out, r.sites);
          detail::put_u32(
              out, static_cast<std::uint32_t>(r.sites_ranked.size()));
          for (const FragileSiteRow& row : r.sites_ranked) {
            detail::put_u32(out, row.site);
            detail::put_f64(out, row.position.lon);
            detail::put_f64(out, row.position.lat);
            detail::put_f64(out, row.users);
            detail::put_f64(out, row.expected_user_hours);
            detail::put_f64(out, row.power_share);
            detail::put_f64(out, row.outage_probability);
          }
        }
      },
      response);
  return out;
}

fault::Result<Request> decode_request(std::string_view payload) {
  Reader r(payload);
  fault::Result<Tag> header = decode_header(r);
  if (!header.ok()) return header.status();
  switch (header.value()) {
    case Tag::kPointRiskQuery: {
      PointRiskQuery q;
      if (!r.get_f64(q.point.lon) || !r.get_f64(q.point.lat) ||
          !r.get_f64(q.neighborhood_m)) {
        return truncated(r);
      }
      return complete(r, Request{q});
    }
    case Tag::kBBoxAggregateQuery: {
      BBoxAggregateQuery q;
      if (!r.get_f64(q.bbox.min_x) || !r.get_f64(q.bbox.min_y) ||
          !r.get_f64(q.bbox.max_x) || !r.get_f64(q.bbox.max_y)) {
        return truncated(r);
      }
      return complete(r, Request{q});
    }
    case Tag::kProviderExposureQuery: {
      std::uint8_t provider = 0;
      if (!r.get_u8(provider)) return truncated(r);
      if (provider >= cellnet::kNumProviders) {
        return err(fault::ErrCode::kOutOfRange, r.offset() - 1,
                   "provider " + std::to_string(provider) + " out of range");
      }
      ProviderExposureQuery q;
      q.provider = static_cast<cellnet::Provider>(provider);
      return complete(r, Request{q});
    }
    case Tag::kTopKSitesQuery: {
      TopKSitesQuery q;
      if (!r.get_f64(q.center.lon) || !r.get_f64(q.center.lat) ||
          !r.get_f64(q.radius_m) || !r.get_u32(q.k)) {
        return truncated(r);
      }
      if (q.k > wire::kMaxTopK) {
        return err(fault::ErrCode::kOutOfRange, r.offset() - 4,
                   "k " + std::to_string(q.k) + " exceeds limit " +
                       std::to_string(kMaxTopK));
      }
      return complete(r, Request{q});
    }
    case Tag::kEnsembleSummaryQuery: {
      EnsembleSummaryQuery q;
      if (!r.get_u32(q.members) || !r.get_u64(q.seed)) return truncated(r);
      if (q.members == 0 || q.members > kMaxEnsembleMembers) {
        return err(fault::ErrCode::kOutOfRange, 2,
                   "members " + std::to_string(q.members) +
                       " outside [1, " + std::to_string(kMaxEnsembleMembers) +
                       "]");
      }
      return complete(r, Request{q});
    }
    case Tag::kTopKFragileSitesQuery: {
      TopKFragileSitesQuery q;
      if (!r.get_u32(q.members) || !r.get_u64(q.seed) || !r.get_u32(q.k)) {
        return truncated(r);
      }
      if (q.members == 0 || q.members > kMaxEnsembleMembers) {
        return err(fault::ErrCode::kOutOfRange, 2,
                   "members " + std::to_string(q.members) +
                       " outside [1, " + std::to_string(kMaxEnsembleMembers) +
                       "]");
      }
      if (q.k > kMaxTopK) {
        return err(fault::ErrCode::kOutOfRange, r.offset() - 4,
                   "k " + std::to_string(q.k) + " exceeds limit " +
                       std::to_string(kMaxTopK));
      }
      return complete(r, Request{q});
    }
    default:
      return err(fault::ErrCode::kParse, 1,
                 "unknown request tag " +
                     std::to_string(static_cast<int>(header.value())));
  }
}

fault::Result<Response> decode_response(std::string_view payload) {
  Reader r(payload);
  fault::Result<Tag> header = decode_header(r);
  if (!header.ok()) return header.status();
  switch (header.value()) {
    case Tag::kPointRiskResponse: {
      PointRiskResponse resp;
      std::uint8_t whp = 0;
      if (!r.get_u64(resp.epoch) || !r.get_u8(whp) ||
          !r.get_bool(resp.at_risk) || !r.get_bool(resp.urban) ||
          !r.get_bool(resp.roadside) || !r.get_i32(resp.state) ||
          !r.get_i32(resp.county) || !r.get_u32(resp.nearby_txr) ||
          !r.get_u32(resp.nearby_at_risk)) {
        return truncated(r);
      }
      if (whp >= synth::kNumWhpClasses) {
        return err(fault::ErrCode::kOutOfRange, 9,
                   "whp class " + std::to_string(whp) + " out of range");
      }
      resp.whp = static_cast<synth::WhpClass>(whp);
      return complete(r, Response{resp});
    }
    case Tag::kBBoxAggregateResponse: {
      BBoxAggregateResponse resp;
      bool ok = r.get_u64(resp.epoch) && r.get_u64(resp.transceivers);
      for (std::uint64_t& c : resp.by_class) ok = ok && r.get_u64(c);
      ok = ok && r.get_u64(resp.at_risk);
      for (std::uint64_t& p : resp.by_provider) ok = ok && r.get_u64(p);
      if (!ok) return truncated(r);
      return complete(r, Response{resp});
    }
    case Tag::kProviderExposureResponse: {
      ProviderExposureResponse resp;
      std::uint8_t provider = 0;
      if (!r.get_u64(resp.epoch) || !r.get_u8(provider) ||
          !r.get_u64(resp.fleet) || !r.get_u64(resp.moderate) ||
          !r.get_u64(resp.high) || !r.get_u64(resp.very_high)) {
        return truncated(r);
      }
      if (provider >= cellnet::kNumProviders) {
        return err(fault::ErrCode::kOutOfRange, 10,
                   "provider " + std::to_string(provider) + " out of range");
      }
      resp.provider = static_cast<cellnet::Provider>(provider);
      return complete(r, Response{resp});
    }
    case Tag::kTopKSitesResponse: {
      TopKSitesResponse resp;
      std::uint32_t n = 0;
      if (!r.get_u64(resp.epoch) || !r.get_u32(resp.candidates) ||
          !r.get_u32(n)) {
        return truncated(r);
      }
      if (n > kMaxTopK) {
        return err(fault::ErrCode::kOutOfRange, r.offset() - 4,
                   "site count " + std::to_string(n) + " exceeds limit " +
                       std::to_string(kMaxTopK));
      }
      resp.sites.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        RankedSite site;
        std::uint8_t whp = 0;
        if (!r.get_u32(site.txr_id) || !r.get_f64(site.position.lon) ||
            !r.get_f64(site.position.lat) || !r.get_u8(whp) ||
            !r.get_f64(site.distance_m)) {
          return truncated(r);
        }
        if (whp >= synth::kNumWhpClasses) {
          return err(fault::ErrCode::kOutOfRange, r.offset(),
                     "whp class " + std::to_string(whp) + " out of range");
        }
        site.whp = static_cast<synth::WhpClass>(whp);
        resp.sites.push_back(site);
      }
      return complete(r, Response{resp});
    }
    case Tag::kEnsembleSummaryResponse: {
      EnsembleSummaryResponse resp;
      std::uint32_t n = 0;
      if (!r.get_u64(resp.epoch) || !r.get_u32(resp.members) ||
          !r.get_u32(resp.quarantined) || !r.get_u32(resp.sites) ||
          !r.get_u64(resp.fires) || !r.get_f64(resp.expected_user_hours) ||
          !r.get_f64(resp.expected_power_user_hours) ||
          !r.get_f64(resp.expected_pop_exposure) ||
          !r.get_f64(resp.expected_overlap_user_hours) || !r.get_u32(n)) {
        return truncated(r);
      }
      if (n > kMaxExceedanceRows) {
        return err(fault::ErrCode::kOutOfRange, r.offset() - 4,
                   "exceedance rows " + std::to_string(n) +
                       " exceeds limit " + std::to_string(kMaxExceedanceRows));
      }
      resp.exceedance.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        ExceedanceRow row;
        if (!r.get_f64(row.user_hours) || !r.get_f64(row.probability)) {
          return truncated(r);
        }
        resp.exceedance.push_back(row);
      }
      return complete(r, Response{resp});
    }
    case Tag::kTopKFragileSitesResponse: {
      TopKFragileSitesResponse resp;
      std::uint32_t n = 0;
      if (!r.get_u64(resp.epoch) || !r.get_u32(resp.members) ||
          !r.get_u32(resp.sites) || !r.get_u32(n)) {
        return truncated(r);
      }
      if (n > kMaxTopK) {
        return err(fault::ErrCode::kOutOfRange, r.offset() - 4,
                   "site count " + std::to_string(n) + " exceeds limit " +
                       std::to_string(kMaxTopK));
      }
      resp.sites_ranked.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        FragileSiteRow row;
        if (!r.get_u32(row.site) || !r.get_f64(row.position.lon) ||
            !r.get_f64(row.position.lat) || !r.get_f64(row.users) ||
            !r.get_f64(row.expected_user_hours) ||
            !r.get_f64(row.power_share) ||
            !r.get_f64(row.outage_probability)) {
          return truncated(r);
        }
        resp.sites_ranked.push_back(row);
      }
      return complete(r, Response{resp});
    }
    default:
      return err(fault::ErrCode::kParse, 1,
                 "unknown response tag " +
                     std::to_string(static_cast<int>(header.value())));
  }
}

}  // namespace fa::serve::wire

#include "serve/cache.hpp"

#include <algorithm>

#include "fault/injector.hpp"
#include "obs/metrics.hpp"

namespace fa::serve {

ShardedCache::ShardedCache(const CacheConfig& config, obs::Registry& registry)
    : hits_(registry.counter(obs::metrics::kServeCacheHits)),
      misses_(registry.counter(obs::metrics::kServeCacheMisses)),
      evictions_(registry.counter(obs::metrics::kServeCacheEvictions)),
      corrupt_dropped_(
          registry.counter(obs::metrics::kServeCacheCorruptDropped)),
      invalidations_(
          registry.counter(obs::metrics::kServeCacheInvalidations)) {
  const int shards = std::max(1, config.shards);
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  per_shard_capacity_ = std::max<std::size_t>(
      1, config.capacity / static_cast<std::size_t>(shards));
}

std::optional<CachedResponse> ShardedCache::get(Epoch epoch,
                                                std::uint64_t fingerprint) {
  Shard& shard = shard_of(fingerprint);
  const Key key{epoch, fingerprint};
  const std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.add();
    return std::nullopt;
  }
  const fault::Injector& inj = fault::Injector::global();
  if (inj.armed() && inj.fires(kCacheCorruptSite, fingerprint)) {
    shard.lru.erase(it->second);
    shard.index.erase(it);
    corrupt_dropped_.add();
    misses_.add();
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.add();
  return it->second->response;
}

void ShardedCache::put(Epoch epoch, std::uint64_t fingerprint,
                       CachedResponse response) {
  Shard& shard = shard_of(fingerprint);
  const Key key{epoch, fingerprint};
  const std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->response = std::move(response);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, std::move(response)});
  shard.index.emplace(key, shard.lru.begin());
  while (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.add();
  }
}

void ShardedCache::invalidate_all() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
  invalidations_.add();
}

std::size_t ShardedCache::size() const {
  std::size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace fa::serve

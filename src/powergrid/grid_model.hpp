// Electric distribution model for the wildfire-interdependence analysis.
//
// The paper's central case-study finding is that cellular outages are
// dominated by *power* loss — de-energized distribution circuits — rather
// than burned towers, and its Section 5 names power-transport systems as
// the critical co-infrastructure. This module builds that substrate:
//
//   * substations seeded at cities and county anchors,
//   * distribution feeders grown outward from each substation over the
//     cell sites it serves (a greedy capacitated spanning forest),
//   * per-feeder-segment wildfire exposure from the WHP surface,
//   * a PSPS (public-safety power shutoff) policy that de-energizes the
//     riskiest feeders as wind severity rises, taking every downstream
//     site dark.
//
// The outage simulator consumes this in place of its simple lattice
// bucketing when a GridModel is supplied.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cellnet/types.hpp"
#include "geo/lonlat.hpp"
#include "synth/hazard.hpp"
#include "synth/rng.hpp"

namespace fa::powergrid {

struct Substation {
  std::uint32_t id = 0;
  geo::LonLat position;
  std::string name;
};

// A feeder serves an ordered chain of cell sites from one substation.
struct Feeder {
  std::uint32_t id = 0;
  std::uint32_t substation = 0;
  std::vector<std::uint32_t> sites;   // indices into the site list served
  double length_m = 0.0;              // total conductor length
  double max_exposure = 0.0;          // worst WHP fuel factor along the run
  double mean_exposure = 0.0;
  bool hardened = false;              // underground / covered conductor
};

struct GridModelConfig {
  int sites_per_feeder = 14;      // capacity before a new feeder is grown
  double hardened_fraction = 0.25;  // share of feeders rebuilt fire-safe
  // Exposure sampling step along feeder segments (metres).
  double sample_step_m = 2000.0;
};

class GridModel {
 public:
  // Builds the network over `sites` (positions only are used). The model
  // is deterministic in (sites, whp, seed).
  static GridModel build(const std::vector<cellnet::CellSite>& sites,
                         const synth::WhpModel& whp,
                         const synth::UsAtlas& atlas, std::uint64_t seed,
                         const GridModelConfig& config = {});

  const std::vector<Substation>& substations() const { return substations_; }
  const std::vector<Feeder>& feeders() const { return feeders_; }
  // Feeder serving each input site (parallel to the input site list).
  const std::vector<std::uint32_t>& feeder_of_site() const {
    return feeder_of_;
  }

  // PSPS decision: probability the feeder is proactively de-energized at
  // `wind_severity` in [0,1]. Hardened feeders are exempt below extreme
  // severity; exposure drives the rest.
  double shutoff_probability(const Feeder& feeder, double wind_severity,
                             double base_rate) const;

  // Shares of sites on feeders whose worst segment crosses at-risk
  // terrain — the "your power comes through the fire zone even if your
  // tower does not" statistic (Section 3.8's motivation).
  double share_of_sites_on_exposed_feeders(double exposure_threshold) const;

 private:
  std::vector<Substation> substations_;
  std::vector<Feeder> feeders_;
  std::vector<std::uint32_t> feeder_of_;
};

}  // namespace fa::powergrid

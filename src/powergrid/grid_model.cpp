#include "powergrid/grid_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "firesim/fire.hpp"  // fuel_factor
#include "geo/geodesy.hpp"

namespace fa::powergrid {

namespace {

// Exposure of the straight conductor run between two points: sampled WHP
// fuel along the segment.
struct SegmentExposure {
  double max_fuel = 0.0;
  double sum_fuel = 0.0;
  int samples = 0;
};

SegmentExposure segment_exposure(geo::LonLat a, geo::LonLat b,
                                 const synth::WhpModel& whp, double step_m) {
  SegmentExposure out;
  const double length = geo::haversine_m(a, b);
  const int steps = std::max(1, static_cast<int>(length / step_m));
  const double bearing = geo::bearing_deg(a, b);
  for (int s = 0; s <= steps; ++s) {
    const geo::LonLat p =
        geo::destination(a, bearing, length * s / steps);
    const double fuel = firesim::fuel_factor(whp.class_at(p));
    out.max_fuel = std::max(out.max_fuel, fuel);
    out.sum_fuel += fuel;
    ++out.samples;
  }
  return out;
}

}  // namespace

GridModel GridModel::build(const std::vector<cellnet::CellSite>& sites,
                           const synth::WhpModel& whp,
                           const synth::UsAtlas& atlas, std::uint64_t seed,
                           const GridModelConfig& config) {
  GridModel model;
  synth::Rng rng(seed ^ 0x9051D5EEDULL);

  // --- Substations: one per city (plus isolated-site fallbacks) -----------
  for (const synth::CityInfo& city : atlas.cities()) {
    Substation sub;
    sub.id = static_cast<std::uint32_t>(model.substations_.size());
    sub.position = city.position;
    sub.name = std::string{city.name} + " substation";
    model.substations_.push_back(std::move(sub));
  }

  // --- Assign each site to its nearest substation --------------------------
  std::vector<std::vector<std::uint32_t>> sites_of_sub(
      model.substations_.size());
  model.feeder_of_.assign(sites.size(), 0);
  for (std::uint32_t i = 0; i < sites.size(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    std::uint32_t best_sub = 0;
    for (const Substation& sub : model.substations_) {
      // Cheap planar metric with latitude compression (fine for ranking).
      const double dx = (sites[i].position.lon - sub.position.lon) *
                        std::cos(sites[i].position.lat * geo::kDegToRad);
      const double dy = sites[i].position.lat - sub.position.lat;
      const double d = dx * dx + dy * dy;
      if (d < best) {
        best = d;
        best_sub = sub.id;
      }
    }
    sites_of_sub[best_sub].push_back(i);
  }

  // --- Grow feeders: nearest-unserved-neighbour chains ---------------------
  // Each substation's sites are chained greedily: start at the site
  // closest to the substation, extend to the nearest unserved site, cut
  // over to a new feeder at capacity. This approximates how radial
  // distribution feeders follow load outward.
  for (const Substation& sub : model.substations_) {
    auto& pool = sites_of_sub[sub.id];
    std::vector<bool> used(pool.size(), false);
    std::size_t remaining = pool.size();
    while (remaining > 0) {
      Feeder feeder;
      feeder.id = static_cast<std::uint32_t>(model.feeders_.size());
      feeder.substation = sub.id;
      geo::LonLat cursor = sub.position;
      int exposure_samples = 0;
      while (static_cast<int>(feeder.sites.size()) < config.sites_per_feeder &&
             remaining > 0) {
        // Nearest unserved site to the cursor.
        double best = std::numeric_limits<double>::infinity();
        std::size_t best_k = 0;
        for (std::size_t k = 0; k < pool.size(); ++k) {
          if (used[k]) continue;
          const double dx =
              (sites[pool[k]].position.lon - cursor.lon) *
              std::cos(cursor.lat * geo::kDegToRad);
          const double dy = sites[pool[k]].position.lat - cursor.lat;
          const double d = dx * dx + dy * dy;
          if (d < best) {
            best = d;
            best_k = k;
          }
        }
        used[best_k] = true;
        --remaining;
        const std::uint32_t site = pool[best_k];
        // Accumulate exposure along the new segment.
        const SegmentExposure seg = segment_exposure(
            cursor, sites[site].position, whp, config.sample_step_m);
        feeder.max_exposure = std::max(feeder.max_exposure, seg.max_fuel);
        feeder.mean_exposure += seg.sum_fuel;
        exposure_samples += seg.samples;
        feeder.length_m += geo::haversine_m(cursor, sites[site].position);
        feeder.sites.push_back(site);
        model.feeder_of_[site] = feeder.id;
        cursor = sites[site].position;
      }
      if (!feeder.sites.empty()) {
        feeder.mean_exposure /= std::max(1, exposure_samples);
        feeder.hardened = rng.chance(config.hardened_fraction);
        model.feeders_.push_back(std::move(feeder));
      }
    }
  }
  return model;
}

double GridModel::shutoff_probability(const Feeder& feeder,
                                      double wind_severity,
                                      double base_rate) const {
  if (feeder.sites.empty()) return 0.0;
  // Hardened circuits stay energized except in extreme wind.
  if (feeder.hardened && wind_severity < 0.9) return 0.0;
  // Utilities cut the circuits whose worst span crosses heavy fuel.
  const double exposure =
      0.7 * feeder.max_exposure + 0.3 * feeder.mean_exposure;
  return std::min(0.95, base_rate * wind_severity * exposure * 4.0);
}

double GridModel::share_of_sites_on_exposed_feeders(
    double exposure_threshold) const {
  std::size_t exposed = 0;
  std::size_t total = 0;
  for (const Feeder& feeder : feeders_) {
    total += feeder.sites.size();
    if (feeder.max_exposure >= exposure_threshold) {
      exposed += feeder.sites.size();
    }
  }
  return total ? static_cast<double>(exposed) / total : 0.0;
}

}  // namespace fa::powergrid

#include "powergrid/psps.hpp"

#include "firesim/fire.hpp"

namespace fa::powergrid {

firesim::FeederPlan to_feeder_plan(const GridModel& model) {
  firesim::FeederPlan plan;
  plan.feeder_of = model.feeder_of_site();
  plan.risk.reserve(model.feeders().size());
  plan.hardened.reserve(model.feeders().size());
  for (const Feeder& feeder : model.feeders()) {
    plan.risk.push_back(0.7 * feeder.max_exposure + 0.3 * feeder.mean_exposure);
    plan.hardened.push_back(feeder.hardened ? 1 : 0);
  }
  return plan;
}

firesim::DirsReport simulate_california_2019_with_grid(
    const cellnet::CellCorpus& corpus, const synth::WhpModel& whp,
    const synth::UsAtlas& atlas, std::uint64_t seed,
    const firesim::OutageSimConfig& config,
    const GridModelConfig& grid_config) {
  // Same region filter and named fires as the firesim-native case study.
  const int ca = atlas.state_index("CA");
  std::vector<cellnet::Transceiver> ca_txr;
  for (const auto& t : corpus.transceivers()) {
    if (t.state == ca) ca_txr.push_back(t);
  }
  const cellnet::CellCorpus ca_corpus{std::move(ca_txr)};
  const std::vector<cellnet::CellSite> sites = ca_corpus.infer_sites(120.0);

  firesim::FireSimulator fire_sim(whp, atlas, seed ^ 0x2019CA11ULL);
  firesim::FirePerimeter kincade = fire_sim.spread_named_fire(
      "Kincade (sim)", {-122.78, 38.75}, 77000.0, 2019, 0);
  kincade.start_day = 0;
  kincade.end_day = 7;
  firesim::FirePerimeter getty = fire_sim.spread_named_fire(
      "Getty (sim)", {-118.48, 34.09}, 745.0, 2019, 1);
  getty.start_day = 3;
  getty.end_day = 7;
  firesim::FirePerimeter saddle = fire_sim.spread_named_fire(
      "Saddle Ridge (sim)", {-118.49, 34.33}, 8800.0, 2019, 2);
  saddle.start_day = 0;
  saddle.end_day = 6;
  firesim::FirePerimeter tick = fire_sim.spread_named_fire(
      "Tick (sim)", {-118.53, 34.44}, 4600.0, 2019, 3);
  tick.start_day = 0;
  tick.end_day = 5;

  const GridModel grid = GridModel::build(sites, whp, atlas, seed, grid_config);
  const firesim::FeederPlan plan = to_feeder_plan(grid);
  firesim::OutageSimulator sim(whp, seed);
  return sim.simulate(sites,
                      {std::move(kincade), std::move(getty),
                       std::move(saddle), std::move(tick)},
                      config, &plan);
}

GridStats analyze_grid(const GridModel& model,
                       const std::vector<cellnet::CellSite>& sites,
                       const synth::WhpModel& whp) {
  GridStats stats;
  stats.substations = model.substations().size();
  stats.feeders = model.feeders().size();
  std::size_t total_sites = 0;
  for (const Feeder& feeder : model.feeders()) {
    stats.mean_feeder_length_km += feeder.length_m / 1000.0;
    total_sites += feeder.sites.size();
  }
  if (stats.feeders > 0) {
    stats.mean_feeder_length_km /= static_cast<double>(stats.feeders);
    stats.mean_sites_per_feeder =
        static_cast<double>(total_sites) / static_cast<double>(stats.feeders);
  }
  // Exposure overhang: moderate-class fuel factor is the threshold.
  const double threshold = firesim::fuel_factor(synth::WhpClass::kModerate);
  stats.sites_on_exposed_feeders =
      model.share_of_sites_on_exposed_feeders(threshold);

  std::size_t clean_on_dirty = 0;
  std::size_t clean_total = 0;
  const auto& feeder_of = model.feeder_of_site();
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const bool site_at_risk =
        synth::whp_at_risk(whp.class_at(sites[i].position));
    if (site_at_risk) continue;
    ++clean_total;
    const Feeder& feeder = model.feeders()[feeder_of[i]];
    if (feeder.max_exposure >= threshold) ++clean_on_dirty;
  }
  stats.clean_sites_dirty_feeders =
      clean_total ? static_cast<double>(clean_on_dirty) / clean_total : 0.0;
  return stats;
}

}  // namespace fa::powergrid

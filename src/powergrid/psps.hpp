// Bridge between the distribution-grid model and the outage simulator,
// plus grid-level PSPS analytics.
#pragma once

#include "firesim/outage.hpp"
#include "powergrid/grid_model.hpp"

namespace fa::powergrid {

// Converts the grid model into the outage simulator's feeder plan.
firesim::FeederPlan to_feeder_plan(const GridModel& model);

// The 2019 California case study driven by the real feeder topology
// instead of the simulator's lattice bucketing. The fires are the same
// four named perimeters as firesim::simulate_california_2019.
firesim::DirsReport simulate_california_2019_with_grid(
    const cellnet::CellCorpus& corpus, const synth::WhpModel& whp,
    const synth::UsAtlas& atlas, std::uint64_t seed,
    const firesim::OutageSimConfig& config = {},
    const GridModelConfig& grid_config = {});

// Aggregate PSPS analytics for EXPERIMENTS/benches.
struct GridStats {
  std::size_t substations = 0;
  std::size_t feeders = 0;
  double mean_feeder_length_km = 0.0;
  double mean_sites_per_feeder = 0.0;
  // Share of sites whose feeder crosses heavy fuel (fuel factor >= 0.78,
  // i.e. WHP moderate or worse) even though the site itself may not.
  double sites_on_exposed_feeders = 0.0;
  // Share of sites that are NOT in at-risk terrain themselves but whose
  // feeder is exposed — the pure interdependence overhang.
  double clean_sites_dirty_feeders = 0.0;
};

GridStats analyze_grid(const GridModel& model,
                       const std::vector<cellnet::CellSite>& sites,
                       const synth::WhpModel& whp);

}  // namespace fa::powergrid

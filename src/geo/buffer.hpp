// Positive buffering of planar geometry. Exact Minkowski sums are overkill
// here: buffers are used (a) to grow fire perimeters for containment margins
// and (b) as a vector-space cross-check of the raster dilation used by the
// paper's Section 3.8 extension. Both tolerate the small concavity loss of
// the sampling approach below.
#pragma once

#include "geo/polygon.hpp"

namespace fa::geo {

// Buffer of a convex ring: exact Minkowski sum with a regular `arc_segments`-
// gon circle (result is convex, CCW).
Ring buffer_convex(const Ring& convex_ccw, double radius, int arc_segments = 16);

// Approximate buffer of an arbitrary simple ring: samples circles on the
// boundary and takes the convex hull of ring + samples. Conservative
// (never smaller than the true buffer) for convex inputs; for concave
// inputs the hull fills concavities — acceptable for containment tests.
Ring buffer_hull(const Ring& ring, double radius, int arc_segments = 12);

}  // namespace fa::geo

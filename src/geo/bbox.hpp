// Axis-aligned bounding box over planar (or lon/lat-as-planar) coordinates.
#pragma once

#include <algorithm>
#include <limits>

#include "geo/vec2.hpp"

namespace fa::geo {

struct BBox {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  constexpr BBox() = default;
  constexpr BBox(double min_x_, double min_y_, double max_x_, double max_y_)
      : min_x(min_x_), min_y(min_y_), max_x(max_x_), max_y(max_y_) {}

  static constexpr BBox of_point(Vec2 p) { return {p.x, p.y, p.x, p.y}; }

  constexpr bool valid() const { return min_x <= max_x && min_y <= max_y; }
  constexpr bool operator==(const BBox&) const = default;

  constexpr double width() const { return max_x - min_x; }
  constexpr double height() const { return max_y - min_y; }
  constexpr double area() const {
    return valid() ? width() * height() : 0.0;
  }
  constexpr Vec2 center() const {
    return {(min_x + max_x) / 2.0, (min_y + max_y) / 2.0};
  }

  constexpr void expand(Vec2 p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  constexpr void expand(const BBox& o) {
    min_x = std::min(min_x, o.min_x);
    min_y = std::min(min_y, o.min_y);
    max_x = std::max(max_x, o.max_x);
    max_y = std::max(max_y, o.max_y);
  }
  // Box grown by `margin` on every side.
  constexpr BBox inflated(double margin) const {
    return {min_x - margin, min_y - margin, max_x + margin, max_y + margin};
  }

  constexpr bool contains(Vec2 p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }
  constexpr bool contains(const BBox& o) const {
    return o.min_x >= min_x && o.max_x <= max_x && o.min_y >= min_y &&
           o.max_y <= max_y;
  }
  constexpr bool intersects(const BBox& o) const {
    return min_x <= o.max_x && o.min_x <= max_x && min_y <= o.max_y &&
           o.min_y <= max_y;
  }
  constexpr BBox intersection(const BBox& o) const {
    return {std::max(min_x, o.min_x), std::max(min_y, o.min_y),
            std::min(max_x, o.max_x), std::min(max_y, o.max_y)};
  }
};

}  // namespace fa::geo

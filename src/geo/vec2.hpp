// Planar 2-D vector/point type shared by all geometry code.
//
// `Vec2` is used both for projected (metre) coordinates and, where noted,
// for geographic (lon, lat in degrees) coordinates; the semantic type
// `LonLat` in lonlat.hpp wraps the latter to keep call sites honest.
#pragma once

#include <cmath>

namespace fa::geo {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2& operator+=(Vec2 o) { x += o.x; y += o.y; return *this; }
  constexpr Vec2& operator-=(Vec2 o) { x -= o.x; y -= o.y; return *this; }
  constexpr Vec2& operator*=(double s) { x *= s; y *= s; return *this; }
  constexpr bool operator==(const Vec2&) const = default;

  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  // z-component of the 3-D cross product; >0 means `o` is CCW from *this.
  constexpr double cross(Vec2 o) const { return x * o.y - y * o.x; }
  double norm() const { return std::hypot(x, y); }
  constexpr double norm2() const { return x * x + y * y; }
  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
  // Perpendicular vector (rotated +90 degrees).
  constexpr Vec2 perp() const { return {-y, x}; }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
constexpr double distance2(Vec2 a, Vec2 b) { return (a - b).norm2(); }

// Linear interpolation; t in [0,1] maps a -> b.
constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) {
  return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

// Twice the signed area of triangle (a, b, c); >0 for CCW order.
constexpr double orient2d(Vec2 a, Vec2 b, Vec2 c) {
  return (b - a).cross(c - a);
}

}  // namespace fa::geo

// Geographic coordinate (WGS-84 longitude/latitude in decimal degrees).
#pragma once

#include <numbers>

#include "geo/vec2.hpp"

namespace fa::geo {

inline constexpr double kDegToRad = std::numbers::pi / 180.0;
inline constexpr double kRadToDeg = 180.0 / std::numbers::pi;

struct LonLat {
  double lon = 0.0;  // degrees east, conterminous US is roughly [-125, -66]
  double lat = 0.0;  // degrees north, conterminous US is roughly [24, 50]

  constexpr LonLat() = default;
  constexpr LonLat(double lon_, double lat_) : lon(lon_), lat(lat_) {}
  constexpr bool operator==(const LonLat&) const = default;

  // View as a planar point (x = lon, y = lat). Only safe for topological
  // predicates (point-in-polygon, bbox tests), never for metric ones.
  constexpr Vec2 as_vec() const { return {lon, lat}; }
  static constexpr LonLat from_vec(Vec2 v) { return {v.x, v.y}; }
};

// Loose sanity check used to reject corrupt input records.
constexpr bool is_valid(LonLat p) {
  return p.lon >= -180.0 && p.lon <= 180.0 && p.lat >= -90.0 && p.lat <= 90.0;
}

// Conterminous-US bounding test (coarse; the synthetic map lives here).
constexpr bool in_conus_bounds(LonLat p) {
  return p.lon >= -125.5 && p.lon <= -66.0 && p.lat >= 24.0 && p.lat <= 49.8;
}

}  // namespace fa::geo

#include "geo/geodesy.hpp"

#include <algorithm>
#include <cmath>

namespace fa::geo {

double haversine_m(LonLat a, LonLat b) {
  const double phi1 = a.lat * kDegToRad;
  const double phi2 = b.lat * kDegToRad;
  const double dphi = (b.lat - a.lat) * kDegToRad;
  const double dlam = (b.lon - a.lon) * kDegToRad;
  const double s1 = std::sin(dphi / 2.0);
  const double s2 = std::sin(dlam / 2.0);
  const double h = s1 * s1 + std::cos(phi1) * std::cos(phi2) * s2 * s2;
  return 2.0 * kEarthRadiusM * std::asin(std::sqrt(std::min(1.0, h)));
}

double bearing_deg(LonLat a, LonLat b) {
  const double phi1 = a.lat * kDegToRad;
  const double phi2 = b.lat * kDegToRad;
  const double dlam = (b.lon - a.lon) * kDegToRad;
  const double y = std::sin(dlam) * std::cos(phi2);
  const double x = std::cos(phi1) * std::sin(phi2) -
                   std::sin(phi1) * std::cos(phi2) * std::cos(dlam);
  const double theta = std::atan2(y, x) * kRadToDeg;
  return theta < 0.0 ? theta + 360.0 : theta;
}

LonLat destination(LonLat origin, double bearing, double distance_m) {
  const double delta = distance_m / kEarthRadiusM;  // angular distance
  const double theta = bearing * kDegToRad;
  const double phi1 = origin.lat * kDegToRad;
  const double lam1 = origin.lon * kDegToRad;
  const double sin_phi2 = std::sin(phi1) * std::cos(delta) +
                          std::cos(phi1) * std::sin(delta) * std::cos(theta);
  const double phi2 = std::asin(std::clamp(sin_phi2, -1.0, 1.0));
  const double lam2 =
      lam1 + std::atan2(std::sin(theta) * std::sin(delta) * std::cos(phi1),
                        std::cos(delta) - std::sin(phi1) * sin_phi2);
  double lon = lam2 * kRadToDeg;
  if (lon > 180.0) lon -= 360.0;
  if (lon < -180.0) lon += 360.0;
  return {lon, phi2 * kRadToDeg};
}

double meters_per_deg_lat() { return kEarthRadiusM * kDegToRad; }

double meters_per_deg_lon(double lat_deg) {
  return kEarthRadiusM * kDegToRad * std::cos(lat_deg * kDegToRad);
}

}  // namespace fa::geo

#include "geo/buffer.hpp"

#include <cmath>
#include <numbers>

#include "geo/algorithms.hpp"

namespace fa::geo {

Ring buffer_convex(const Ring& convex_ccw, double radius, int arc_segments) {
  if (convex_ccw.empty() || radius <= 0.0) return convex_ccw;
  std::vector<Vec2> pts;
  pts.reserve(convex_ccw.size() * static_cast<std::size_t>(arc_segments));
  for (const Vec2& v : convex_ccw.points()) {
    for (int i = 0; i < arc_segments; ++i) {
      const double t =
          2.0 * std::numbers::pi * static_cast<double>(i) / arc_segments;
      pts.push_back(v + Vec2{radius * std::cos(t), radius * std::sin(t)});
    }
  }
  return convex_hull(pts);
}

Ring buffer_hull(const Ring& ring, double radius, int arc_segments) {
  if (ring.empty() || radius <= 0.0) return ring;
  std::vector<Vec2> pts(ring.points().begin(), ring.points().end());
  const auto boundary = ring.points();
  for (std::size_t i = 0, n = boundary.size(); i < n; ++i) {
    const Vec2 a = boundary[i];
    const Vec2 b = boundary[(i + 1) % n];
    // Sample along the edge so long edges still bulge outward.
    const double len = distance(a, b);
    const int steps = std::max(1, static_cast<int>(len / (2.0 * radius)));
    for (int s = 0; s <= steps; ++s) {
      const Vec2 c = lerp(a, b, static_cast<double>(s) / steps);
      for (int k = 0; k < arc_segments; ++k) {
        const double t =
            2.0 * std::numbers::pi * static_cast<double>(k) / arc_segments;
        pts.push_back(c + Vec2{radius * std::cos(t), radius * std::sin(t)});
      }
    }
  }
  return convex_hull(pts);
}

}  // namespace fa::geo

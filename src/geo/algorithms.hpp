// Planar computational-geometry algorithms used by the overlay pipeline.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "geo/polygon.hpp"
#include "geo/vec2.hpp"

namespace fa::geo {

// Proper or touching intersection point of segments [a1,a2] and [b1,b2].
// Collinear overlaps report one interior point of the overlap.
std::optional<Vec2> segment_intersection(Vec2 a1, Vec2 a2, Vec2 b1, Vec2 b2);

// True if the two closed segments share at least one point.
bool segments_intersect(Vec2 a1, Vec2 a2, Vec2 b1, Vec2 b2);

// Distance from point `p` to closed segment [a, b].
double point_segment_distance(Vec2 p, Vec2 a, Vec2 b);

// Minimum distance from `p` to the boundary of `ring` (0 if on boundary).
double point_ring_distance(Vec2 p, const Ring& ring);

// Andrew's monotone chain; returns CCW hull without repeated last point.
// Degenerate inputs (<3 distinct points) return what is available.
Ring convex_hull(std::span<const Vec2> pts);

// Douglas-Peucker polyline simplification with absolute tolerance.
std::vector<Vec2> simplify_polyline(std::span<const Vec2> pts,
                                    double tolerance);
// Ring simplification; guarantees the result keeps >= 3 vertices by
// falling back to the input when over-simplified.
Ring simplify_ring(const Ring& ring, double tolerance);

// Sutherland-Hodgman clip of a (possibly concave) ring against an
// axis-aligned rectangle. Result may be empty.
Ring clip_ring_to_rect(const Ring& ring, const BBox& rect);

// True if `ring` is simple (no self intersections between non-adjacent
// edges). O(n^2); intended for validation/tests, not hot paths.
bool is_simple(const Ring& ring);

// Length of an open polyline.
double polyline_length(std::span<const Vec2> pts);

// Point at arc-length parameter t in [0,1] along an open polyline.
Vec2 point_along_polyline(std::span<const Vec2> pts, double t);

}  // namespace fa::geo

#include "geo/polygon.hpp"

#include <cmath>
#include <numbers>
#include <utility>

namespace fa::geo {

namespace {

// Drops a trailing vertex equal to the first (tolerates pre-closed input).
std::vector<Vec2> strip_closing_point(std::vector<Vec2> pts) {
  while (pts.size() > 1 && pts.back() == pts.front()) pts.pop_back();
  return pts;
}

}  // namespace

Ring::Ring(std::vector<Vec2> pts) : pts_(strip_closing_point(std::move(pts))) {
  for (const Vec2& p : pts_) bbox_.expand(p);
}

void Ring::push_back(Vec2 p) {
  pts_.push_back(p);
  bbox_.expand(p);
}

double Ring::signed_area() const {
  if (empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0, n = pts_.size(); i < n; ++i) {
    const Vec2& a = pts_[i];
    const Vec2& b = pts_[(i + 1) % n];
    acc += a.cross(b);
  }
  return acc / 2.0;
}

double Ring::area() const { return std::abs(signed_area()); }

void Ring::reverse() {
  for (std::size_t i = 0, j = pts_.size(); i + 1 < j; ++i, --j) {
    std::swap(pts_[i], pts_[j - 1]);
  }
}

double Ring::perimeter() const {
  if (empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0, n = pts_.size(); i < n; ++i) {
    acc += distance(pts_[i], pts_[(i + 1) % n]);
  }
  return acc;
}

Vec2 Ring::centroid() const {
  if (empty()) return {};
  // Area-weighted centroid; falls back to vertex mean for degenerate rings.
  double a = 0.0;
  Vec2 c{};
  for (std::size_t i = 0, n = pts_.size(); i < n; ++i) {
    const Vec2& p = pts_[i];
    const Vec2& q = pts_[(i + 1) % n];
    const double w = p.cross(q);
    a += w;
    c += (p + q) * w;
  }
  if (std::abs(a) < 1e-12) {
    Vec2 mean{};
    for (const Vec2& p : pts_) mean += p;
    return mean / static_cast<double>(pts_.size());
  }
  return c / (3.0 * a);
}

bool Ring::contains(Vec2 p) const {
  if (empty() || !bbox_.contains(p)) return false;
  // Ray crossing with explicit boundary handling: points on an edge are
  // considered inside (the paper counts perimeter transceivers as at risk).
  bool inside = false;
  for (std::size_t i = 0, n = pts_.size(); i < n; ++i) {
    const Vec2& a = pts_[i];
    const Vec2& b = pts_[(i + 1) % n];
    // On-segment check (collinear and within the segment's bbox).
    const double cr = orient2d(a, b, p);
    if (cr == 0.0 && p.x >= std::min(a.x, b.x) && p.x <= std::max(a.x, b.x) &&
        p.y >= std::min(a.y, b.y) && p.y <= std::max(a.y, b.y)) {
      return true;
    }
    // Standard half-open crossing rule, robust at vertices.
    if ((a.y > p.y) != (b.y > p.y)) {
      const double x_int = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y);
      if (x_int > p.x) inside = !inside;
    }
  }
  return inside;
}

Polygon::Polygon(Ring outer, std::vector<Ring> holes)
    : outer_(std::move(outer)), holes_(std::move(holes)) {
  if (!outer_.is_ccw()) outer_.reverse();
  for (Ring& h : holes_) {
    if (h.is_ccw()) h.reverse();
  }
}

double Polygon::area() const {
  double a = outer_.area();
  for (const Ring& h : holes_) a -= h.area();
  return a;
}

bool Polygon::contains(Vec2 p) const {
  if (!outer_.contains(p)) return false;
  for (const Ring& h : holes_) {
    if (h.contains(p)) return false;
  }
  return true;
}

MultiPolygon::MultiPolygon(std::vector<Polygon> parts)
    : parts_(std::move(parts)) {
  for (const Polygon& p : parts_) bbox_.expand(p.bbox());
}

void MultiPolygon::push_back(Polygon p) {
  bbox_.expand(p.bbox());
  parts_.push_back(std::move(p));
}

double MultiPolygon::area() const {
  double a = 0.0;
  for (const Polygon& p : parts_) a += p.area();
  return a;
}

bool MultiPolygon::contains(Vec2 p) const {
  if (!bbox_.contains(p)) return false;
  for (const Polygon& part : parts_) {
    if (part.contains(p)) return true;
  }
  return false;
}

Ring make_rect(double min_x, double min_y, double max_x, double max_y) {
  return Ring{{{min_x, min_y}, {max_x, min_y}, {max_x, max_y}, {min_x, max_y}}};
}

Ring make_circle(Vec2 center, double radius, int segments) {
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(segments));
  for (int i = 0; i < segments; ++i) {
    const double t =
        2.0 * std::numbers::pi * static_cast<double>(i) / segments;
    pts.push_back(center + Vec2{radius * std::cos(t), radius * std::sin(t)});
  }
  return Ring{std::move(pts)};
}

}  // namespace fa::geo

// Polygon types: Ring (closed simple loop), Polygon (outer ring + holes),
// MultiPolygon. Vertices are stored without the closing duplicate; all
// algorithms treat rings as implicitly closed.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geo/bbox.hpp"
#include "geo/vec2.hpp"

namespace fa::geo {

class Ring {
 public:
  Ring() = default;
  explicit Ring(std::vector<Vec2> pts);

  std::span<const Vec2> points() const { return pts_; }
  std::size_t size() const { return pts_.size(); }
  bool empty() const { return pts_.size() < 3; }
  const Vec2& operator[](std::size_t i) const { return pts_[i]; }
  const BBox& bbox() const { return bbox_; }

  // Signed area: positive for counter-clockwise winding (shoelace).
  double signed_area() const;
  double area() const;
  bool is_ccw() const { return signed_area() > 0.0; }
  // Reverses winding in place.
  void reverse();
  double perimeter() const;
  Vec2 centroid() const;

  // Point-in-ring by ray crossing; boundary points count as inside.
  bool contains(Vec2 p) const;

  void push_back(Vec2 p);

 private:
  std::vector<Vec2> pts_;
  BBox bbox_;
};

class Polygon {
 public:
  Polygon() = default;
  // Normalizes winding: outer CCW, holes CW.
  explicit Polygon(Ring outer, std::vector<Ring> holes = {});

  const Ring& outer() const { return outer_; }
  std::span<const Ring> holes() const { return holes_; }
  const BBox& bbox() const { return outer_.bbox(); }
  bool empty() const { return outer_.empty(); }

  // Area of outer ring minus hole areas.
  double area() const;
  // Inside the outer ring and not inside any hole.
  bool contains(Vec2 p) const;

 private:
  Ring outer_;
  std::vector<Ring> holes_;
};

class MultiPolygon {
 public:
  MultiPolygon() = default;
  explicit MultiPolygon(std::vector<Polygon> parts);

  std::span<const Polygon> parts() const { return parts_; }
  std::size_t size() const { return parts_.size(); }
  bool empty() const { return parts_.empty(); }
  const BBox& bbox() const { return bbox_; }

  double area() const;
  bool contains(Vec2 p) const;

  void push_back(Polygon p);

 private:
  std::vector<Polygon> parts_;
  BBox bbox_;
};

// Convenience factories.
Ring make_rect(double min_x, double min_y, double max_x, double max_y);
// Regular n-gon approximating a circle (n >= 3), CCW.
Ring make_circle(Vec2 center, double radius, int segments = 32);

}  // namespace fa::geo

// Spherical-earth geodesy: distances, bearings, destination points and
// area. A spherical model (R = 6371.0088 km mean radius) is accurate to
// ~0.5% over the distances this library cares about (metres to a few
// hundred km), which is far below the noise floor of the crowd-sourced
// transceiver positions it measures.
#pragma once

#include "geo/lonlat.hpp"

namespace fa::geo {

inline constexpr double kEarthRadiusM = 6371008.8;
inline constexpr double kMetersPerMile = 1609.344;
inline constexpr double kSquareMetersPerAcre = 4046.8564224;

// Great-circle distance in metres (haversine formulation; numerically
// stable for small separations, unlike the spherical law of cosines).
double haversine_m(LonLat a, LonLat b);

// Initial bearing from `a` to `b` in degrees clockwise from north, [0,360).
double bearing_deg(LonLat a, LonLat b);

// Point reached by travelling `distance_m` from `origin` along the great
// circle with initial bearing `bearing` (degrees clockwise from north).
LonLat destination(LonLat origin, double bearing_deg, double distance_m);

// Local metres per degree of longitude/latitude at latitude `lat_deg`.
// Used for fast small-extent conversions (e.g. raster cell sizing).
double meters_per_deg_lon(double lat_deg);
double meters_per_deg_lat();

}  // namespace fa::geo

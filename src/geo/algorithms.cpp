#include "geo/algorithms.hpp"

#include <algorithm>
#include <cmath>

namespace fa::geo {

namespace {

constexpr double kEps = 1e-12;

bool on_segment(Vec2 p, Vec2 a, Vec2 b) {
  return std::abs(orient2d(a, b, p)) < kEps &&
         p.x >= std::min(a.x, b.x) - kEps && p.x <= std::max(a.x, b.x) + kEps &&
         p.y >= std::min(a.y, b.y) - kEps && p.y <= std::max(a.y, b.y) + kEps;
}

}  // namespace

std::optional<Vec2> segment_intersection(Vec2 a1, Vec2 a2, Vec2 b1, Vec2 b2) {
  const Vec2 r = a2 - a1;
  const Vec2 s = b2 - b1;
  const double denom = r.cross(s);
  const Vec2 qp = b1 - a1;
  if (std::abs(denom) < kEps) {
    // Parallel. Check collinear overlap and report a shared point.
    if (std::abs(qp.cross(r)) > kEps) return std::nullopt;
    for (Vec2 cand : {b1, b2}) {
      if (on_segment(cand, a1, a2)) return cand;
    }
    for (Vec2 cand : {a1, a2}) {
      if (on_segment(cand, b1, b2)) return cand;
    }
    return std::nullopt;
  }
  const double t = qp.cross(s) / denom;
  const double u = qp.cross(r) / denom;
  if (t < -kEps || t > 1.0 + kEps || u < -kEps || u > 1.0 + kEps) {
    return std::nullopt;
  }
  return a1 + r * std::clamp(t, 0.0, 1.0);
}

bool segments_intersect(Vec2 a1, Vec2 a2, Vec2 b1, Vec2 b2) {
  return segment_intersection(a1, a2, b1, b2).has_value();
}

double point_segment_distance(Vec2 p, Vec2 a, Vec2 b) {
  const Vec2 ab = b - a;
  const double len2 = ab.norm2();
  if (len2 < kEps) return distance(p, a);
  const double t = std::clamp((p - a).dot(ab) / len2, 0.0, 1.0);
  return distance(p, a + ab * t);
}

double point_ring_distance(Vec2 p, const Ring& ring) {
  if (ring.size() == 0) return std::numeric_limits<double>::infinity();
  double best = std::numeric_limits<double>::infinity();
  const auto pts = ring.points();
  for (std::size_t i = 0, n = pts.size(); i < n; ++i) {
    best = std::min(best, point_segment_distance(p, pts[i], pts[(i + 1) % n]));
  }
  return best;
}

Ring convex_hull(std::span<const Vec2> pts) {
  std::vector<Vec2> p(pts.begin(), pts.end());
  std::sort(p.begin(), p.end(), [](Vec2 a, Vec2 b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  p.erase(std::unique(p.begin(), p.end()), p.end());
  if (p.size() < 3) return Ring{std::move(p)};

  std::vector<Vec2> hull(2 * p.size());
  std::size_t k = 0;
  for (const Vec2& pt : p) {  // lower hull
    while (k >= 2 && orient2d(hull[k - 2], hull[k - 1], pt) <= 0.0) --k;
    hull[k++] = pt;
  }
  const std::size_t lower = k + 1;
  for (auto it = p.rbegin() + 1; it != p.rend(); ++it) {  // upper hull
    while (k >= lower && orient2d(hull[k - 2], hull[k - 1], *it) <= 0.0) --k;
    hull[k++] = *it;
  }
  hull.resize(k - 1);  // last point equals first
  return Ring{std::move(hull)};
}

namespace {

void dp_recurse(std::span<const Vec2> pts, std::size_t lo, std::size_t hi,
                double tol, std::vector<bool>& keep) {
  if (hi <= lo + 1) return;
  double max_d = -1.0;
  std::size_t max_i = lo;
  for (std::size_t i = lo + 1; i < hi; ++i) {
    const double d = point_segment_distance(pts[i], pts[lo], pts[hi]);
    if (d > max_d) {
      max_d = d;
      max_i = i;
    }
  }
  if (max_d > tol) {
    keep[max_i] = true;
    dp_recurse(pts, lo, max_i, tol, keep);
    dp_recurse(pts, max_i, hi, tol, keep);
  }
}

}  // namespace

std::vector<Vec2> simplify_polyline(std::span<const Vec2> pts,
                                    double tolerance) {
  if (pts.size() <= 2) return {pts.begin(), pts.end()};
  std::vector<bool> keep(pts.size(), false);
  keep.front() = keep.back() = true;
  dp_recurse(pts, 0, pts.size() - 1, tolerance, keep);
  std::vector<Vec2> out;
  out.reserve(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (keep[i]) out.push_back(pts[i]);
  }
  return out;
}

Ring simplify_ring(const Ring& ring, double tolerance) {
  if (ring.size() < 4) return ring;
  // Close the loop so the endpoints are anchored, then strip the closer.
  std::vector<Vec2> closed(ring.points().begin(), ring.points().end());
  closed.push_back(closed.front());
  std::vector<Vec2> simp = simplify_polyline(closed, tolerance);
  simp.pop_back();
  if (simp.size() < 3) return ring;
  return Ring{std::move(simp)};
}

Ring clip_ring_to_rect(const Ring& ring, const BBox& rect) {
  // Clip successively against the four half planes of the rectangle.
  std::vector<Vec2> poly(ring.points().begin(), ring.points().end());
  // inside(p) per edge; intersect(a,b) returns crossing with the edge line.
  const auto clip_edge = [&poly](auto inside, auto intersect) {
    std::vector<Vec2> out;
    out.reserve(poly.size() + 4);
    for (std::size_t i = 0, n = poly.size(); i < n; ++i) {
      const Vec2 cur = poly[i];
      const Vec2 prev = poly[(i + n - 1) % n];
      const bool cur_in = inside(cur);
      const bool prev_in = inside(prev);
      if (cur_in) {
        if (!prev_in) out.push_back(intersect(prev, cur));
        out.push_back(cur);
      } else if (prev_in) {
        out.push_back(intersect(prev, cur));
      }
    }
    poly = std::move(out);
  };

  const auto x_cross = [](Vec2 a, Vec2 b, double x) {
    const double t = (x - a.x) / (b.x - a.x);
    return Vec2{x, a.y + t * (b.y - a.y)};
  };
  const auto y_cross = [](Vec2 a, Vec2 b, double y) {
    const double t = (y - a.y) / (b.y - a.y);
    return Vec2{a.x + t * (b.x - a.x), y};
  };

  clip_edge([&](Vec2 p) { return p.x >= rect.min_x; },
            [&](Vec2 a, Vec2 b) { return x_cross(a, b, rect.min_x); });
  if (poly.empty()) return Ring{};
  clip_edge([&](Vec2 p) { return p.x <= rect.max_x; },
            [&](Vec2 a, Vec2 b) { return x_cross(a, b, rect.max_x); });
  if (poly.empty()) return Ring{};
  clip_edge([&](Vec2 p) { return p.y >= rect.min_y; },
            [&](Vec2 a, Vec2 b) { return y_cross(a, b, rect.min_y); });
  if (poly.empty()) return Ring{};
  clip_edge([&](Vec2 p) { return p.y <= rect.max_y; },
            [&](Vec2 a, Vec2 b) { return y_cross(a, b, rect.max_y); });
  return Ring{std::move(poly)};
}

bool is_simple(const Ring& ring) {
  const auto pts = ring.points();
  const std::size_t n = pts.size();
  if (n < 3) return false;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 a1 = pts[i];
    const Vec2 a2 = pts[(i + 1) % n];
    for (std::size_t j = i + 1; j < n; ++j) {
      // Skip adjacent edges (they share an endpoint by construction).
      if (j == i || (j + 1) % n == i || (i + 1) % n == j) continue;
      const Vec2 b1 = pts[j];
      const Vec2 b2 = pts[(j + 1) % n];
      if (segments_intersect(a1, a2, b1, b2)) return false;
    }
  }
  return true;
}

double polyline_length(std::span<const Vec2> pts) {
  double acc = 0.0;
  for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
    acc += distance(pts[i], pts[i + 1]);
  }
  return acc;
}

Vec2 point_along_polyline(std::span<const Vec2> pts, double t) {
  if (pts.empty()) return {};
  if (pts.size() == 1) return pts[0];
  const double target = std::clamp(t, 0.0, 1.0) * polyline_length(pts);
  double acc = 0.0;
  for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
    const double seg = distance(pts[i], pts[i + 1]);
    if (acc + seg >= target && seg > 0.0) {
      return lerp(pts[i], pts[i + 1], (target - acc) / seg);
    }
    acc += seg;
  }
  return pts.back();
}

}  // namespace fa::geo

// Prepared geometry: bulk-built, immutable acceleration structures for
// repeated point-in-polygon probes (the overlay join that dominates every
// table and figure).
//
// A PreparedRing buckets the ring's edges into horizontal y-slabs (as in
// GEOS prepared geometry) and stores them as structure-of-arrays, so one
// probe touches only the O(V/slabs) edges whose y-extent overlaps its
// slab, in a branch-light loop over contiguous arrays that the compiler
// can autovectorize. PreparedPolygon adds the interior-box fast path (a
// rectangle proven fully inside, answering probes without touching an
// edge) on top of the bbox exterior fast path.
//
// Equivalence guarantee: contains() and contains_batch() evaluate the
// EXACT floating-point predicate of Ring/Polygon/MultiPolygon::contains —
// same expressions, same operand order — restricted to the edges that can
// contribute (an edge whose y-extent excludes p.y neither crosses the
// probe ray nor passes the on-segment bbox test, so dropping it cannot
// change the answer). Every consumer that moved to this layer is pinned
// byte-identical to the scalar path by tests/geo/prepared_test.cpp and
// the overlay equivalence suite.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geo/bbox.hpp"
#include "geo/polygon.hpp"

namespace fa::geo {

class PreparedRing {
 public:
  PreparedRing() = default;
  // Bulk build: buckets every edge of `ring` into each slab its y-extent
  // overlaps. O(V + total bucket entries); slab count scales with V so a
  // probe's edge loop is expected O(1) for perimeter-like rings.
  explicit PreparedRing(const Ring& ring);

  bool empty() const { return empty_; }
  const BBox& bbox() const { return bbox_; }
  int slabs() const { return slabs_; }
  std::size_t edge_refs() const { return ax_.size(); }

  // Identical predicate to Ring::contains (boundary counts as inside).
  bool contains(Vec2 p) const;

  // out[i] = contains({xs[i], ys[i]}) ? 1 : 0 for every i. Spans must
  // have equal length; out may be pre-filled with anything.
  void contains_batch(std::span<const double> xs, std::span<const double> ys,
                      std::span<std::uint8_t> out) const;

  // Appends the x-coordinates where the horizontal line `y` crosses ring
  // edges (same half-open rule and expression as the scanline
  // rasterizer), consulting only the slab containing `y`.
  void collect_crossings(double y, std::vector<double>& xs) const;

  // Slab of a y inside bbox (clamped); exposed for tests.
  int slab_of(double y) const;

  // True when some edge's bounding box intersects `box` — a conservative
  // "the boundary might enter box" test used to certify interior boxes.
  // Consults only the slabs overlapping box's y-range.
  bool any_edge_bbox_intersects(const BBox& box) const;

 private:
  friend class PreparedPolygon;  // skips re-running the bbox test

  // Parity + on-edge sweep over the slab edges of (px, py). Returns the
  // Ring::contains answer given the bbox test already passed.
  bool probe(double px, double py) const;

  // Edge k of slab s lives at index slab_start_[s] + k in the SoA
  // arrays; edges overlapping several slabs are duplicated per slab.
  std::vector<std::uint32_t> slab_start_;  // size slabs_ + 1
  std::vector<double> ax_, ay_, bx_, by_;  // SoA edge endpoints
  BBox bbox_;
  double y0_ = 0.0;
  double inv_slab_h_ = 0.0;
  int slabs_ = 0;
  bool empty_ = true;
};

class PreparedPolygon {
 public:
  PreparedPolygon() = default;
  explicit PreparedPolygon(const Polygon& poly);

  bool empty() const { return outer_.empty(); }
  const BBox& bbox() const { return outer_.bbox(); }
  // Rectangle proven fully inside (outside every hole); invalid when the
  // build found none. Probes inside it short-circuit to true.
  const BBox& interior_box() const { return interior_; }

  // Identical predicate to Polygon::contains.
  bool contains(Vec2 p) const;
  void contains_batch(std::span<const double> xs, std::span<const double> ys,
                      std::span<std::uint8_t> out) const;

  const PreparedRing& outer() const { return outer_; }
  std::span<const PreparedRing> holes() const { return holes_; }

 private:
  PreparedRing outer_;
  std::vector<PreparedRing> holes_;
  BBox interior_;  // default-constructed BBox is !valid(): no fast path
};

class PreparedMultiPolygon {
 public:
  PreparedMultiPolygon() = default;
  explicit PreparedMultiPolygon(const MultiPolygon& mp);

  bool empty() const { return parts_.empty(); }
  const BBox& bbox() const { return bbox_; }
  std::span<const PreparedPolygon> parts() const { return parts_; }

  // Identical predicate to MultiPolygon::contains.
  bool contains(Vec2 p) const;
  // Batch form: out[i] = 1 iff any part contains point i.
  void contains_batch(std::span<const double> xs, std::span<const double> ys,
                      std::span<std::uint8_t> out) const;

 private:
  std::vector<PreparedPolygon> parts_;
  BBox bbox_;
};

}  // namespace fa::geo

#include "geo/prepared.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace fa::geo {

namespace {

// Instrument references cached per thread and refreshed when a
// ScopedRegistry swaps the global registry, so the kernels pay two
// compares per call instead of a locked map lookup. Keyed on
// (address, id): an address alone suffers ABA when successive scoped
// registries land on the same stack slot.
struct KernelCounters {
  obs::Registry* owner = nullptr;
  std::uint64_t owner_id = 0;
  obs::Counter* builds = nullptr;
  obs::Counter* slabs = nullptr;
  obs::Counter* batch_probes = nullptr;
  obs::Counter* fastpath_hits = nullptr;
};

KernelCounters& kernel_counters() {
  thread_local KernelCounters c;
  obs::Registry& g = obs::Registry::global();
  if (c.owner != &g || c.owner_id != g.id()) {
    c.owner = &g;
    c.owner_id = g.id();
    c.builds = &g.counter(obs::metrics::kGeoPreparedBuilds);
    c.slabs = &g.counter(obs::metrics::kGeoPreparedSlabs);
    c.batch_probes = &g.counter(obs::metrics::kGeoPreparedBatchProbes);
    c.fastpath_hits = &g.counter(obs::metrics::kGeoPreparedFastPathHits);
  }
  return c;
}

}  // namespace

PreparedRing::PreparedRing(const Ring& ring)
    : bbox_(ring.bbox()), empty_(ring.empty()) {
  if (empty_) return;
  const std::span<const Vec2> pts = ring.points();
  const std::size_t n = pts.size();
  // Slab count ~ edge count: a perimeter-like ring's total y-variation is
  // ~2x its height, so the expected bucket holds n/slabs + 2 edges — O(1)
  // once slabs reaches n. Duplication stays ~3x the edge count.
  slabs_ = static_cast<int>(std::clamp<std::size_t>(n, 4, 2048));
  y0_ = bbox_.min_y;
  const double height = bbox_.height();
  inv_slab_h_ = height > 0.0 ? static_cast<double>(slabs_) / height : 0.0;

  // Counting sort of edges into every slab their y-extent overlaps.
  std::vector<std::uint32_t> counts(static_cast<std::size_t>(slabs_), 0);
  const auto slab_range = [this](Vec2 a, Vec2 b) {
    return std::pair{slab_of(std::min(a.y, b.y)), slab_of(std::max(a.y, b.y))};
  };
  for (std::size_t i = 0; i < n; ++i) {
    const auto [lo, hi] = slab_range(pts[i], pts[(i + 1) % n]);
    for (int s = lo; s <= hi; ++s) ++counts[static_cast<std::size_t>(s)];
  }
  slab_start_.assign(static_cast<std::size_t>(slabs_) + 1, 0);
  for (int s = 0; s < slabs_; ++s) {
    slab_start_[static_cast<std::size_t>(s) + 1] =
        slab_start_[static_cast<std::size_t>(s)] +
        counts[static_cast<std::size_t>(s)];
  }
  const std::size_t refs = slab_start_.back();
  ax_.resize(refs);
  ay_.resize(refs);
  bx_.resize(refs);
  by_.resize(refs);
  std::vector<std::uint32_t> cursor(slab_start_.begin(),
                                    slab_start_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 a = pts[i];
    const Vec2 b = pts[(i + 1) % n];
    const auto [lo, hi] = slab_range(a, b);
    for (int s = lo; s <= hi; ++s) {
      const std::uint32_t k = cursor[static_cast<std::size_t>(s)]++;
      ax_[k] = a.x;
      ay_[k] = a.y;
      bx_[k] = b.x;
      by_[k] = b.y;
    }
  }
  if (obs::enabled()) {
    KernelCounters& kc = kernel_counters();
    kc.builds->add();
    kc.slabs->add(static_cast<std::uint64_t>(slabs_));
  }
}

int PreparedRing::slab_of(double y) const {
  const int s = static_cast<int>((y - y0_) * inv_slab_h_);
  return std::clamp(s, 0, slabs_ - 1);
}

bool PreparedRing::probe(double px, double py) const {
  const std::size_t s = static_cast<std::size_t>(slab_of(py));
  const std::uint32_t k1 = slab_start_[s + 1];
  unsigned inside = 0;
  unsigned on_edge = 0;
  // Branch-light sweep: every term is arithmetic or bitwise, so the loop
  // autovectorizes. The expressions mirror Ring::contains operand for
  // operand; edges outside this slab cannot contribute (their y-extent
  // excludes py, failing both the on-segment bbox test and the half-open
  // crossing rule), so the restriction is exact, not approximate.
  for (std::uint32_t k = slab_start_[s]; k < k1; ++k) {
    const double eax = ax_[k];
    const double eay = ay_[k];
    const double ebx = bx_[k];
    const double eby = by_[k];
    // orient2d(a, b, p), identical expression to the scalar path.
    const double cr = (ebx - eax) * (py - eay) - (eby - eay) * (px - eax);
    on_edge |= static_cast<unsigned>(cr == 0.0) &
               static_cast<unsigned>(px >= std::min(eax, ebx)) &
               static_cast<unsigned>(px <= std::max(eax, ebx)) &
               static_cast<unsigned>(py >= std::min(eay, eby)) &
               static_cast<unsigned>(py <= std::max(eay, eby));
    const unsigned straddle =
        static_cast<unsigned>((eay > py) != (eby > py));
    // IEEE division: horizontal edges yield inf/NaN here, but straddle
    // masks them out of the parity exactly as the scalar branch does.
    const double x_int = eax + (py - eay) * (ebx - eax) / (eby - eay);
    inside ^= straddle & static_cast<unsigned>(x_int > px);
  }
  return (on_edge | inside) != 0;
}

bool PreparedRing::contains(Vec2 p) const {
  if (empty_ || !bbox_.contains(p)) return false;
  return probe(p.x, p.y);
}

void PreparedRing::contains_batch(std::span<const double> xs,
                                  std::span<const double> ys,
                                  std::span<std::uint8_t> out) const {
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double px = xs[i];
    const double py = ys[i];
    const bool in_box = !empty_ && bbox_.contains({px, py});
    out[i] = in_box ? static_cast<std::uint8_t>(probe(px, py)) : 0;
  }
}

void PreparedRing::collect_crossings(double y, std::vector<double>& xs) const {
  if (empty_ || y < bbox_.min_y || y > bbox_.max_y) return;
  const std::size_t s = static_cast<std::size_t>(slab_of(y));
  const std::uint32_t k1 = slab_start_[s + 1];
  for (std::uint32_t k = slab_start_[s]; k < k1; ++k) {
    const double eay = ay_[k];
    const double eby = by_[k];
    // Same half-open rule and expression as the scanline rasterizer; each
    // edge appears once per slab, so no crossing is duplicated.
    if ((eay > y) != (eby > y)) {
      xs.push_back(ax_[k] + (y - eay) * (bx_[k] - ax_[k]) / (eby - eay));
    }
  }
}

bool PreparedRing::any_edge_bbox_intersects(const BBox& box) const {
  if (empty_ || !bbox_.intersects(box)) return false;
  // Every edge whose y-extent overlaps box's y-range is bucketed into at
  // least one slab in [slab_of(box.min_y), slab_of(box.max_y)], so the
  // sweep below misses no candidate (duplicates are merely re-tested).
  const int s_lo = slab_of(box.min_y);
  const int s_hi = slab_of(box.max_y);
  for (int s = s_lo; s <= s_hi; ++s) {
    const std::uint32_t k1 = slab_start_[static_cast<std::size_t>(s) + 1];
    for (std::uint32_t k = slab_start_[static_cast<std::size_t>(s)]; k < k1;
         ++k) {
      const BBox eb{std::min(ax_[k], bx_[k]), std::min(ay_[k], by_[k]),
                    std::max(ax_[k], bx_[k]), std::max(ay_[k], by_[k])};
      if (eb.intersects(box)) return true;
    }
  }
  return false;
}

namespace {

// Candidate interior boxes are sought on a few horizontal lines: the
// widest even-odd inside interval seeds a box that shrinks vertically
// until the boundary provably avoids it.
BBox find_interior_box(const PreparedRing& outer,
                       std::span<const PreparedRing> holes) {
  if (outer.empty()) return {};
  const BBox& bb = outer.bbox();
  if (!(bb.width() > 0.0) || !(bb.height() > 0.0)) return {};
  std::vector<double> xs;
  for (const double fy : {0.5, 0.35, 0.65}) {
    const double y = bb.min_y + bb.height() * fy;
    xs.clear();
    outer.collect_crossings(y, xs);
    for (const PreparedRing& h : holes) h.collect_crossings(y, xs);
    std::sort(xs.begin(), xs.end());
    double best_w = 0.0;
    double x0 = 0.0;
    double x1 = 0.0;
    for (std::size_t k = 0; k + 1 < xs.size(); k += 2) {
      if (xs[k + 1] - xs[k] > best_w) {
        best_w = xs[k + 1] - xs[k];
        x0 = xs[k];
        x1 = xs[k + 1];
      }
    }
    if (!(best_w > 0.0)) continue;
    const double cx = (x0 + x1) * 0.5;
    const double half_w = best_w * 0.4;  // 80% of the interval
    double half_h = bb.height() * 0.25;
    for (int it = 0; it < 12; ++it, half_h *= 0.5) {
      const BBox cand{cx - half_w, y - half_h, cx + half_w, y + half_h};
      if (outer.any_edge_bbox_intersects(cand)) continue;
      bool clear = true;
      for (const PreparedRing& h : holes) {
        if (h.bbox().intersects(cand)) {
          clear = false;
          break;
        }
      }
      if (!clear) continue;
      // The boundary avoids the box, so one interior corner proves the
      // whole (connected) box interior; all four keep it belt-and-braces
      // against crossing-pairing artifacts at the seed line.
      const Vec2 corners[] = {{cand.min_x, cand.min_y},
                              {cand.min_x, cand.max_y},
                              {cand.max_x, cand.min_y},
                              {cand.max_x, cand.max_y}};
      bool inside = true;
      for (const Vec2 c : corners) {
        if (!outer.contains(c)) {
          inside = false;
          break;
        }
      }
      if (inside) return cand;
    }
  }
  return {};
}

}  // namespace

PreparedPolygon::PreparedPolygon(const Polygon& poly)
    : outer_(poly.outer()) {
  holes_.reserve(poly.holes().size());
  for (const Ring& h : poly.holes()) holes_.emplace_back(h);
  interior_ = find_interior_box(outer_, holes_);
}

bool PreparedPolygon::contains(Vec2 p) const {
  if (!outer_.contains(p)) return false;
  for (const PreparedRing& h : holes_) {
    if (h.contains(p)) return false;
  }
  return true;
}

void PreparedPolygon::contains_batch(std::span<const double> xs,
                                     std::span<const double> ys,
                                     std::span<std::uint8_t> out) const {
  const std::size_t n = xs.size();
  std::uint64_t fastpath = 0;
  const bool has_interior = interior_.valid();
  for (std::size_t i = 0; i < n; ++i) {
    const double px = xs[i];
    const double py = ys[i];
    const Vec2 p{px, py};
    if (outer_.empty() || !outer_.bbox().contains(p)) {
      out[i] = 0;
      ++fastpath;
      continue;
    }
    if (has_interior && interior_.contains(p)) {
      out[i] = 1;  // proven interior of outer, outside every hole bbox
      ++fastpath;
      continue;
    }
    bool in = outer_.probe(px, py);
    for (std::size_t h = 0; in && h < holes_.size(); ++h) {
      in = !holes_[h].contains(p);
    }
    out[i] = static_cast<std::uint8_t>(in);
  }
  if (obs::enabled()) {
    KernelCounters& kc = kernel_counters();
    kc.batch_probes->add(n);
    kc.fastpath_hits->add(fastpath);
  }
}

PreparedMultiPolygon::PreparedMultiPolygon(const MultiPolygon& mp)
    : bbox_(mp.bbox()) {
  parts_.reserve(mp.size());
  for (const Polygon& p : mp.parts()) parts_.emplace_back(p);
}

bool PreparedMultiPolygon::contains(Vec2 p) const {
  if (parts_.empty() || !bbox_.contains(p)) return false;
  for (const PreparedPolygon& part : parts_) {
    if (part.contains(p)) return true;
  }
  return false;
}

void PreparedMultiPolygon::contains_batch(std::span<const double> xs,
                                          std::span<const double> ys,
                                          std::span<std::uint8_t> out) const {
  const std::size_t n = xs.size();
  if (parts_.empty()) {
    std::fill(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(n), 0);
    return;
  }
  if (parts_.size() == 1) {
    // MultiPolygon::contains' own bbox check adds nothing: a point
    // outside it is outside the sole part's bbox too.
    parts_[0].contains_batch(xs, ys, out);
    return;
  }
  parts_[0].contains_batch(xs, ys, out);
  // Worker-local scratch so later parts run through the same batch
  // kernel; OR-ing part masks equals the scalar any-part-contains.
  thread_local std::vector<std::uint8_t> scratch;
  scratch.resize(n);
  for (std::size_t part = 1; part < parts_.size(); ++part) {
    parts_[part].contains_batch(xs, ys, scratch);
    for (std::size_t i = 0; i < n; ++i) out[i] |= scratch[i];
  }
}

}  // namespace fa::geo

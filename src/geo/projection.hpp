// Map projections. The library stores geometry in WGS-84 lon/lat and
// projects on demand:
//   * AlbersConus  - equal-area; all acreage/area statistics use this.
//   * Equirect     - local flat approximation; fast, used for rendering.
// Spherical polygon area is provided as a projection-free cross-check.
#pragma once

#include "geo/lonlat.hpp"
#include "geo/polygon.hpp"

namespace fa::geo {

// Albers equal-area conic with the standard conterminous-US parameters
// (std parallels 29.5N / 45.5N, origin 23N 96W), spherical earth.
// Output coordinates are metres.
class AlbersConus {
 public:
  AlbersConus();

  Vec2 forward(LonLat p) const;
  LonLat inverse(Vec2 xy) const;

  Ring project(const Ring& lonlat_ring) const;
  Polygon project(const Polygon& lonlat_poly) const;

 private:
  double n_ = 0.0;    // cone constant
  double c_ = 0.0;
  double rho0_ = 0.0;
  double lam0_ = 0.0; // origin longitude (radians)
};

// Plate carree scaled so that one unit = one metre at `ref_lat`.
// Adequate for small extents (a metro map, a fire perimeter).
class LocalEquirect {
 public:
  explicit LocalEquirect(LonLat origin);

  Vec2 forward(LonLat p) const;
  LonLat inverse(Vec2 xy) const;

 private:
  LonLat origin_;
  double mx_ = 0.0;  // metres per degree lon at origin latitude
  double my_ = 0.0;  // metres per degree lat
};

// Area in square metres of a lon/lat ring computed on the sphere
// (l'Huilier-free excess formulation via the signed spherical shoelace).
double spherical_ring_area_m2(const Ring& lonlat_ring);

// Area of a lon/lat polygon (outer minus holes) in square metres / acres,
// via the Albers projection.
double polygon_area_m2(const Polygon& lonlat_poly);
double polygon_area_acres(const Polygon& lonlat_poly);
double multipolygon_area_acres(const MultiPolygon& lonlat_mp);

}  // namespace fa::geo

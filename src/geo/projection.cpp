#include "geo/projection.hpp"

#include <cmath>

#include "geo/geodesy.hpp"

namespace fa::geo {

namespace {
constexpr double kPhi1 = 29.5 * kDegToRad;  // southern standard parallel
constexpr double kPhi2 = 45.5 * kDegToRad;  // northern standard parallel
constexpr double kPhi0 = 23.0 * kDegToRad;  // latitude of origin
constexpr double kLam0 = -96.0 * kDegToRad; // central meridian
}  // namespace

AlbersConus::AlbersConus() {
  n_ = (std::sin(kPhi1) + std::sin(kPhi2)) / 2.0;
  c_ = std::cos(kPhi1) * std::cos(kPhi1) + 2.0 * n_ * std::sin(kPhi1);
  rho0_ = kEarthRadiusM * std::sqrt(c_ - 2.0 * n_ * std::sin(kPhi0)) / n_;
  lam0_ = kLam0;
}

Vec2 AlbersConus::forward(LonLat p) const {
  const double phi = p.lat * kDegToRad;
  const double lam = p.lon * kDegToRad;
  const double rho =
      kEarthRadiusM * std::sqrt(c_ - 2.0 * n_ * std::sin(phi)) / n_;
  const double theta = n_ * (lam - lam0_);
  return {rho * std::sin(theta), rho0_ - rho * std::cos(theta)};
}

LonLat AlbersConus::inverse(Vec2 xy) const {
  const double rho = std::hypot(xy.x, rho0_ - xy.y);
  double theta = std::atan2(xy.x, rho0_ - xy.y);
  const double r = rho * n_ / kEarthRadiusM;
  const double sin_phi = (c_ - r * r) / (2.0 * n_);
  const double phi = std::asin(std::clamp(sin_phi, -1.0, 1.0));
  const double lam = lam0_ + theta / n_;
  return {lam * kRadToDeg, phi * kRadToDeg};
}

Ring AlbersConus::project(const Ring& lonlat_ring) const {
  std::vector<Vec2> out;
  out.reserve(lonlat_ring.size());
  for (const Vec2& p : lonlat_ring.points()) {
    out.push_back(forward(LonLat::from_vec(p)));
  }
  return Ring{std::move(out)};
}

Polygon AlbersConus::project(const Polygon& lonlat_poly) const {
  std::vector<Ring> holes;
  holes.reserve(lonlat_poly.holes().size());
  for (const Ring& h : lonlat_poly.holes()) holes.push_back(project(h));
  return Polygon{project(lonlat_poly.outer()), std::move(holes)};
}

LocalEquirect::LocalEquirect(LonLat origin)
    : origin_(origin),
      mx_(meters_per_deg_lon(origin.lat)),
      my_(meters_per_deg_lat()) {}

Vec2 LocalEquirect::forward(LonLat p) const {
  return {(p.lon - origin_.lon) * mx_, (p.lat - origin_.lat) * my_};
}

LonLat LocalEquirect::inverse(Vec2 xy) const {
  return {origin_.lon + xy.x / mx_, origin_.lat + xy.y / my_};
}

double spherical_ring_area_m2(const Ring& lonlat_ring) {
  // Signed spherical excess via the sum over edges of
  //   (lam2 - lam1) * (2 + sin(phi1) + sin(phi2)) / 2
  // which is exact for great-ellipse-free small polygons and standard in
  // GIS practice (same formula as turf.js / PostGIS spheroid fallback).
  const auto pts = lonlat_ring.points();
  const std::size_t n = pts.size();
  if (n < 3) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 a = pts[i];
    const Vec2 b = pts[(i + 1) % n];
    acc += (b.x - a.x) * kDegToRad *
           (2.0 + std::sin(a.y * kDegToRad) + std::sin(b.y * kDegToRad));
  }
  return std::abs(acc * kEarthRadiusM * kEarthRadiusM / 2.0);
}

double polygon_area_m2(const Polygon& lonlat_poly) {
  static const AlbersConus proj;
  return proj.project(lonlat_poly).area();
}

double polygon_area_acres(const Polygon& lonlat_poly) {
  return polygon_area_m2(lonlat_poly) / kSquareMetersPerAcre;
}

double multipolygon_area_acres(const MultiPolygon& lonlat_mp) {
  double acc = 0.0;
  for (const Polygon& p : lonlat_mp.parts()) acc += polygon_area_acres(p);
  return acc;
}

}  // namespace fa::geo

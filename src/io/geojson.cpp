#include "io/geojson.hpp"

namespace fa::io {

namespace {

JsonArray coord(geo::Vec2 p) { return JsonArray{p.x, p.y}; }

// GeoJSON rings are closed (first == last).
JsonArray ring_coords(const geo::Ring& ring) {
  JsonArray out;
  const auto pts = ring.points();
  out.reserve(pts.size() + 1);
  for (const geo::Vec2& p : pts) out.push_back(coord(p));
  if (!pts.empty()) out.push_back(coord(pts.front()));
  return out;
}

JsonArray polygon_coords(const geo::Polygon& poly) {
  JsonArray rings;
  rings.push_back(ring_coords(poly.outer()));
  for (const geo::Ring& h : poly.holes()) rings.push_back(ring_coords(h));
  return rings;
}

[[noreturn]] void schema_fail(std::string why) {
  throw JsonError(fault::ErrCode::kSchema, "geojson", std::move(why));
}

geo::Vec2 parse_coord(const JsonValue& v) {
  if (!v.is_array() || v.size() < 2) schema_fail("bad coordinate");
  const JsonValue& x = v.at(std::size_t{0});
  const JsonValue& y = v.at(std::size_t{1});
  if (!x.is_number() || !y.is_number()) {
    schema_fail("coordinate component is not a number");
  }
  return {x.as_number(), y.as_number()};
}

geo::Ring parse_ring(const JsonValue& v) {
  if (!v.is_array()) schema_fail("ring is not an array");
  std::vector<geo::Vec2> pts;
  pts.reserve(v.size());
  for (const JsonValue& c : v.as_array()) pts.push_back(parse_coord(c));
  return geo::Ring{std::move(pts)};
}

geo::Polygon parse_polygon_coords(const JsonValue& rings) {
  if (!rings.is_array() || rings.size() == 0) schema_fail("bad polygon");
  geo::Ring outer = parse_ring(rings.at(std::size_t{0}));
  std::vector<geo::Ring> holes;
  for (std::size_t i = 1; i < rings.size(); ++i) {
    holes.push_back(parse_ring(rings.at(i)));
  }
  return geo::Polygon{std::move(outer), std::move(holes)};
}

void check_type(const JsonValue& geometry, std::string_view want) {
  if (!geometry.is_object() || !geometry.has("type") ||
      !geometry.at("type").is_string() ||
      geometry.at("type").as_string() != want) {
    schema_fail("expected geometry type " + std::string(want));
  }
}

}  // namespace

JsonValue point_geometry(geo::Vec2 p) {
  return JsonObject{{"type", "Point"}, {"coordinates", coord(p)}};
}

JsonValue polygon_geometry(const geo::Polygon& poly) {
  return JsonObject{{"type", "Polygon"}, {"coordinates", polygon_coords(poly)}};
}

JsonValue multipolygon_geometry(const geo::MultiPolygon& mp) {
  JsonArray parts;
  for (const geo::Polygon& p : mp.parts()) parts.push_back(polygon_coords(p));
  return JsonObject{{"type", "MultiPolygon"}, {"coordinates", std::move(parts)}};
}

JsonValue feature(JsonValue geometry, JsonObject properties) {
  return JsonObject{{"type", "Feature"},
                    {"geometry", std::move(geometry)},
                    {"properties", std::move(properties)}};
}

JsonValue feature_collection(JsonArray features) {
  return JsonObject{{"type", "FeatureCollection"},
                    {"features", std::move(features)}};
}

geo::Vec2 parse_point_geometry(const JsonValue& geometry) {
  check_type(geometry, "Point");
  return parse_coord(geometry.at("coordinates"));
}

geo::Polygon parse_polygon_geometry(const JsonValue& geometry) {
  check_type(geometry, "Polygon");
  return parse_polygon_coords(geometry.at("coordinates"));
}

geo::MultiPolygon parse_multipolygon_geometry(const JsonValue& geometry) {
  check_type(geometry, "MultiPolygon");
  const JsonValue& coords = geometry.at("coordinates");
  if (!coords.is_array()) schema_fail("multipolygon coordinates not an array");
  std::vector<geo::Polygon> parts;
  for (const JsonValue& p : coords.as_array()) {
    parts.push_back(parse_polygon_coords(p));
  }
  return geo::MultiPolygon{std::move(parts)};
}

fault::Result<geo::Vec2> try_parse_point_geometry(const JsonValue& geometry) {
  try {
    return parse_point_geometry(geometry);
  } catch (const fault::IoError& e) {
    return e.status();
  }
}

fault::Result<geo::Polygon> try_parse_polygon_geometry(
    const JsonValue& geometry) {
  try {
    return parse_polygon_geometry(geometry);
  } catch (const fault::IoError& e) {
    return e.status();
  }
}

fault::Result<geo::MultiPolygon> try_parse_multipolygon_geometry(
    const JsonValue& geometry) {
  try {
    return parse_multipolygon_geometry(geometry);
  } catch (const fault::IoError& e) {
    return e.status();
  }
}

}  // namespace fa::io

#include "io/wkt.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cstdio>

#include "obs/obs.hpp"

namespace fa::io {

namespace {

void append_number(std::string& out, double v) {
  std::array<char, 32> buf;
  const int n = std::snprintf(buf.data(), buf.size(), "%.9g", v);
  out.append(buf.data(), static_cast<std::size_t>(n));
}

void append_ring(std::string& out, const geo::Ring& ring) {
  out.push_back('(');
  const auto pts = ring.points();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    append_number(out, pts[i].x);
    out.push_back(' ');
    append_number(out, pts[i].y);
    out += ", ";
  }
  // Close the ring per the WKT spec (first point repeated).
  if (!pts.empty()) {
    append_number(out, pts[0].x);
    out.push_back(' ');
    append_number(out, pts[0].y);
  }
  out.push_back(')');
}

void append_polygon_body(std::string& out, const geo::Polygon& poly) {
  out.push_back('(');
  append_ring(out, poly.outer());
  for (const geo::Ring& h : poly.holes()) {
    out += ", ";
    append_ring(out, h);
  }
  out.push_back(')');
}

class WktParser {
 public:
  explicit WktParser(std::string_view text) : text_(text) {}

  geo::Vec2 point() {
    expect_tag("POINT");
    expect('(');
    const geo::Vec2 p = coord();
    expect(')');
    return p;
  }

  geo::Polygon polygon() {
    expect_tag("POLYGON");
    return polygon_body();
  }

  geo::MultiPolygon multipolygon() {
    expect_tag("MULTIPOLYGON");
    skip_ws();
    std::vector<geo::Polygon> parts;
    expect('(');
    while (true) {
      parts.push_back(polygon_body());
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    expect(')');
    return geo::MultiPolygon{std::move(parts)};
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    // Exhausted input is a truncation, not a syntax error — the caller's
    // recovery differs (retry with more bytes vs quarantine the record).
    const fault::ErrCode code = pos_ >= text_.size()
                                    ? fault::ErrCode::kTruncated
                                    : fault::ErrCode::kParse;
    throw fault::IoError(fault::Status::error(code, pos_, "wkt", why));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  void expect(char ch) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != ch) {
      fail(std::string("expected '") + ch + "'");
    }
    ++pos_;
  }

  void expect_tag(std::string_view tag) {
    skip_ws();
    for (const char want : tag) {
      if (pos_ >= text_.size() ||
          std::toupper(static_cast<unsigned char>(text_[pos_])) != want) {
        fail(std::string("expected tag ") + std::string(tag));
      }
      ++pos_;
    }
  }

  double number() {
    skip_ws();
    double value = 0.0;
    const auto res =
        std::from_chars(text_.data() + pos_, text_.data() + text_.size(),
                        value);
    if (res.ec != std::errc{}) fail("bad number");
    pos_ = static_cast<std::size_t>(res.ptr - text_.data());
    return value;
  }

  geo::Vec2 coord() {
    const double x = number();
    const double y = number();
    return {x, y};
  }

  geo::Ring ring() {
    expect('(');
    std::vector<geo::Vec2> pts;
    while (true) {
      pts.push_back(coord());
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    expect(')');
    if (pts.size() < 3) {
      throw fault::IoError(fault::Status::error(
          fault::ErrCode::kSchema, pos_, "wkt",
          "ring needs at least 3 points, got " + std::to_string(pts.size())));
    }
    return geo::Ring{std::move(pts)};  // Ring strips the closing duplicate
  }

  geo::Polygon polygon_body() {
    expect('(');
    geo::Ring outer = ring();
    std::vector<geo::Ring> holes;
    skip_ws();
    while (pos_ < text_.size() && text_[pos_] == ',') {
      ++pos_;
      holes.push_back(ring());
      skip_ws();
    }
    expect(')');
    return geo::Polygon{std::move(outer), std::move(holes)};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string to_wkt(geo::Vec2 point) {
  std::string out = "POINT (";
  append_number(out, point.x);
  out.push_back(' ');
  append_number(out, point.y);
  out.push_back(')');
  return out;
}

std::string to_wkt(const geo::Polygon& poly) {
  std::string out = "POLYGON ";
  append_polygon_body(out, poly);
  return out;
}

std::string to_wkt(const geo::MultiPolygon& mp) {
  std::string out = "MULTIPOLYGON (";
  const auto parts = mp.parts();
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += ", ";
    append_polygon_body(out, parts[i]);
  }
  out.push_back(')');
  return out;
}

fault::Result<geo::Vec2> try_parse_wkt_point(std::string_view wkt) {
  obs::count("io.wkt.parses");
  obs::count("io.wkt.bytes", wkt.size());
  try {
    return WktParser{wkt}.point();
  } catch (const fault::IoError& e) {
    obs::count("io.wkt.errors");
    return e.status();
  }
}

fault::Result<geo::Polygon> try_parse_wkt_polygon(std::string_view wkt) {
  obs::count("io.wkt.parses");
  obs::count("io.wkt.bytes", wkt.size());
  try {
    return WktParser{wkt}.polygon();
  } catch (const fault::IoError& e) {
    obs::count("io.wkt.errors");
    return e.status();
  }
}

fault::Result<geo::MultiPolygon> try_parse_wkt_multipolygon(
    std::string_view wkt) {
  obs::count("io.wkt.parses");
  obs::count("io.wkt.bytes", wkt.size());
  try {
    return WktParser{wkt}.multipolygon();
  } catch (const fault::IoError& e) {
    obs::count("io.wkt.errors");
    return e.status();
  }
}

geo::Vec2 parse_wkt_point(std::string_view wkt) {
  return WktParser{wkt}.point();
}

geo::Polygon parse_wkt_polygon(std::string_view wkt) {
  return WktParser{wkt}.polygon();
}

geo::MultiPolygon parse_wkt_multipolygon(std::string_view wkt) {
  return WktParser{wkt}.multipolygon();
}

}  // namespace fa::io

// RFC-4180-style CSV reading/writing. The OpenCelliD corpus ships as CSV;
// the synthetic corpus round-trips through the same schema so the pipeline
// exercises a realistic ingest path.
#pragma once

#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "fault/status.hpp"

namespace fa::io {

// Splits one CSV record honouring double-quote escaping ("" -> ").
// Newlines inside quoted fields are NOT supported (none of our schemas
// use them); a dangling quote is treated as extending to end of line.
std::vector<std::string> parse_csv_line(std::string_view line, char sep = ',');

// Quotes `field` if it contains the separator, a quote, or whitespace.
std::string escape_csv_field(std::string_view field, char sep = ',');

class CsvReader {
 public:
  // Does not own the stream. If `has_header` the first row is consumed
  // and exposed via header().
  explicit CsvReader(std::istream& in, bool has_header = true, char sep = ',');
  // Flushes io.csv.* observability counters (bytes, records, schema
  // errors) accumulated over the reader's lifetime.
  ~CsvReader();

  const std::vector<std::string>& header() const { return header_; }
  // Column index by header name, or -1.
  int column(std::string_view name) const;

  // Next record, or nullopt at EOF. Blank lines are skipped. Lenient:
  // field-count mismatches are the caller's problem (legacy behavior).
  std::optional<std::vector<std::string>> next();

  // Structured variant: nullopt at EOF; an error Result (code kSchema,
  // offset = 1-based record index, source "csv") when the reader has a
  // header and the record's field count does not match it.
  std::optional<fault::Result<std::vector<std::string>>> try_next();

  std::size_t records_read() const { return records_; }
  // Physical line number of the last record returned (1-based; a header,
  // when present, is line 1). 0 before the first record.
  std::size_t line() const { return line_of_record_; }

 private:
  std::istream& in_;
  std::vector<std::string> header_;
  char sep_;
  std::size_t records_ = 0;
  std::size_t line_ = 0;            // physical lines consumed so far
  std::size_t line_of_record_ = 0;  // line of the last record returned
  std::size_t bytes_ = 0;           // bytes consumed (incl. newlines)
  std::size_t schema_errors_ = 0;   // try_next field-count mismatches
};

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char sep = ',') : out_(out), sep_(sep) {}
  void write_row(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
  char sep_;
};

}  // namespace fa::io

#include "io/json.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "obs/obs.hpp"

namespace fa::io {

namespace {

[[noreturn]] void schema_fail(const std::string& why) {
  throw JsonError(fault::ErrCode::kSchema, "json", why);
}

}  // namespace

const JsonValue& JsonValue::at(const std::string& key) const {
  if (!is_object()) schema_fail("member access on non-object");
  const JsonObject& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) schema_fail("missing key: " + key);
  return it->second;
}

bool JsonValue::has(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

const JsonValue& JsonValue::at(std::size_t i) const {
  if (!is_array()) schema_fail("element access on non-array");
  const JsonArray& arr = as_array();
  if (i >= arr.size()) schema_fail("index out of range");
  return arr[i];
}

std::size_t JsonValue::size() const {
  if (is_array()) return as_array().size();
  if (is_object()) return as_object().size();
  schema_fail("size() on non-container");
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why,
                         fault::ErrCode code = fault::ErrCode::kParse) const {
    // Exhausted input reads as truncation regardless of the caller's
    // wording — recovery differs from a syntax error mid-stream.
    if (pos_ >= text_.size() && code == fault::ErrCode::kParse) {
      code = fault::ErrCode::kTruncated;
    }
    throw JsonError(fault::Status::error(code, pos_, "json", why));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char ch) {
    if (peek() != ch) fail(std::string("expected '") + ch + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char ch = peek();
    switch (ch) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue{parse_string()};
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue{true};
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue{false};
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{nullptr};
      default:
        return parse_number();
    }
  }

  void enter_container() {
    if (++depth_ > kMaxJsonDepth) {
      fail("nesting deeper than " + std::to_string(kMaxJsonDepth),
           fault::ErrCode::kLimit);
    }
  }

  JsonValue parse_object() {
    enter_container();
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return JsonValue{std::move(obj)};
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      skip_ws();
      const char ch = peek();
      if (ch == ',') {
        ++pos_;
        continue;
      }
      if (ch == '}') {
        ++pos_;
        --depth_;
        return JsonValue{std::move(obj)};
      }
      fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    enter_container();
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return JsonValue{std::move(arr)};
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char ch = peek();
      if (ch == ',') {
        ++pos_;
        continue;
      }
      if (ch == ']') {
        ++pos_;
        --depth_;
        return JsonValue{std::move(arr)};
      }
      fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char ch = text_[pos_++];
      if (ch == '"') return out;
      if (ch != '\\') {
        out.push_back(ch);
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit");
          }
          // UTF-8 encode the BMP code point.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (res.ec != std::errc{} || res.ptr != text_.data() + pos_ ||
        start == pos_) {
      pos_ = start;
      fail("bad number");
    }
    return JsonValue{value};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void escape_into(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          std::array<char, 8> buf;
          std::snprintf(buf.data(), buf.size(), "\\u%04x",
                        static_cast<unsigned>(ch));
          out += buf.data();
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
}

void number_into(double d, std::string& out) {
  if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 1e15) {
    // Integral values print without a fractional part.
    out += std::to_string(static_cast<long long>(d));
    return;
  }
  std::array<char, 32> buf;
  const std::size_t n = static_cast<std::size_t>(
      std::snprintf(buf.data(), buf.size(), "%.17g", d));
  out.append(buf.data(), n);
}

void serialize(const JsonValue& v, std::string& out, int indent, int depth) {
  const auto newline = [&out, indent, depth](int extra) {
    if (indent <= 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * (depth + extra)), ' ');
  };
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    number_into(v.as_number(), out);
  } else if (v.is_string()) {
    escape_into(v.as_string(), out);
  } else if (v.is_array()) {
    const JsonArray& arr = v.as_array();
    out.push_back('[');
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i) out.push_back(',');
      newline(1);
      serialize(arr[i], out, indent, depth + 1);
    }
    if (!arr.empty()) newline(0);
    out.push_back(']');
  } else {
    const JsonObject& obj = v.as_object();
    out.push_back('{');
    std::size_t i = 0;
    for (const auto& [key, val] : obj) {
      if (i++) out.push_back(',');
      newline(1);
      escape_into(key, out);
      out.push_back(':');
      if (indent > 0) out.push_back(' ');
      serialize(val, out, indent, depth + 1);
    }
    if (!obj.empty()) newline(0);
    out.push_back('}');
  }
}

}  // namespace

fault::Result<JsonValue> try_parse_json(std::string_view text) {
  obs::count("io.json.parses");
  obs::count("io.json.bytes", text.size());
  try {
    return Parser{text}.parse_document();
  } catch (const fault::IoError& e) {
    obs::count("io.json.errors");
    return e.status();
  }
}

JsonValue parse_json(std::string_view text) {
  obs::count("io.json.parses");
  obs::count("io.json.bytes", text.size());
  return Parser{text}.parse_document();
}

std::string to_json(const JsonValue& value, int indent) {
  std::string out;
  serialize(value, out, indent, 0);
  return out;
}

}  // namespace fa::io

// Minimal JSON document model + parser + serializer (RFC 8259 subset:
// no \u surrogate pairs beyond the BMP, numbers as double). Backs the
// GeoJSON layer and machine-readable experiment output.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "fault/status.hpp"

namespace fa::io {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
// std::map keeps key order deterministic, which keeps serialized output
// byte-stable across runs — important for golden-file tests.
using JsonObject = std::map<std::string, JsonValue>;

// Legacy alias: JSON failures are fault::IoError with source "json" and
// the byte offset of the malformed token in Status::offset.
using JsonError = fault::IoError;

// Containers nested beyond this depth are rejected (kLimit) instead of
// recursing toward a stack overflow on adversarial input.
inline constexpr int kMaxJsonDepth = 128;

class JsonValue {
 public:
  JsonValue() : v_(nullptr) {}
  JsonValue(std::nullptr_t) : v_(nullptr) {}
  JsonValue(bool b) : v_(b) {}
  JsonValue(double d) : v_(d) {}
  JsonValue(int i) : v_(static_cast<double>(i)) {}
  JsonValue(std::int64_t i) : v_(static_cast<double>(i)) {}
  JsonValue(std::size_t i) : v_(static_cast<double>(i)) {}
  JsonValue(const char* s) : v_(std::string{s}) {}
  JsonValue(std::string s) : v_(std::move(s)) {}
  JsonValue(JsonArray a) : v_(std::move(a)) {}
  JsonValue(JsonObject o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(v_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(v_); }

  bool as_bool() const { return std::get<bool>(v_); }
  double as_number() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const JsonArray& as_array() const { return std::get<JsonArray>(v_); }
  JsonArray& as_array() { return std::get<JsonArray>(v_); }
  const JsonObject& as_object() const { return std::get<JsonObject>(v_); }
  JsonObject& as_object() { return std::get<JsonObject>(v_); }

  // Object member access; throws JsonError when absent or not an object.
  const JsonValue& at(const std::string& key) const;
  bool has(const std::string& key) const;
  // Array element access.
  const JsonValue& at(std::size_t i) const;
  std::size_t size() const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v_;
};

// Non-throwing parse of a complete JSON document; the error Status
// carries the byte offset of the malformed token / trailing garbage.
fault::Result<JsonValue> try_parse_json(std::string_view text);

// Throwing wrapper; fault::IoError (alias JsonError) on malformed input.
JsonValue parse_json(std::string_view text);

// Compact serialization (no whitespace). `indent` > 0 pretty-prints.
std::string to_json(const JsonValue& value, int indent = 0);

}  // namespace fa::io

#include "io/fagrid.hpp"

#include <array>
#include <bit>
#include <cstring>
#include <fstream>
#include <new>

#include "obs/obs.hpp"

namespace fa::io {

namespace {

constexpr std::array<char, 8> kMagic = {'F', 'A', 'G', 'R', 'I', 'D', '1', 0};

static_assert(std::endian::native == std::endian::little,
              "fagrid assumes a little-endian host");

template <typename T>
void write_pod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

// Reads one POD field, tracking the running byte offset so a short read
// reports exactly where the input ended.
template <typename T>
T read_pod(std::istream& in, std::uint64_t& offset, std::string_view source,
           std::string_view field) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) {
    throw fault::IoError(fault::Status::error(
        fault::ErrCode::kTruncated,
        offset + static_cast<std::uint64_t>(in.gcount()), std::string(source),
        "truncated input in header field '" + std::string(field) + "'"));
  }
  offset += sizeof(T);
  return value;
}

raster::ClassRaster read_impl(std::istream& in, std::string_view source) {
  std::uint64_t offset = 0;
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in) {
    throw fault::IoError(fault::Status::error(
        fault::ErrCode::kTruncated,
        static_cast<std::uint64_t>(in.gcount()), std::string(source),
        "truncated input before end of magic"));
  }
  if (magic != kMagic) {
    throw fault::IoError(fault::Status::error(
        fault::ErrCode::kBadMagic, 0, std::string(source), "bad magic"));
  }
  offset += magic.size();

  raster::GridGeometry g;
  g.origin_x = read_pod<double>(in, offset, source, "origin_x");
  g.origin_y = read_pod<double>(in, offset, source, "origin_y");
  g.cell_w = read_pod<double>(in, offset, source, "cell_w");
  g.cell_h = read_pod<double>(in, offset, source, "cell_h");
  const std::uint64_t dims_offset = offset;
  g.cols = read_pod<std::int32_t>(in, offset, source, "cols");
  g.rows = read_pod<std::int32_t>(in, offset, source, "rows");
  if (g.cols <= 0 || g.rows <= 0 || g.cell_w <= 0.0 || g.cell_h <= 0.0 ||
      !(g.cell_w < 1e12) || !(g.cell_h < 1e12)) {
    throw fault::IoError(fault::Status::error(
        fault::ErrCode::kOutOfRange, dims_offset, std::string(source),
        "invalid geometry (cols=" + std::to_string(g.cols) +
            " rows=" + std::to_string(g.rows) + ")"));
  }
  // Dimension sanity cap: the CONUS at 270 m is ~180M cells; anything an
  // order of magnitude beyond that is a corrupt header, not data.
  if (g.cell_count() > 2'000'000'000ULL) {
    throw fault::IoError(fault::Status::error(
        fault::ErrCode::kLimit, dims_offset, std::string(source),
        "implausible dimensions (" + std::to_string(g.cols) + "x" +
            std::to_string(g.rows) + ")"));
  }
  try {
    raster::ClassRaster grid(g, 0);
    in.read(reinterpret_cast<char*>(grid.data().data()),
            static_cast<std::streamsize>(grid.data().size()));
    if (!in) {
      throw fault::IoError(fault::Status::error(
          fault::ErrCode::kTruncated,
          offset + static_cast<std::uint64_t>(in.gcount()),
          std::string(source),
          "truncated data (" + std::to_string(in.gcount()) + " of " +
              std::to_string(grid.data().size()) + " bytes)"));
    }
    return grid;
  } catch (const std::bad_alloc&) {
    // A within-cap but huge header can still exceed available memory;
    // that is a malformed-input condition, not a crash.
    throw fault::IoError(fault::Status::error(
        fault::ErrCode::kLimit, dims_offset, std::string(source),
        "allocation failed for " + std::to_string(g.cell_count()) +
            " cells"));
  }
}

}  // namespace

void write_fagrid(std::ostream& out, const raster::ClassRaster& grid) {
  out.write(kMagic.data(), kMagic.size());
  const raster::GridGeometry& g = grid.geom();
  write_pod(out, g.origin_x);
  write_pod(out, g.origin_y);
  write_pod(out, g.cell_w);
  write_pod(out, g.cell_h);
  write_pod(out, static_cast<std::int32_t>(g.cols));
  write_pod(out, static_cast<std::int32_t>(g.rows));
  out.write(reinterpret_cast<const char*>(grid.data().data()),
            static_cast<std::streamsize>(grid.data().size()));
}

fault::Result<raster::ClassRaster> try_read_fagrid(std::istream& in,
                                                   std::string_view source) {
  try {
    fault::Result<raster::ClassRaster> result = read_impl(in, source);
    obs::count("io.fagrid.reads");
    obs::count("io.fagrid.cells", result.value().data().size());
    return result;
  } catch (const fault::IoError& e) {
    obs::count("io.fagrid.errors");
    return e.status();
  }
}

fault::Result<raster::ClassRaster> try_load_fagrid(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return fault::Status::error(fault::ErrCode::kIoFailure, 0, path,
                                "cannot open");
  }
  return try_read_fagrid(in, path);
}

raster::ClassRaster read_fagrid(std::istream& in) {
  return read_impl(in, "fagrid");
}

void save_fagrid(const std::string& path, const raster::ClassRaster& grid) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw fault::IoError(fault::ErrCode::kIoFailure, path, "cannot open");
  }
  write_fagrid(out, grid);
}

raster::ClassRaster load_fagrid(const std::string& path) {
  return try_load_fagrid(path).take();
}

}  // namespace fa::io

#include "io/fagrid.hpp"

#include <array>
#include <bit>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace fa::io {

namespace {

constexpr std::array<char, 8> kMagic = {'F', 'A', 'G', 'R', 'I', 'D', '1', 0};

static_assert(std::endian::native == std::endian::little,
              "fagrid assumes a little-endian host");

template <typename T>
void write_pod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("fagrid: truncated input");
  return value;
}

}  // namespace

void write_fagrid(std::ostream& out, const raster::ClassRaster& grid) {
  out.write(kMagic.data(), kMagic.size());
  const raster::GridGeometry& g = grid.geom();
  write_pod(out, g.origin_x);
  write_pod(out, g.origin_y);
  write_pod(out, g.cell_w);
  write_pod(out, g.cell_h);
  write_pod(out, static_cast<std::int32_t>(g.cols));
  write_pod(out, static_cast<std::int32_t>(g.rows));
  out.write(reinterpret_cast<const char*>(grid.data().data()),
            static_cast<std::streamsize>(grid.data().size()));
}

raster::ClassRaster read_fagrid(std::istream& in) {
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) throw std::runtime_error("fagrid: bad magic");
  raster::GridGeometry g;
  g.origin_x = read_pod<double>(in);
  g.origin_y = read_pod<double>(in);
  g.cell_w = read_pod<double>(in);
  g.cell_h = read_pod<double>(in);
  g.cols = read_pod<std::int32_t>(in);
  g.rows = read_pod<std::int32_t>(in);
  if (g.cols <= 0 || g.rows <= 0 || g.cell_w <= 0.0 || g.cell_h <= 0.0) {
    throw std::runtime_error("fagrid: invalid geometry");
  }
  // Dimension sanity cap: the CONUS at 270 m is ~180M cells; anything an
  // order of magnitude beyond that is a corrupt header, not data.
  if (g.cell_count() > 2'000'000'000ULL) {
    throw std::runtime_error("fagrid: implausible dimensions");
  }
  raster::ClassRaster grid(g, 0);
  in.read(reinterpret_cast<char*>(grid.data().data()),
          static_cast<std::streamsize>(grid.data().size()));
  if (!in) throw std::runtime_error("fagrid: truncated data");
  return grid;
}

void save_fagrid(const std::string& path, const raster::ClassRaster& grid) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("fagrid: cannot open " + path);
  write_fagrid(out, grid);
}

raster::ClassRaster load_fagrid(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("fagrid: cannot open " + path);
  return read_fagrid(in);
}

}  // namespace fa::io

#include "io/csv.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace fa::io {

std::vector<std::string> parse_csv_line(std::string_view line, char sep) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (quoted) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur.push_back(ch);
      }
    } else if (ch == '"') {
      quoted = true;
    } else if (ch == sep) {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (ch == '\r' && i + 1 == line.size()) {
      // Swallow trailing CR from CRLF input.
    } else {
      cur.push_back(ch);
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

std::string escape_csv_field(std::string_view field, char sep) {
  const bool needs_quotes =
      field.find(sep) != std::string_view::npos ||
      field.find('"') != std::string_view::npos ||
      field.find('\n') != std::string_view::npos ||
      (!field.empty() && (field.front() == ' ' || field.back() == ' '));
  if (!needs_quotes) return std::string{field};
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char ch : field) {
    if (ch == '"') out.push_back('"');
    out.push_back(ch);
  }
  out.push_back('"');
  return out;
}

CsvReader::CsvReader(std::istream& in, bool has_header, char sep)
    : in_(in), sep_(sep) {
  if (has_header) {
    std::string line;
    if (std::getline(in_, line)) {
      header_ = parse_csv_line(line, sep_);
      ++line_;
      bytes_ += line.size() + 1;
    }
  }
}

CsvReader::~CsvReader() {
  // One counter update per reader, not per record: keeps the hot loop
  // free of registry traffic while still reporting parse volume.
  obs::count("io.csv.bytes", bytes_);
  obs::count("io.csv.records", records_);
  if (schema_errors_ != 0) obs::count("io.csv.schema_errors", schema_errors_);
}

int CsvReader::column(std::string_view name) const {
  const auto it = std::find(header_.begin(), header_.end(), name);
  return it == header_.end()
             ? -1
             : static_cast<int>(std::distance(header_.begin(), it));
}

std::optional<std::vector<std::string>> CsvReader::next() {
  std::string line;
  while (std::getline(in_, line)) {
    ++line_;
    bytes_ += line.size() + 1;
    if (line.empty() || line == "\r") continue;
    ++records_;
    line_of_record_ = line_;
    return parse_csv_line(line, sep_);
  }
  return std::nullopt;
}

std::optional<fault::Result<std::vector<std::string>>> CsvReader::try_next() {
  std::optional<std::vector<std::string>> row = next();
  if (!row) return std::nullopt;
  if (!header_.empty() && row->size() != header_.size()) {
    ++schema_errors_;
    return fault::Result<std::vector<std::string>>(fault::Status::error(
        fault::ErrCode::kSchema, records_, "csv",
        "record has " + std::to_string(row->size()) + " fields, header has " +
            std::to_string(header_.size())));
  }
  return fault::Result<std::vector<std::string>>(std::move(*row));
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << sep_;
    out_ << escape_csv_field(fields[i], sep_);
  }
  out_ << '\n';
}

}  // namespace fa::io

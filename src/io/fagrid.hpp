// Portable binary raster container (".fagrid"): a fixed little-endian
// header followed by row-major uint8 cell data. Stands in for GeoTIFF so
// generated WHP grids can be cached between runs without GDAL.
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <string_view>

#include "fault/status.hpp"
#include "raster/raster.hpp"

namespace fa::io {

// Format:
//   magic   "FAGRID1\0"              (8 bytes)
//   geometry: origin_x, origin_y, cell_w, cell_h as float64 LE (32 bytes)
//   cols, rows as int32 LE            (8 bytes)
//   data: cols*rows uint8, row 0 first (south-up, matching GridGeometry)
void write_fagrid(std::ostream& out, const raster::ClassRaster& grid);

// Non-throwing reader. Error Status carries the exact byte offset where
// the input went wrong and `source` (format tag or, via try_load_fagrid,
// the file path) so the message alone pinpoints the failure.
fault::Result<raster::ClassRaster> try_read_fagrid(
    std::istream& in, std::string_view source = "fagrid");
fault::Result<raster::ClassRaster> try_load_fagrid(const std::string& path);

// Thin throwing wrappers; fault::IoError on malformed input, with the
// byte offset and source/path in both Status and exception message.
raster::ClassRaster read_fagrid(std::istream& in);

// File helpers.
void save_fagrid(const std::string& path, const raster::ClassRaster& grid);
raster::ClassRaster load_fagrid(const std::string& path);

}  // namespace fa::io

// GeoJSON (RFC 7946) encoding of library geometry, plus feature-collection
// helpers. Used by the benches to export reproduced figures as map layers
// that any GIS viewer can open.
#pragma once

#include <string>
#include <vector>

#include "geo/polygon.hpp"
#include "io/json.hpp"

namespace fa::io {

JsonValue point_geometry(geo::Vec2 p);
JsonValue polygon_geometry(const geo::Polygon& poly);
JsonValue multipolygon_geometry(const geo::MultiPolygon& mp);

// A feature pairs a geometry with free-form properties.
JsonValue feature(JsonValue geometry, JsonObject properties);
JsonValue feature_collection(JsonArray features);

// Non-throwing inverse mappings; schema violations surface as Status
// (code kSchema, source "geojson").
fault::Result<geo::Vec2> try_parse_point_geometry(const JsonValue& geometry);
fault::Result<geo::Polygon> try_parse_polygon_geometry(
    const JsonValue& geometry);
fault::Result<geo::MultiPolygon> try_parse_multipolygon_geometry(
    const JsonValue& geometry);

// Thin throwing wrappers; fault::IoError (alias JsonError) on schema
// violations.
geo::Vec2 parse_point_geometry(const JsonValue& geometry);
geo::Polygon parse_polygon_geometry(const JsonValue& geometry);
geo::MultiPolygon parse_multipolygon_geometry(const JsonValue& geometry);

}  // namespace fa::io

// Well-Known Text geometry serialization (POINT, POLYGON, MULTIPOLYGON).
// GeoMAC distributes perimeters as shapefiles; WKT is the interchange form
// this library emits/ingests for perimeter records.
#pragma once

#include <string>
#include <string_view>

#include "geo/polygon.hpp"

namespace fa::io {

std::string to_wkt(geo::Vec2 point);
std::string to_wkt(const geo::Polygon& poly);
std::string to_wkt(const geo::MultiPolygon& mp);

// Parsers throw std::invalid_argument on malformed input.
geo::Vec2 parse_wkt_point(std::string_view wkt);
geo::Polygon parse_wkt_polygon(std::string_view wkt);
geo::MultiPolygon parse_wkt_multipolygon(std::string_view wkt);

}  // namespace fa::io

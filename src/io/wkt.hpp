// Well-Known Text geometry serialization (POINT, POLYGON, MULTIPOLYGON).
// GeoMAC distributes perimeters as shapefiles; WKT is the interchange form
// this library emits/ingests for perimeter records.
#pragma once

#include <string>
#include <string_view>

#include "fault/status.hpp"
#include "geo/polygon.hpp"

namespace fa::io {

std::string to_wkt(geo::Vec2 point);
std::string to_wkt(const geo::Polygon& poly);
std::string to_wkt(const geo::MultiPolygon& mp);

// Non-throwing parsers: the Status carries the byte offset of the first
// malformed token (code kTruncated when the input simply ran out).
fault::Result<geo::Vec2> try_parse_wkt_point(std::string_view wkt);
fault::Result<geo::Polygon> try_parse_wkt_polygon(std::string_view wkt);
fault::Result<geo::MultiPolygon> try_parse_wkt_multipolygon(
    std::string_view wkt);

// Thin throwing wrappers: fault::IoError (source "wkt") on malformed
// input, same Status the try_* forms return.
geo::Vec2 parse_wkt_point(std::string_view wkt);
geo::Polygon parse_wkt_polygon(std::string_view wkt);
geo::MultiPolygon parse_wkt_multipolygon(std::string_view wkt);

}  // namespace fa::io

// FCC Disaster Information Reporting System (DIRS) layer.
//
// DIRS (Section 3.2) is a voluntary system where providers self-report
// site status per county during an activation. The outage simulator
// produces ground truth; this layer turns it into the filings the FCC
// actually receives — per provider, per county, per day — including the
// voluntary-reporting gap (not every provider files every day), and
// aggregates them back the way the FCC's public summaries do.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cellnet/corpus.hpp"
#include "firesim/outage.hpp"
#include "synth/counties.hpp"
#include "synth/rng.hpp"

namespace fa::firesim {

// One provider's filing for one county on one day.
struct DirsFiling {
  int day_index = 0;
  cellnet::Provider provider{};
  int county = -1;               // CountyMap index
  std::size_t sites_served = 0;  // provider's sites in the county
  std::size_t sites_out = 0;
  std::size_t out_damage = 0;
  std::size_t out_power = 0;
  std::size_t out_transport = 0;
};

struct DirsActivation {
  std::vector<DirsFiling> filings;  // all days, all providers, all counties
  std::vector<std::string> day_labels;
  std::size_t counties_covered = 0;
  std::size_t providers_reporting = 0;

  // FCC-style daily roll-up across filings.
  std::vector<DayOutages> daily_summary() const;
  // Counties ranked by peak outage count.
  std::vector<std::pair<int, std::size_t>> worst_counties() const;
  // Per-provider outage totals (site-days).
  std::map<cellnet::Provider, std::size_t> per_provider_site_days() const;
};

struct DirsConfig {
  // Probability a provider files for a given county-day (DIRS is
  // voluntary; coverage was high but not complete in 2019).
  double filing_rate = 0.93;
};

// Runs the 2019 California activation end to end: outage simulation over
// the corpus' California sites, per-site cause attribution, then filing
// generation against `counties`.
DirsActivation run_dirs_activation(const cellnet::CellCorpus& corpus,
                                   const synth::WhpModel& whp,
                                   const synth::UsAtlas& atlas,
                                   const synth::CountyMap& counties,
                                   std::uint64_t seed,
                                   const OutageSimConfig& outage_config = {},
                                   const DirsConfig& dirs_config = {});

}  // namespace fa::firesim

// Wildfire season simulator.
//
// Stands in for the GeoMAC historical perimeter record: each season is
// grown on the synthetic WHP fuel surface by a stochastic cellular-
// automaton spread model, so perimeters have realistic shapes and the
// *partial* spatial correlation with WHP classes that the paper's
// Section 3.4 validation measures. Seasons are calibrated to the paper's
// Table 1 ignition counts and burned acreage; transceiver overlap counts
// are never fed in — they must emerge.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "geo/polygon.hpp"
#include "synth/firecalib.hpp"
#include "synth/hazard.hpp"
#include "synth/rng.hpp"
#include "synth/usatlas.hpp"

namespace fa::firesim {

struct FirePerimeter {
  std::uint32_t id = 0;
  std::string name;
  int year = 0;
  int start_day = 0;  // day of year
  int end_day = 0;
  geo::LonLat ignition;
  geo::MultiPolygon perimeter;  // lon/lat
  double acres = 0.0;
};

struct FireSeason {
  int year = 0;
  // Spatially-simulated large fires (>= FireSimConfig::min_sim_acres).
  // Small fires carry ~3% of burned area and essentially never contain
  // cell infrastructure; they are accounted for in the totals only.
  std::vector<FirePerimeter> fires;
  double simulated_acres = 0.0;
  int total_ignitions = 0;      // includes unsimulated small fires
  double total_acres = 0.0;     // calibration target (Table 1)
};

struct FireSimConfig {
  double min_sim_acres = 300.0;   // smallest spatially-simulated fire
  double max_fire_acres = 6e5;    // upper bound of the size distribution
  double size_alpha = 0.62;       // bounded-Pareto shape of fire sizes
  double local_cell_m = 270.0;    // spread-grid resolution
  int max_local_cells = 360;      // local grid dimension cap (cells)
  double wui_ignition_frac = 0.007; // share of fires igniting at city edges
  double simplify_tol_m = 135.0;  // perimeter simplification tolerance
};

class FireSimulator {
 public:
  FireSimulator(const synth::WhpModel& whp, const synth::UsAtlas& atlas,
                std::uint64_t seed);

  // Cheap seeded sibling sharing this simulator's prepared ignition
  // tables (the constructor's full-grid distance transform + CDF scan is
  // done once and reused). Each fork owns an independent RNG stream, so
  // ensemble members can run concurrently without sharing mutable state.
  FireSimulator fork(std::uint64_t seed) const;

  // One season calibrated to `target` (fires + acreage).
  FireSeason simulate_year(const synth::FireYearStats& target,
                           const FireSimConfig& config = {});

  // Grows a single fire from `ignition` toward `target_acres`; may stop
  // short when fuel runs out. Exposed for unit tests.
  FirePerimeter spread_fire(geo::LonLat ignition, double target_acres,
                            int year, std::uint32_t fire_id,
                            const FireSimConfig& config);

  // Draws an ignition point from the hazard-weighted distribution.
  geo::LonLat sample_ignition(const FireSimConfig& config);

  // Moves `p` to the nearest burnable fuel (searching outward); used to
  // anchor real named fires whose ignition points fall inside the
  // synthetic urban cores.
  geo::LonLat nudge_to_burnable(geo::LonLat p);

  // Named historical fire: nudged ignition + spread to the recorded size.
  FirePerimeter spread_named_fire(std::string name, geo::LonLat ignition,
                                  double acres, int year,
                                  std::uint32_t fire_id,
                                  const FireSimConfig& config = {});

  // Multi-day progression: the same spread, checkpointed into daily
  // cumulative perimeters (what GeoMAC's real-time collection records).
  // Daily growth follows a logistic profile — slow establishment,
  // wind-driven middle days, containment tail.
  struct FireProgression {
    FirePerimeter final_perimeter;
    std::vector<geo::MultiPolygon> daily;  // cumulative, one per day
    std::vector<double> daily_acres;       // cumulative burned area
  };
  FireProgression spread_fire_staged(geo::LonLat ignition,
                                     double target_acres, int days, int year,
                                     std::uint32_t fire_id,
                                     const FireSimConfig& config = {});

 private:
  // Cumulative hazard weights over WHP cells for ignition sampling.
  // Immutable after construction and shared across forks.
  struct IgnitionTables {
    std::vector<double> cdf;
    std::vector<std::uint32_t> cells;
  };

  FireSimulator(const synth::WhpModel& whp, const synth::UsAtlas& atlas,
                std::uint64_t seed,
                std::shared_ptr<const IgnitionTables> tables);

  const synth::WhpModel& whp_;
  const synth::UsAtlas& atlas_;
  synth::Rng rng_;
  std::shared_ptr<const IgnitionTables> tables_;
};

// Per-WHP-class relative fuel availability used by the spread model.
double fuel_factor(synth::WhpClass cls);

}  // namespace fa::firesim

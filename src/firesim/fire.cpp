#include "firesim/fire.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "geo/algorithms.hpp"
#include "geo/geodesy.hpp"
#include "obs/obs.hpp"
#include "raster/raster.hpp"
#include "raster/morphology.hpp"
#include "raster/regions.hpp"

namespace fa::firesim {

double fuel_factor(synth::WhpClass cls) {
  switch (cls) {
    case synth::WhpClass::kNonBurnable: return 0.03;  // ember jumps only
    case synth::WhpClass::kVeryLow: return 0.38;
    case synth::WhpClass::kLow: return 0.58;
    case synth::WhpClass::kModerate: return 0.78;
    case synth::WhpClass::kHigh: return 0.92;
    case synth::WhpClass::kVeryHigh: return 1.0;
  }
  return 0.0;
}

namespace {

// Relative ignition likelihood per WHP class (lightning + human starts
// concentrate where fuels are; urban cores effectively never ignite).
double ignition_weight(synth::WhpClass cls) {
  switch (cls) {
    case synth::WhpClass::kNonBurnable: return 0.0;
    case synth::WhpClass::kVeryLow: return 0.4;
    case synth::WhpClass::kLow: return 1.2;
    case synth::WhpClass::kModerate: return 4.0;
    case synth::WhpClass::kHigh: return 9.0;
    case synth::WhpClass::kVeryHigh: return 16.0;
  }
  return 0.0;
}

constexpr double kAcresPerCell270 = 18.01;  // 270 m x 270 m in acres

}  // namespace

FireSimulator::FireSimulator(const synth::WhpModel& whp,
                             const synth::UsAtlas& atlas, std::uint64_t seed)
    : whp_(whp), atlas_(atlas), rng_(seed ^ 0xF14E5EEDULL) {
  // Build the ignition CDF once over all burnable cells. Hazard class
  // sets the base weight; remoteness scales it down near metros, where
  // ignitions are suppressed quickly (most large fires start in open
  // wildland, which is also where cell infrastructure is sparsest).
  const auto& grid = whp_.grid();
  const raster::FloatRaster urban_dist =
      raster::distance_transform(whp_.urban_mask());
  auto tables = std::make_shared<IgnitionTables>();
  tables->cdf.reserve(grid.size() / 4);
  tables->cells.reserve(grid.size() / 4);
  double acc = 0.0;
  for (std::uint32_t i = 0; i < grid.data().size(); ++i) {
    double w = ignition_weight(static_cast<synth::WhpClass>(grid.data()[i]));
    if (w <= 0.0) continue;
    const double remoteness =
        std::clamp(static_cast<double>(urban_dist.data()[i]) / 60000.0,
                   0.03, 1.0);
    w *= remoteness;
    acc += w;
    tables->cdf.push_back(acc);
    tables->cells.push_back(i);
  }
  tables_ = std::move(tables);
}

FireSimulator::FireSimulator(const synth::WhpModel& whp,
                             const synth::UsAtlas& atlas, std::uint64_t seed,
                             std::shared_ptr<const IgnitionTables> tables)
    : whp_(whp), atlas_(atlas), rng_(seed ^ 0xF14E5EEDULL),
      tables_(std::move(tables)) {}

FireSimulator FireSimulator::fork(std::uint64_t seed) const {
  return FireSimulator(whp_, atlas_, seed, tables_);
}

geo::LonLat FireSimulator::sample_ignition(const FireSimConfig& config) {
  // Occasionally ignite at the wildland-urban interface of a fire-prone
  // metro — the SoCal pattern behind the paper's high-impact seasons.
  if (rng_.chance(config.wui_ignition_frac)) {
    const auto cities = atlas_.cities();
    for (int attempt = 0; attempt < 64; ++attempt) {
      const synth::CityInfo& city = cities[rng_.below(cities.size())];
      const int s = atlas_.state_index(city.state_abbr);
      if (s < 0 ||
          atlas_.states()[static_cast<std::size_t>(s)].fire_propensity < 0.55) {
        continue;
      }
      // Just outside the urban core.
      const double radius_m =
          (3.0 + 4.4 * std::sqrt(city.metro_population / 1e6)) * 1000.0;
      const geo::LonLat p =
          geo::destination(city.position, rng_.uniform(0.0, 360.0),
                           radius_m * rng_.uniform(1.6, 3.2));
      if (whp_.class_at(p) != synth::WhpClass::kNonBurnable) return p;
    }
  }
  // Hazard-weighted draw over burnable cells.
  const std::vector<double>& cdf = tables_->cdf;
  const double target = rng_.uniform() * cdf.back();
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), target);
  const std::size_t k =
      static_cast<std::size_t>(std::distance(cdf.begin(), it));
  const std::uint32_t cell = tables_->cells[k];
  const auto& geom = whp_.grid().geom();
  const int c = static_cast<int>(cell % static_cast<std::uint32_t>(geom.cols));
  const int r = static_cast<int>(cell / static_cast<std::uint32_t>(geom.cols));
  // Jitter within the cell so repeated draws do not collide exactly.
  const geo::Vec2 xy{geom.origin_x + (c + rng_.uniform()) * geom.cell_w,
                     geom.origin_y + (r + rng_.uniform()) * geom.cell_h};
  return whp_.projection().inverse(xy);
}

geo::LonLat FireSimulator::nudge_to_burnable(geo::LonLat p) {
  if (whp_.class_at(p) != synth::WhpClass::kNonBurnable) return p;
  for (double radius_m = 2000.0; radius_m < 80000.0; radius_m *= 1.35) {
    for (int k = 0; k < 10; ++k) {
      const geo::LonLat cand =
          geo::destination(p, rng_.uniform(0.0, 360.0), radius_m);
      if (whp_.class_at(cand) != synth::WhpClass::kNonBurnable) return cand;
    }
  }
  return p;
}

FirePerimeter FireSimulator::spread_named_fire(std::string name,
                                               geo::LonLat ignition,
                                               double acres, int year,
                                               std::uint32_t fire_id,
                                               const FireSimConfig& config) {
  FirePerimeter fire =
      spread_fire(nudge_to_burnable(ignition), acres, year, fire_id, config);
  fire.name = std::move(name);
  return fire;
}

FirePerimeter FireSimulator::spread_fire(geo::LonLat ignition,
                                         double target_acres, int year,
                                         std::uint32_t fire_id,
                                         const FireSimConfig& config) {
  FirePerimeter fire;
  fire.id = fire_id;
  fire.year = year;
  fire.ignition = ignition;
  fire.name = "SIM-" + std::to_string(year) + "-" + std::to_string(fire_id);

  const double cell_m = config.local_cell_m;
  const double acres_per_cell =
      kAcresPerCell270 * (cell_m / 270.0) * (cell_m / 270.0);
  const auto target_cells = static_cast<std::size_t>(
      std::max(1.0, target_acres / acres_per_cell));
  // Local grid sized to hold the fire with margin.
  const int radius_cells = static_cast<int>(
      std::ceil(std::sqrt(static_cast<double>(target_cells)) * 1.8)) + 4;
  const int n = std::min(config.max_local_cells, 2 * radius_cells + 1);

  raster::GridGeometry geom;
  geom.origin_x = -0.5 * n * cell_m;
  geom.origin_y = -0.5 * n * cell_m;
  geom.cell_w = cell_m;
  geom.cell_h = cell_m;
  geom.cols = n;
  geom.rows = n;
  raster::MaskRaster burned(geom, 0);

  const geo::LocalEquirect local(ignition);
  // Wind: one prevailing direction per fire, elongating the burn.
  const double wind_dir = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  const double wind_strength = rng_.uniform(0.35, 0.85);

  const auto fuel_at = [&](int c, int r) {
    const geo::Vec2 xy = geom.cell_center(c, r);
    const geo::LonLat ll = local.inverse(xy);
    return fuel_factor(whp_.class_at(ll));
  };

  // Stochastic frontier spread.
  std::deque<std::pair<int, int>> frontier;
  const int mid = n / 2;
  burned.at(mid, mid) = 1;
  frontier.push_back({mid, mid});
  std::size_t burned_cells = 1;

  constexpr int dc[] = {1, -1, 0, 0, 1, 1, -1, -1};
  constexpr int dr[] = {0, 0, 1, -1, 1, -1, 1, -1};
  const double diag_penalty[] = {1, 1, 1, 1, 0.707, 0.707, 0.707, 0.707};

  while (!frontier.empty() && burned_cells < target_cells) {
    // Random frontier pick keeps the shape irregular.
    const std::size_t pick = rng_.below(frontier.size());
    std::swap(frontier[pick], frontier.back());
    const auto [c, r] = frontier.back();
    frontier.pop_back();

    bool unburned_neighbor = false;
    for (int k = 0; k < 8; ++k) {
      const int nc = c + dc[k];
      const int nr = r + dr[k];
      if (!geom.in_bounds(nc, nr) || burned.at(nc, nr) != 0) continue;
      const double angle = std::atan2(static_cast<double>(dr[k]),
                                      static_cast<double>(dc[k]));
      const double wind =
          1.0 + wind_strength * std::cos(angle - wind_dir);
      const double p = 0.38 * fuel_at(nc, nr) * wind * diag_penalty[k];
      if (rng_.chance(std::min(0.95, p))) {
        burned.at(nc, nr) = 1;
        frontier.push_back({nc, nr});
        if (++burned_cells >= target_cells) break;
      } else {
        unburned_neighbor = true;
      }
    }
    // A cell that failed to spread gets only a limited number of further
    // chances (re-push with decaying probability); without this cap,
    // fires grind through non-burnable terrain instead of being
    // contained — the natural-containment behaviour Section 2.1 of the
    // paper describes.
    if (unburned_neighbor && rng_.chance(0.6)) frontier.push_back({c, r});
  }

  fire.acres = static_cast<double>(burned_cells) * acres_per_cell;

  // Perimeter extraction: largest burned region, simplified, to lon/lat.
  std::vector<geo::Polygon> regions = raster::extract_regions(burned);
  std::vector<geo::Polygon> parts;
  for (geo::Polygon& region : regions) {
    geo::Ring outer =
        geo::simplify_ring(region.outer(), config.simplify_tol_m);
    std::vector<geo::Vec2> ll_pts;
    ll_pts.reserve(outer.size());
    for (const geo::Vec2& v : outer.points()) {
      ll_pts.push_back(local.inverse(v).as_vec());
    }
    std::vector<geo::Ring> holes;
    for (const geo::Ring& hole : region.holes()) {
      const geo::Ring simp = geo::simplify_ring(hole, config.simplify_tol_m);
      std::vector<geo::Vec2> hole_pts;
      hole_pts.reserve(simp.size());
      for (const geo::Vec2& v : simp.points()) {
        hole_pts.push_back(local.inverse(v).as_vec());
      }
      holes.emplace_back(std::move(hole_pts));
    }
    parts.emplace_back(geo::Ring{std::move(ll_pts)}, std::move(holes));
  }
  fire.perimeter = geo::MultiPolygon{std::move(parts)};

  // Season timing: peak in late July; duration grows with size.
  fire.start_day = std::clamp(
      static_cast<int>(rng_.normal(210.0, 45.0)), 32, 340);
  const int duration =
      2 + static_cast<int>(std::pow(fire.acres, 0.33) * rng_.uniform(0.4, 1.2));
  fire.end_day = std::min(364, fire.start_day + duration);
  return fire;
}

namespace {

// Logistic daily-growth fractions: slow establishment, driven middle,
// containment tail; normalized to sum to 1 over `days`.
std::vector<double> growth_profile(int days) {
  std::vector<double> f(static_cast<std::size_t>(std::max(1, days)));
  double sum = 0.0;
  for (std::size_t d = 0; d < f.size(); ++d) {
    const double t = (static_cast<double>(d) + 0.5) / f.size();  // (0,1)
    f[d] = std::exp(-8.0 * (t - 0.45) * (t - 0.45));  // bell around day ~45%
    sum += f[d];
  }
  for (double& v : f) v /= sum;
  return f;
}

}  // namespace

FireSimulator::FireProgression FireSimulator::spread_fire_staged(
    geo::LonLat ignition, double target_acres, int days, int year,
    std::uint32_t fire_id, const FireSimConfig& config) {
  FireProgression out;
  const double cell_m = config.local_cell_m;
  const double acres_per_cell =
      kAcresPerCell270 * (cell_m / 270.0) * (cell_m / 270.0);
  const auto target_cells = static_cast<std::size_t>(
      std::max(1.0, target_acres / acres_per_cell));
  const int radius_cells = static_cast<int>(
      std::ceil(std::sqrt(static_cast<double>(target_cells)) * 1.8)) + 4;
  const int n = std::min(config.max_local_cells, 2 * radius_cells + 1);

  raster::GridGeometry geom;
  geom.origin_x = -0.5 * n * cell_m;
  geom.origin_y = -0.5 * n * cell_m;
  geom.cell_w = cell_m;
  geom.cell_h = cell_m;
  geom.cols = n;
  geom.rows = n;
  raster::MaskRaster burned(geom, 0);

  const geo::LocalEquirect local(ignition);
  const double wind_dir = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  const double wind_strength = rng_.uniform(0.35, 0.85);
  const auto fuel_at = [&](int c, int r) {
    return fuel_factor(whp_.class_at(local.inverse(geom.cell_center(c, r))));
  };

  std::deque<std::pair<int, int>> frontier;
  const int mid = n / 2;
  burned.at(mid, mid) = 1;
  frontier.push_back({mid, mid});
  std::size_t burned_cells = 1;

  constexpr int dc[] = {1, -1, 0, 0, 1, 1, -1, -1};
  constexpr int dr[] = {0, 0, 1, -1, 1, -1, 1, -1};
  const double diag_penalty[] = {1, 1, 1, 1, 0.707, 0.707, 0.707, 0.707};

  const std::vector<double> profile = growth_profile(days);
  const auto extract_lonlat = [&](const raster::MaskRaster& mask) {
    geo::MultiPolygon mp;
    for (geo::Polygon& region : raster::extract_regions(mask)) {
      geo::Ring outer =
          geo::simplify_ring(region.outer(), config.simplify_tol_m);
      std::vector<geo::Vec2> pts;
      pts.reserve(outer.size());
      for (const geo::Vec2& v : outer.points()) {
        pts.push_back(local.inverse(v).as_vec());
      }
      mp.push_back(geo::Polygon{geo::Ring{std::move(pts)}});
    }
    return mp;
  };

  std::size_t day_target = 0;
  for (int day = 0; day < days; ++day) {
    day_target += static_cast<std::size_t>(
        profile[static_cast<std::size_t>(day)] *
        static_cast<double>(target_cells));
    if (day == days - 1) day_target = target_cells;
    while (!frontier.empty() && burned_cells < day_target) {
      const std::size_t pick = rng_.below(frontier.size());
      std::swap(frontier[pick], frontier.back());
      const auto [c, r] = frontier.back();
      frontier.pop_back();
      bool unburned_neighbor = false;
      for (int k = 0; k < 8; ++k) {
        const int nc = c + dc[k];
        const int nr = r + dr[k];
        if (!geom.in_bounds(nc, nr) || burned.at(nc, nr) != 0) continue;
        const double angle = std::atan2(static_cast<double>(dr[k]),
                                        static_cast<double>(dc[k]));
        const double wind = 1.0 + wind_strength * std::cos(angle - wind_dir);
        const double p = 0.38 * fuel_at(nc, nr) * wind * diag_penalty[k];
        if (rng_.chance(std::min(0.95, p))) {
          burned.at(nc, nr) = 1;
          frontier.push_back({nc, nr});
          if (++burned_cells >= day_target) break;
        } else {
          unburned_neighbor = true;
        }
      }
      if (unburned_neighbor && rng_.chance(0.6)) frontier.push_back({c, r});
    }
    out.daily.push_back(extract_lonlat(burned));
    out.daily_acres.push_back(static_cast<double>(burned_cells) *
                              acres_per_cell);
  }

  out.final_perimeter.id = fire_id;
  out.final_perimeter.year = year;
  out.final_perimeter.ignition = ignition;
  out.final_perimeter.name =
      "SIM-" + std::to_string(year) + "-" + std::to_string(fire_id);
  out.final_perimeter.acres = out.daily_acres.back();
  out.final_perimeter.perimeter = out.daily.back();
  out.final_perimeter.start_day = 1;
  out.final_perimeter.end_day = days;
  return out;
}

FireSeason FireSimulator::simulate_year(const synth::FireYearStats& target,
                                        const FireSimConfig& config) {
  const obs::Span span("firesim.season");
  FireSeason season;
  season.year = target.year;
  season.total_ignitions = target.fires;
  season.total_acres = target.acres_millions * 1e6;

  // Large fires carry ~97% of burned area; draw sizes from a bounded
  // Pareto until the budget is spent.
  const double budget = season.total_acres * 0.97;
  std::uint32_t id = 0;
  // The expected fire count is a few hundred; the cap only guards
  // against pathological configurations (e.g. a fuel-free hazard grid).
  while (season.simulated_acres < budget && id < 20000) {
    const double want = rng_.pareto(config.min_sim_acres,
                                    config.max_fire_acres, config.size_alpha);
    const geo::LonLat ignition = sample_ignition(config);
    FirePerimeter fire =
        spread_fire(ignition, std::min(want, budget - season.simulated_acres),
                    target.year, id++, config);
    if (fire.acres <= 0.0 || fire.perimeter.empty()) continue;
    season.simulated_acres += fire.acres;
    season.fires.push_back(std::move(fire));
  }
  obs::count("firesim.ignitions", id);
  obs::count("firesim.fires", season.fires.size());
  return season;
}

}  // namespace fa::firesim

#include "firesim/outage.hpp"

#include <algorithm>
#include <cmath>

#include "geo/geodesy.hpp"
#include "geo/prepared.hpp"

namespace fa::firesim {

std::string_view outage_cause_name(OutageCause c) {
  switch (c) {
    case OutageCause::kNone: return "none";
    case OutageCause::kDamage: return "damage";
    case OutageCause::kPower: return "power";
    case OutageCause::kTransport: return "transport";
  }
  return "?";
}

int DirsReport::peak_day() const {
  int best = 0;
  std::size_t best_total = 0;
  for (const DayOutages& d : days) {
    if (d.total() > best_total) {
      best_total = d.total();
      best = d.day_index;
    }
  }
  return best;
}

OutageSimulator::OutageSimulator(const synth::WhpModel& whp,
                                 std::uint64_t seed)
    : whp_(whp), rng_(seed ^ 0x0D1A5BEEULL) {}

DirsReport OutageSimulator::simulate(
    const std::vector<cellnet::CellSite>& sites,
    const std::vector<FirePerimeter>& fires, const OutageSimConfig& config,
    const FeederPlan* plan, std::vector<std::vector<OutageCause>>* per_site) {
  DirsReport report;
  report.sites_monitored = sites.size();
  const int num_days = static_cast<int>(config.wind_severity.size());

  // --- Feeder assignment ---------------------------------------------------
  // With no external plan, sites are grouped onto feeders in index order
  // after a spatial sort, so feeder neighbourhoods are geographically
  // coherent. Each feeder carries a fixed de-energization risk weighted
  // by the hazard class around it: utilities shut off circuits running
  // through high-fire-threat terrain. A powergrid::GridModel plan
  // replaces all of this with real feeder topology.
  std::size_t feeders = 0;
  std::vector<double> feeder_risk;
  std::vector<std::uint32_t> feeder_of;
  std::vector<double> feeder_hardening;
  std::vector<std::uint8_t> feeder_exempt;
  if (plan != nullptr) {
    feeder_of = plan->feeder_of;
    feeder_risk = plan->risk;
    feeders = feeder_risk.size();
    feeder_hardening.assign(feeders, 1.0);
    feeder_exempt.assign(feeders, 0);
    for (std::size_t f = 0; f < feeders && f < plan->hardened.size(); ++f) {
      feeder_exempt[f] = plan->hardened[f];
    }
  } else {
    std::vector<std::uint32_t> order(sites.size());
    for (std::uint32_t i = 0; i < sites.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      const auto& pa = sites[a].position;
      const auto& pb = sites[b].position;
      // Morton-ish interleave on a coarse lattice keeps neighbours together.
      const auto qa = std::pair{static_cast<int>(pa.lon * 8), static_cast<int>(pa.lat * 8)};
      const auto qb = std::pair{static_cast<int>(pb.lon * 8), static_cast<int>(pb.lat * 8)};
      return qa != qb ? qa < qb : a < b;
    });

    feeders = (sites.size() + config.sites_per_feeder - 1) /
              std::max(1, config.sites_per_feeder);
    feeder_risk.assign(feeders, 0.0);
    feeder_of.assign(sites.size(), 0);
    for (std::size_t k = 0; k < order.size(); ++k) {
      const std::size_t f = k / config.sites_per_feeder;
      feeder_of[order[k]] = static_cast<std::uint32_t>(f);
      const synth::WhpClass cls = whp_.class_at(sites[order[k]].position);
      feeder_risk[f] = std::max(feeder_risk[f], fuel_factor(cls));
    }
    // Independent per-feeder susceptibility (some circuits are hardened).
    feeder_hardening.assign(feeders, 1.0);
    for (double& h : feeder_hardening) h = rng_.uniform(0.4, 1.0);
    feeder_exempt.assign(feeders, 0);
  }

  // --- Per-site state ------------------------------------------------------
  // remaining repair days when damaged; 0 = healthy.
  std::vector<double> damage_left(sites.size(), 0.0);
  std::vector<std::uint8_t> transport_out(sites.size(), 0);
  // IAB equipage is a fixed per-site property of the scenario.
  std::vector<std::uint8_t> has_iab(sites.size(), 0);
  for (std::size_t i = 0; i < sites.size(); ++i) {
    has_iab[i] = rng_.chance(config.iab_fraction) ? 1 : 0;
  }

  // Fire perimeters are static across the window, so site containment is
  // resolved once per fire with the batch kernel; the day loop keeps only
  // the active-window test. Same per-site bit as the scalar probe, and no
  // rng_ draw happens here, so the draw sequence below is unchanged.
  std::vector<double> site_x(sites.size());
  std::vector<double> site_y(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const geo::Vec2 p = sites[i].position.as_vec();
    site_x[i] = p.x;
    site_y[i] = p.y;
  }
  std::vector<std::vector<std::uint8_t>> fire_contains(fires.size());
  for (std::size_t f = 0; f < fires.size(); ++f) {
    fire_contains[f].resize(sites.size());
    const geo::PreparedMultiPolygon prepared(fires[f].perimeter);
    prepared.contains_batch(site_x, site_y, fire_contains[f]);
  }

  std::vector<std::uint8_t> feeder_off(feeders, 0);
  if (per_site != nullptr) {
    per_site->assign(static_cast<std::size_t>(num_days),
                     std::vector<OutageCause>(sites.size(), OutageCause::kNone));
  }

  for (int day = 0; day < num_days; ++day) {
    DayOutages out;
    out.day_index = day;
    out.label = day < static_cast<int>(config.day_labels.size())
                    ? config.day_labels[static_cast<std::size_t>(day)]
                    : "day " + std::to_string(day);
    const double severity = config.wind_severity[static_cast<std::size_t>(day)];

    // Feeder de-energization is persistent: once shut off, a circuit
    // stays dark until the wind event subsides and crews re-inspect the
    // line (the multi-day outages Section 3.2 describes).
    for (std::size_t f = 0; f < feeders; ++f) {
      if (feeder_off[f] == 0) {
        if (feeder_exempt[f] != 0 && severity < 0.9) continue;
        const double p = config.feeder_psps_base * severity * feeder_risk[f] *
                         feeder_hardening[f] * 2.0;
        if (rng_.chance(std::min(0.9, p))) feeder_off[f] = 1;
      } else if (severity < 0.45 && rng_.chance(0.55)) {
        feeder_off[f] = 0;  // restored after inspection
      }
    }

    const auto record = [&](std::size_t site, OutageCause cause) {
      if (per_site != nullptr) {
        (*per_site)[static_cast<std::size_t>(day)][site] = cause;
      }
    };
    for (std::size_t i = 0; i < sites.size(); ++i) {
      // Damage persists across days until repaired.
      if (damage_left[i] > 0.0) {
        damage_left[i] -= 1.0;
        ++out.damaged;
        record(i, OutageCause::kDamage);
        continue;
      }
      // New damage: site inside an active fire perimeter today.
      bool in_fire = false;
      for (std::size_t f = 0; f < fires.size(); ++f) {
        if (day >= fires[f].start_day && day <= fires[f].end_day &&
            fire_contains[f][i] != 0) {
          in_fire = true;
          break;
        }
      }
      if (in_fire && rng_.chance(config.damage_prob)) {
        damage_left[i] =
            rng_.uniform(config.repair_days_min, config.repair_days_max);
        ++out.damaged;
        record(i, OutageCause::kDamage);
        continue;
      }

      // Power: feeder off and battery cannot bridge a full day. A
      // per-site battery overlay only swaps the multiplier, never the
      // draw itself, so the RNG sequence of unrelated sites is unchanged.
      if (feeder_off[feeder_of[i]] != 0) {
        const double hours =
            (config.site_battery_hours != nullptr &&
             i < config.site_battery_hours->size())
                ? (*config.site_battery_hours)[i]
                : config.battery_hours;
        const double battery = hours * rng_.uniform(0.5, 1.5);
        if (battery < 24.0) {
          ++out.power;
          if (!in_fire) ++out.power_outside_fire;
          record(i, OutageCause::kPower);
          continue;
        }
      }

      // Backhaul: cuts appear with wind and linger a day or two. A
      // powered IAB site rides out a fiber cut on wireless backhaul.
      if (transport_out[i] != 0) {
        transport_out[i] = rng_.chance(0.5) ? 1 : 0;
        if (transport_out[i] != 0 && has_iab[i] == 0) {
          ++out.transport;
          record(i, OutageCause::kTransport);
          continue;
        }
      } else if (in_fire || rng_.chance(config.transport_base * severity)) {
        transport_out[i] = 1;
        if (has_iab[i] == 0) {
          ++out.transport;
          record(i, OutageCause::kTransport);
          continue;
        }
      }
    }
    report.days.push_back(std::move(out));
  }
  return report;
}

DirsReport simulate_california_2019(const cellnet::CellCorpus& corpus,
                                    const synth::WhpModel& whp,
                                    const synth::UsAtlas& atlas,
                                    std::uint64_t seed,
                                    const OutageSimConfig& config) {
  // Affected region: California (the DIRS activation covered 37 CA
  // counties; our corpus filter uses the whole state).
  const int ca = atlas.state_index("CA");
  std::vector<cellnet::Transceiver> ca_txr;
  for (const auto& t : corpus.transceivers()) {
    if (t.state == ca) ca_txr.push_back(t);
  }
  const cellnet::CellCorpus ca_corpus{std::move(ca_txr)};
  std::vector<cellnet::CellSite> sites = ca_corpus.infer_sites(120.0);

  // Kincade analog: 77,000 acres north of the Bay Area, burning the whole
  // window. Getty analog: 745 acres at the LA urban edge, days 3..7.
  FireSimulator fire_sim(whp, atlas, seed ^ 0x2019CA11ULL);
  FirePerimeter kincade = fire_sim.spread_named_fire(
      "Kincade (sim)", {-122.78, 38.75}, 77000.0, 2019, 0);
  kincade.start_day = 0;
  kincade.end_day = 7;
  FirePerimeter getty = fire_sim.spread_named_fire(
      "Getty (sim)", {-118.48, 34.09}, 745.0, 2019, 1);
  getty.start_day = 3;
  getty.end_day = 7;
  // The DIRS window also overlapped the Saddle Ridge and Tick fires at
  // the northern edge of Los Angeles (the same two fires that dominate
  // the paper's Section 3.4 validation gap).
  FirePerimeter saddle_ridge = fire_sim.spread_named_fire(
      "Saddle Ridge (sim)", {-118.49, 34.33}, 8800.0, 2019, 2);
  saddle_ridge.start_day = 0;
  saddle_ridge.end_day = 6;
  FirePerimeter tick = fire_sim.spread_named_fire(
      "Tick (sim)", {-118.53, 34.44}, 4600.0, 2019, 3);
  tick.start_day = 0;
  tick.end_day = 5;

  OutageSimulator sim(whp, seed);
  return sim.simulate(sites,
                      {std::move(kincade), std::move(getty),
                       std::move(saddle_ridge), std::move(tick)},
                      config);
}

}  // namespace fa::firesim

#include "firesim/dirs.hpp"

#include <algorithm>
#include <set>

#include "firesim/fire.hpp"

namespace fa::firesim {

std::vector<DayOutages> DirsActivation::daily_summary() const {
  std::map<int, DayOutages> by_day;
  for (const DirsFiling& filing : filings) {
    DayOutages& day = by_day[filing.day_index];
    day.day_index = filing.day_index;
    if (filing.day_index < static_cast<int>(day_labels.size())) {
      day.label = day_labels[static_cast<std::size_t>(filing.day_index)];
    }
    day.damaged += filing.out_damage;
    day.power += filing.out_power;
    day.transport += filing.out_transport;
  }
  std::vector<DayOutages> out;
  out.reserve(by_day.size());
  for (auto& [_, day] : by_day) out.push_back(std::move(day));
  return out;
}

std::vector<std::pair<int, std::size_t>> DirsActivation::worst_counties()
    const {
  std::map<int, std::size_t> peak;
  std::map<std::pair<int, int>, std::size_t> per_county_day;
  for (const DirsFiling& filing : filings) {
    per_county_day[{filing.county, filing.day_index}] += filing.sites_out;
  }
  for (const auto& [key, total] : per_county_day) {
    peak[key.first] = std::max(peak[key.first], total);
  }
  std::vector<std::pair<int, std::size_t>> out(peak.begin(), peak.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

std::map<cellnet::Provider, std::size_t>
DirsActivation::per_provider_site_days() const {
  std::map<cellnet::Provider, std::size_t> out;
  for (const DirsFiling& filing : filings) {
    out[filing.provider] += filing.sites_out;
  }
  return out;
}

DirsActivation run_dirs_activation(const cellnet::CellCorpus& corpus,
                                   const synth::WhpModel& whp,
                                   const synth::UsAtlas& atlas,
                                   const synth::CountyMap& counties,
                                   std::uint64_t seed,
                                   const OutageSimConfig& outage_config,
                                   const DirsConfig& dirs_config) {
  DirsActivation activation;
  activation.day_labels = outage_config.day_labels;

  // California fleet with densified ids so sites can look attributes up.
  const int ca = atlas.state_index("CA");
  std::vector<cellnet::Transceiver> ca_txr;
  for (const auto& t : corpus.transceivers()) {
    if (t.state != ca) continue;
    cellnet::Transceiver copy = t;
    copy.id = static_cast<std::uint32_t>(ca_txr.size());
    ca_txr.push_back(copy);
  }
  const cellnet::CellCorpus ca_corpus{ca_txr};
  const std::vector<cellnet::CellSite> sites = ca_corpus.infer_sites(120.0);

  // Per-site provider (the first radio's tenant) and county.
  const cellnet::ProviderRegistry registry;
  std::vector<cellnet::Provider> provider_of(sites.size());
  std::vector<int> county_of(sites.size(), -1);
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const cellnet::Transceiver& t = ca_txr[sites[i].first_transceiver];
    provider_of[i] = registry.resolve(t.mcc, t.mnc);
    county_of[i] = counties.county_of(sites[i].position);
  }

  // Same four named 2019 fires as the case study.
  FireSimulator fire_sim(whp, atlas, seed ^ 0x2019CA11ULL);
  FirePerimeter kincade = fire_sim.spread_named_fire(
      "Kincade (sim)", {-122.78, 38.75}, 77000.0, 2019, 0);
  kincade.start_day = 0;
  kincade.end_day = 7;
  FirePerimeter saddle = fire_sim.spread_named_fire(
      "Saddle Ridge (sim)", {-118.49, 34.33}, 8800.0, 2019, 1);
  saddle.start_day = 0;
  saddle.end_day = 6;

  OutageSimulator sim(whp, seed);
  std::vector<std::vector<OutageCause>> per_site;
  sim.simulate(sites, {std::move(kincade), std::move(saddle)}, outage_config,
               nullptr, &per_site);

  // Filing generation: provider x county x day, with the voluntary gap.
  synth::Rng filing_rng(seed ^ 0xD165F111ULL);
  std::map<std::pair<int, int>, std::vector<std::size_t>> group_sites;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (county_of[i] < 0) continue;
    group_sites[{static_cast<int>(provider_of[i]), county_of[i]}].push_back(i);
  }
  std::set<int> counties_seen;
  std::set<int> providers_seen;
  for (std::size_t day = 0; day < per_site.size(); ++day) {
    for (const auto& [key, members] : group_sites) {
      if (!filing_rng.chance(dirs_config.filing_rate)) continue;  // no filing
      DirsFiling filing;
      filing.day_index = static_cast<int>(day);
      filing.provider = static_cast<cellnet::Provider>(key.first);
      filing.county = key.second;
      filing.sites_served = members.size();
      for (const std::size_t site : members) {
        switch (per_site[day][site]) {
          case OutageCause::kDamage: ++filing.out_damage; break;
          case OutageCause::kPower: ++filing.out_power; break;
          case OutageCause::kTransport: ++filing.out_transport; break;
          case OutageCause::kNone: continue;
        }
        ++filing.sites_out;
      }
      counties_seen.insert(filing.county);
      providers_seen.insert(key.first);
      activation.filings.push_back(filing);
    }
  }
  activation.counties_covered = counties_seen.size();
  activation.providers_reporting = providers_seen.size();
  return activation;
}

}  // namespace fa::firesim

// Wind-event generator: multi-day offshore-wind episodes (Santa Ana /
// Diablo pattern) that drive both PSPS decisions and fire blow-ups. The
// 2019 case study hard-codes the observed Oct 25 - Nov 1 curve; this
// module generates statistically similar episodes for drills, ablations
// and multi-year outage studies.
#pragma once

#include <vector>

#include "synth/rng.hpp"

namespace fa::firesim {

struct WindEvent {
  int start_day = 0;                  // day-of-season index
  std::vector<double> severity;       // daily 0..1, one per event day
  double peak() const;
  int duration() const { return static_cast<int>(severity.size()); }
};

struct WindSeasonConfig {
  int season_days = 120;        // fall wind season length
  double events_per_season = 3.5;  // Poisson mean
  int min_duration = 3;
  int max_duration = 9;
  double peak_min = 0.45;
  double peak_max = 1.0;
};

// All wind events of one season, chronological, non-overlapping.
std::vector<WindEvent> generate_wind_season(std::uint64_t seed,
                                            const WindSeasonConfig& config = {});

// Severity per season day (0 outside events) — the daily forcing series.
std::vector<double> wind_severity_series(const std::vector<WindEvent>& events,
                                         int season_days);

}  // namespace fa::firesim

#include "firesim/wind.hpp"

#include <algorithm>
#include <cmath>

namespace fa::firesim {

double WindEvent::peak() const {
  double p = 0.0;
  for (const double s : severity) p = std::max(p, s);
  return p;
}

std::vector<WindEvent> generate_wind_season(std::uint64_t seed,
                                            const WindSeasonConfig& config) {
  synth::Rng rng(seed ^ 0x51A7AA11ULL);
  std::vector<WindEvent> events;
  const auto count = rng.poisson(config.events_per_season);
  int cursor = 0;
  for (std::uint64_t e = 0; e < count; ++e) {
    WindEvent event;
    const int duration = rng.range(config.min_duration, config.max_duration);
    // Gap before this event; bail when the season is full.
    cursor += rng.range(2, std::max(3, config.season_days / 4));
    if (cursor + duration >= config.season_days) break;
    event.start_day = cursor;
    const double peak = rng.uniform(config.peak_min, config.peak_max);
    // Asymmetric ramp: fast onset (offshore flow arrives abruptly),
    // slower decay. Peak lands in the first half of the event.
    const int peak_day = std::max(1, duration / 3);
    event.severity.resize(static_cast<std::size_t>(duration));
    for (int d = 0; d < duration; ++d) {
      double s;
      if (d <= peak_day) {
        s = peak * (0.3 + 0.7 * static_cast<double>(d) / peak_day);
      } else {
        const double t = static_cast<double>(d - peak_day) /
                         std::max(1, duration - 1 - peak_day);
        s = peak * (1.0 - 0.85 * t);
      }
      // Day-to-day gustiness.
      event.severity[static_cast<std::size_t>(d)] =
          std::clamp(s * rng.uniform(0.85, 1.15), 0.05, 1.0);
    }
    cursor += duration;
    events.push_back(std::move(event));
  }
  return events;
}

std::vector<double> wind_severity_series(const std::vector<WindEvent>& events,
                                         int season_days) {
  std::vector<double> series(static_cast<std::size_t>(season_days), 0.0);
  for (const WindEvent& event : events) {
    for (int d = 0; d < event.duration(); ++d) {
      const int day = event.start_day + d;
      if (day >= 0 && day < season_days) {
        series[static_cast<std::size_t>(day)] =
            std::max(series[static_cast<std::size_t>(day)],
                     event.severity[static_cast<std::size_t>(d)]);
      }
    }
  }
  return series;
}

}  // namespace fa::firesim

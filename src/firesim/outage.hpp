// Cell-site outage simulator for wildfire / PSPS events.
//
// Stands in for the FCC DIRS reports the paper's Section 3.2 case study
// is built on: cell sites in the affected region sit on power feeders;
// a wind-driven Public Safety Power Shutoff de-energizes feeders day by
// day; batteries bridge only hours; fires damage the few sites inside
// their perimeters and cut backhaul nearby. The simulator emits the
// DIRS-style daily breakdown by outage cause (Figure 5).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "cellnet/corpus.hpp"
#include "firesim/fire.hpp"
#include "synth/hazard.hpp"
#include "synth/rng.hpp"

namespace fa::firesim {

enum class OutageCause : std::uint8_t {
  kNone = 0,
  kDamage = 1,     // equipment destroyed or damaged (FCC category 1)
  kPower = 2,      // commercial power lost, batteries exhausted (cat. 2)
  kTransport = 3,  // backhaul fiber/microwave lost (category 3)
};

std::string_view outage_cause_name(OutageCause c);

struct DayOutages {
  int day_index = 0;            // 0 = first reporting day
  std::string label;            // e.g. "Oct 25"
  std::size_t damaged = 0;
  std::size_t power = 0;
  std::size_t transport = 0;
  // Of the power outages, how many hit sites *outside* every active fire
  // perimeter — the paper's §3.8 observation that power disruption
  // reaches far beyond the burn itself.
  std::size_t power_outside_fire = 0;
  std::size_t total() const { return damaged + power + transport; }
};

struct DirsReport {
  std::vector<DayOutages> days;
  std::size_t sites_monitored = 0;
  // Day index with the largest total outage count.
  int peak_day() const;
};

struct OutageSimConfig {
  // Daily wind-event severity, 0..1; defaults trace the Oct 25 - Nov 1
  // 2019 PG&E event with its Oct 28 peak.
  std::vector<double> wind_severity{0.35, 0.65, 0.90, 1.00,
                                    0.42, 0.30, 0.18, 0.10};
  std::vector<std::string> day_labels{"Oct 25", "Oct 26", "Oct 27", "Oct 28",
                                      "Oct 29", "Oct 30", "Oct 31", "Nov 1"};
  int sites_per_feeder = 12;        // feeder granularity of the PSPS
  double battery_hours = 6.0;       // typical on-site backup (Section 3.2)
  double feeder_psps_base = 0.055;  // P(feeder off | severity 1, risk 1)
  double transport_base = 0.006;    // per-day backhaul-cut probability
  double damage_prob = 0.45;        // P(damage | inside active perimeter)
  double repair_days_min = 4.0;     // damaged-site repair time range
  double repair_days_max = 18.0;
  // Section 3.5 forward-looking extension: share of sites equipped with
  // 5G Integrated Access Backhaul. An IAB site that still has power can
  // fall back to wireless backhaul when its fiber is cut, avoiding a
  // transport outage.
  double iab_fraction = 0.0;
  // Optional per-site backup-battery overlay (indexed like `sites`); a
  // site beyond the vector's length falls back to `battery_hours`. Lets
  // hardening scenarios upgrade individual sites (e.g. 48 h generators)
  // without copying the whole config per member. Must outlive simulate().
  const std::vector<double>* site_battery_hours = nullptr;
};

// Precomputed feeder topology (e.g. from powergrid::GridModel). When
// supplied, the simulator uses these assignments and risk scores instead
// of its built-in lattice bucketing.
struct FeederPlan {
  std::vector<std::uint32_t> feeder_of;  // per site: feeder index
  std::vector<double> risk;              // per feeder: exposure in [0,1]
  std::vector<std::uint8_t> hardened;    // per feeder: PSPS-exempt <0.9 wind
};

class OutageSimulator {
 public:
  OutageSimulator(const synth::WhpModel& whp, std::uint64_t seed);

  // Simulates the PSPS window over `sites` (already filtered to the
  // affected region). `fires` are event-concurrent perimeters with
  // start/end days indexed like config.wind_severity (day 0 = window
  // start; use FirePerimeter::start_day/end_day as window-relative).
  // `plan`, when non-null, supplies the feeder topology. `per_site`,
  // when non-null, receives the full day x site cause matrix
  // ((*per_site)[day][site], kNone when the site is up).
  DirsReport simulate(const std::vector<cellnet::CellSite>& sites,
                      const std::vector<FirePerimeter>& fires,
                      const OutageSimConfig& config = {},
                      const FeederPlan* plan = nullptr,
                      std::vector<std::vector<OutageCause>>* per_site = nullptr);

 private:
  const synth::WhpModel& whp_;
  synth::Rng rng_;
};

// Convenience: the 2019 California event of Section 3.2 — builds the
// affected-region site list from `corpus` (California sites), a
// Kincade-like fire north of the Bay Area and a Getty-like fire in Los
// Angeles, then runs the simulator.
DirsReport simulate_california_2019(const cellnet::CellCorpus& corpus,
                                    const synth::WhpModel& whp,
                                    const synth::UsAtlas& atlas,
                                    std::uint64_t seed,
                                    const OutageSimConfig& config = {});

}  // namespace fa::firesim

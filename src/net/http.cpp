#include "net/http.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <utility>
#include <vector>

#include "serve/server.hpp"
#include "synth/hazard.hpp"

namespace fa::net {

namespace {

constexpr std::string_view kHttpSource = "net.http";

fault::Status http_err(int http_status, std::string message) {
  // The HTTP status rides in `offset` so the connection handler can
  // answer with the right code without re-deriving it.
  return fault::Status::error(fault::ErrCode::kParse,
                              static_cast<std::uint64_t>(http_status),
                              std::string(kHttpSource), std::move(message));
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// %XX and '+' decoding; a malformed escape passes through literally
// (it can only make a parameter fail its numeric parse later).
std::string percent_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size() &&
               hex_digit(s[i + 1]) >= 0 && hex_digit(s[i + 2]) >= 0) {
      out.push_back(static_cast<char>(hex_digit(s[i + 1]) * 16 +
                                      hex_digit(s[i + 2])));
      i += 2;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

// Whole-token double parse; nullopt when the token is empty or has
// trailing garbage.
std::optional<double> parse_double(std::string_view token) {
  if (token.empty()) return std::nullopt;
  const std::string s(token);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return std::nullopt;
  return v;
}

// Digits only: strtoul would accept leading whitespace and '+'/'-'
// signs, so Content-Length values like "+5" or " 5" (or negatives that
// wrap) would slip through as valid.
std::optional<std::uint32_t> parse_u32(std::string_view token) {
  if (token.empty() || token.size() > 10) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (v > 0xFFFFFFFFull) return std::nullopt;
  return static_cast<std::uint32_t>(v);
}

// Same digits-only discipline as parse_u32, for 64-bit ensemble seeds.
std::optional<std::uint64_t> parse_u64(std::string_view token) {
  if (token.empty() || token.size() > 20) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t next = v * 10 + static_cast<std::uint64_t>(c - '0');
    if (next / 10 != v) return std::nullopt;  // overflow
    v = next;
  }
  return v;
}

std::string_view reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

HttpRoute bad_request(std::string detail) {
  HttpRoute route;
  route.kind = HttpRoute::Kind::kBadRequest;
  route.error = std::move(detail);
  return route;
}

}  // namespace

void HttpAssembler::feed(std::string_view bytes) {
  if (!status_.ok()) return;
  buf_.append(bytes);
}

fault::Result<std::optional<HttpRequest>> HttpAssembler::next() {
  if (!status_.ok()) return status_;
  const std::size_t header_end = buf_.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    if (buf_.size() > kMaxHttpHeaderBytes) {
      status_ = http_err(431, "header block exceeds cap");
      return status_;
    }
    return std::optional<HttpRequest>{};
  }
  if (header_end > kMaxHttpHeaderBytes) {
    status_ = http_err(431, "header block exceeds cap");
    return status_;
  }

  const std::string_view head =
      std::string_view(buf_).substr(0, header_end);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);

  // METHOD SP target SP HTTP/1.x
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    status_ = http_err(400, "malformed request line");
    return status_;
  }
  const std::string_view version = request_line.substr(sp2 + 1);
  if (!version.starts_with("HTTP/1.")) {
    status_ = http_err(400, "unsupported protocol version");
    return status_;
  }

  HttpRequest req;
  req.method = to_upper(request_line.substr(0, sp1));
  const std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  req.keep_alive = version != "HTTP/1.0";

  // Headers: only Content-Length and Connection are consulted.
  std::size_t content_length = 0;
  std::string_view rest =
      line_end == std::string_view::npos ? std::string_view{}
                                         : head.substr(line_end + 2);
  while (!rest.empty()) {
    const std::size_t eol = rest.find("\r\n");
    const std::string_view line =
        eol == std::string_view::npos ? rest : rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view{}
                                         : rest.substr(eol + 2);
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string name = to_lower(line.substr(0, colon));
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    if (name == "content-length") {
      const std::optional<std::uint32_t> n = parse_u32(value);
      if (!n) {
        status_ = http_err(400, "unparseable Content-Length");
        return status_;
      }
      if (*n > kMaxHttpBodyBytes) {
        status_ = http_err(413, "body exceeds cap");
        return status_;
      }
      content_length = *n;
    } else if (name == "connection") {
      const std::string v = to_lower(value);
      if (v == "close") req.keep_alive = false;
      if (v == "keep-alive") req.keep_alive = true;
    }
  }

  const std::size_t total = header_end + 4 + content_length;
  if (buf_.size() < total) return std::optional<HttpRequest>{};
  req.body = buf_.substr(header_end + 4, content_length);

  // Split target into path + query params.
  const std::size_t qmark = target.find('?');
  req.path = percent_decode(target.substr(0, qmark));
  if (qmark != std::string_view::npos) {
    std::string_view query = target.substr(qmark + 1);
    while (!query.empty()) {
      const std::size_t amp = query.find('&');
      const std::string_view pair =
          amp == std::string_view::npos ? query : query.substr(0, amp);
      query = amp == std::string_view::npos ? std::string_view{}
                                            : query.substr(amp + 1);
      const std::size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        if (!pair.empty()) req.params[percent_decode(pair)] = "";
      } else {
        req.params[percent_decode(pair.substr(0, eq))] =
            percent_decode(pair.substr(eq + 1));
      }
    }
  }

  buf_.erase(0, total);
  return std::optional<HttpRequest>{std::move(req)};
}

std::string_view provider_token(cellnet::Provider p) {
  switch (p) {
    case cellnet::Provider::kAtt: return "att";
    case cellnet::Provider::kTMobile: return "tmobile";
    case cellnet::Provider::kSprint: return "sprint";
    case cellnet::Provider::kVerizon: return "verizon";
    case cellnet::Provider::kRegional: return "regional";
  }
  return "unknown";
}

std::optional<cellnet::Provider> provider_from_token(std::string_view token) {
  for (int i = 0; i < cellnet::kNumProviders; ++i) {
    const cellnet::Provider p = static_cast<cellnet::Provider>(i);
    if (token == provider_token(p)) return p;
  }
  return std::nullopt;
}

HttpRoute route_http(const HttpRequest& req) {
  HttpRoute route;
  if (req.method == "GET") {
    if (req.path == "/health") {
      route.kind = HttpRoute::Kind::kHealth;
      return route;
    }
    if (req.path == "/scenario/camp-fire-2018") {
      route.kind = HttpRoute::Kind::kScenario;
      return route;
    }
    if (req.path == "/fires") {
      const auto lon = req.params.count("lon")
                           ? parse_double(req.params.at("lon"))
                           : std::nullopt;
      const auto lat = req.params.count("lat")
                           ? parse_double(req.params.at("lat"))
                           : std::nullopt;
      if (!lon || !lat) return bad_request("lon and lat are required");
      serve::TopKSitesQuery q;
      q.center = {*lon, *lat};
      if (req.params.count("radius_m")) {
        const auto radius = parse_double(req.params.at("radius_m"));
        if (!radius || *radius < 0.0) return bad_request("bad radius_m");
        q.radius_m = *radius;
      }
      if (req.params.count("k")) {
        const auto k = parse_u32(req.params.at("k"));
        if (!k || *k > serve::wire::kMaxTopK) {
          return bad_request("k must be an integer <= " +
                             std::to_string(serve::wire::kMaxTopK));
        }
        q.k = *k;
      }
      route.kind = HttpRoute::Kind::kQuery;
      route.request = q;
      return route;
    }
    if (req.path == "/assets") {
      if (!req.params.count("bbox")) {
        return bad_request("bbox=min_lon,min_lat,max_lon,max_lat required");
      }
      std::string_view s = req.params.at("bbox");
      double v[4];
      for (int i = 0; i < 4; ++i) {
        const std::size_t comma = s.find(',');
        const std::string_view token =
            i < 3 ? s.substr(0, comma) : s;
        if (i < 3 && comma == std::string_view::npos) {
          return bad_request("bbox needs four comma-separated numbers");
        }
        const std::optional<double> parsed = parse_double(token);
        if (!parsed) return bad_request("unparseable bbox coordinate");
        v[i] = *parsed;
        if (i < 3) s = s.substr(comma + 1);
      }
      serve::BBoxAggregateQuery q;
      q.bbox = {v[0], v[1], v[2], v[3]};
      route.kind = HttpRoute::Kind::kQuery;
      route.request = q;
      return route;
    }
    if (req.path == "/ensemble/summary" || req.path == "/ensemble/fragile") {
      std::uint32_t members = 64;
      std::uint64_t seed = 7;
      if (req.params.count("members")) {
        const auto m = parse_u32(req.params.at("members"));
        if (!m || *m == 0 || *m > serve::wire::kMaxEnsembleMembers) {
          return bad_request(
              "members must be an integer in [1, " +
              std::to_string(serve::wire::kMaxEnsembleMembers) + "]");
        }
        members = *m;
      }
      if (req.params.count("seed")) {
        const auto s = parse_u64(req.params.at("seed"));
        if (!s) return bad_request("seed must be a non-negative integer");
        seed = *s;
      }
      route.kind = HttpRoute::Kind::kQuery;
      if (req.path == "/ensemble/summary") {
        route.request = serve::EnsembleSummaryQuery{members, seed};
        return route;
      }
      serve::TopKFragileSitesQuery q;
      q.members = members;
      q.seed = seed;
      if (req.params.count("k")) {
        const auto k = parse_u32(req.params.at("k"));
        if (!k || *k > serve::wire::kMaxTopK) {
          return bad_request("k must be an integer <= " +
                             std::to_string(serve::wire::kMaxTopK));
        }
        q.k = *k;
      }
      route.request = q;
      return route;
    }
    if (req.path.starts_with("/providers/")) {
      const std::optional<cellnet::Provider> p =
          provider_from_token(to_lower(req.path.substr(11)));
      if (!p) return bad_request("unknown provider");
      route.kind = HttpRoute::Kind::kQuery;
      route.request = serve::ProviderExposureQuery{*p};
      return route;
    }
    route.kind = HttpRoute::Kind::kNotFound;
    return route;
  }
  if (req.method == "POST") {
    if (req.path == "/risk") {
      const fault::Result<io::JsonValue> parsed =
          io::try_parse_json(req.body);
      if (!parsed.ok()) {
        return bad_request("unparseable JSON body: " +
                           parsed.status().message);
      }
      const io::JsonValue& doc = parsed.value();
      if (!doc.is_object() || !doc.has("lon") || !doc.has("lat") ||
          !doc.at("lon").is_number() || !doc.at("lat").is_number()) {
        return bad_request("body must be {\"lon\":..,\"lat\":..}");
      }
      serve::PointRiskQuery q;
      q.point = {doc.at("lon").as_number(), doc.at("lat").as_number()};
      if (doc.has("neighborhood_m")) {
        if (!doc.at("neighborhood_m").is_number()) {
          return bad_request("neighborhood_m must be a number");
        }
        q.neighborhood_m = doc.at("neighborhood_m").as_number();
      }
      route.kind = HttpRoute::Kind::kQuery;
      route.request = q;
      return route;
    }
    route.kind = HttpRoute::Kind::kNotFound;
    return route;
  }
  return bad_request("unsupported method " + req.method);
}

io::JsonValue response_json(const serve::Response& response) {
  return std::visit(
      [](const auto& r) -> io::JsonValue {
        using R = std::decay_t<decltype(r)>;
        io::JsonObject o;
        o["epoch"] = static_cast<std::size_t>(r.epoch);
        if constexpr (std::is_same_v<R, serve::PointRiskResponse>) {
          o["whp"] = std::string(synth::whp_class_name(r.whp));
          o["whp_class"] = static_cast<int>(r.whp);
          o["at_risk"] = r.at_risk;
          o["urban"] = r.urban;
          o["roadside"] = r.roadside;
          o["state"] = r.state;
          o["county"] = r.county;
          o["nearby_txr"] = static_cast<std::size_t>(r.nearby_txr);
          o["nearby_at_risk"] = static_cast<std::size_t>(r.nearby_at_risk);
        } else if constexpr (std::is_same_v<R,
                                            serve::BBoxAggregateResponse>) {
          o["transceivers"] = static_cast<std::size_t>(r.transceivers);
          io::JsonArray by_class;
          for (const std::uint64_t c : r.by_class) {
            by_class.push_back(static_cast<std::size_t>(c));
          }
          o["by_class"] = io::JsonValue{std::move(by_class)};
          o["at_risk"] = static_cast<std::size_t>(r.at_risk);
          io::JsonObject by_provider;
          for (int i = 0; i < cellnet::kNumProviders; ++i) {
            by_provider[std::string(
                provider_token(static_cast<cellnet::Provider>(i)))] =
                static_cast<std::size_t>(r.by_provider[static_cast<std::size_t>(i)]);
          }
          o["by_provider"] = io::JsonValue{std::move(by_provider)};
        } else if constexpr (std::is_same_v<
                                 R, serve::ProviderExposureResponse>) {
          o["provider"] = std::string(provider_token(r.provider));
          o["fleet"] = static_cast<std::size_t>(r.fleet);
          o["moderate"] = static_cast<std::size_t>(r.moderate);
          o["high"] = static_cast<std::size_t>(r.high);
          o["very_high"] = static_cast<std::size_t>(r.very_high);
          o["at_risk"] = static_cast<std::size_t>(r.at_risk());
        } else if constexpr (std::is_same_v<R, serve::TopKSitesResponse>) {
          o["candidates"] = static_cast<std::size_t>(r.candidates);
          io::JsonArray sites;
          for (const serve::RankedSite& site : r.sites) {
            io::JsonObject s;
            s["txr_id"] = static_cast<std::size_t>(site.txr_id);
            s["lon"] = site.position.lon;
            s["lat"] = site.position.lat;
            s["whp"] = std::string(synth::whp_class_name(site.whp));
            s["distance_m"] = site.distance_m;
            sites.push_back(io::JsonValue{std::move(s)});
          }
          o["sites"] = io::JsonValue{std::move(sites)};
        } else if constexpr (std::is_same_v<R,
                                            serve::EnsembleSummaryResponse>) {
          o["members"] = static_cast<std::size_t>(r.members);
          o["quarantined"] = static_cast<std::size_t>(r.quarantined);
          o["sites"] = static_cast<std::size_t>(r.sites);
          o["fires"] = static_cast<std::size_t>(r.fires);
          o["expected_user_hours"] = r.expected_user_hours;
          o["expected_power_user_hours"] = r.expected_power_user_hours;
          o["expected_pop_exposure"] = r.expected_pop_exposure;
          o["expected_overlap_user_hours"] = r.expected_overlap_user_hours;
          io::JsonArray curve;
          for (const serve::ExceedanceRow& row : r.exceedance) {
            io::JsonObject p;
            p["user_hours"] = row.user_hours;
            p["probability"] = row.probability;
            curve.push_back(io::JsonValue{std::move(p)});
          }
          o["exceedance"] = io::JsonValue{std::move(curve)};
        } else {
          static_assert(
              std::is_same_v<R, serve::TopKFragileSitesResponse>);
          o["members"] = static_cast<std::size_t>(r.members);
          o["sites"] = static_cast<std::size_t>(r.sites);
          io::JsonArray ranked;
          for (const serve::FragileSiteRow& row : r.sites_ranked) {
            io::JsonObject s;
            s["site"] = static_cast<std::size_t>(row.site);
            s["lon"] = row.position.lon;
            s["lat"] = row.position.lat;
            s["users"] = row.users;
            s["expected_user_hours"] = row.expected_user_hours;
            s["power_share"] = row.power_share;
            s["outage_probability"] = row.outage_probability;
            ranked.push_back(io::JsonValue{std::move(s)});
          }
          o["sites_ranked"] = io::JsonValue{std::move(ranked)};
        }
        return io::JsonValue{std::move(o)};
      },
      response);
}

std::string http_response(int status, std::string_view json_body,
                          bool keep_alive) {
  std::string out;
  out.reserve(128 + json_body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += reason_phrase(status);
  out += "\r\nContent-Type: application/json\r\nContent-Length: ";
  out += std::to_string(json_body.size());
  out += keep_alive ? "\r\nConnection: keep-alive\r\n\r\n"
                    : "\r\nConnection: close\r\n\r\n";
  out += json_body;
  return out;
}

int http_status_for(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest: return 400;
    case ErrorCode::kTooLarge: return 413;
    case ErrorCode::kRateLimited: return 429;
    case ErrorCode::kBusy: return 503;
    case ErrorCode::kShuttingDown: return 503;
  }
  return 500;
}

std::string http_error_body(ErrorCode code, std::string_view message) {
  io::JsonObject o;
  o["error"] = std::string(error_code_name(code));
  o["detail"] = std::string(message);
  return io::to_json(io::JsonValue{std::move(o)});
}

io::JsonValue scenario_camp_fire(serve::Server& server) {
  const geo::LonLat ignition{kCampFireLon, kCampFireLat};

  serve::PointRiskQuery point;
  point.point = ignition;
  point.neighborhood_m = 30e3;

  serve::TopKSitesQuery top;
  top.center = ignition;
  top.radius_m = 60e3;
  top.k = 25;

  io::JsonObject o;
  o["scenario"] = "camp-fire-2018";
  o["name"] = "Camp Fire";
  o["year"] = 2018;
  io::JsonObject ign;
  ign["lon"] = ignition.lon;
  ign["lat"] = ignition.lat;
  o["ignition"] = io::JsonValue{std::move(ign)};
  o["point_risk"] = response_json(server.handle(serve::Request{point}));
  o["top_sites"] = response_json(server.handle(serve::Request{top}));
  io::JsonArray providers;
  for (int i = 0; i < cellnet::kNumProviders; ++i) {
    providers.push_back(response_json(server.handle(serve::Request{
        serve::ProviderExposureQuery{static_cast<cellnet::Provider>(i)}})));
  }
  o["providers"] = io::JsonValue{std::move(providers)};
  return io::JsonValue{std::move(o)};
}

}  // namespace fa::net

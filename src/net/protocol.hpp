// fa::net wire framing over the serve canonical payloads.
//
// The binary protocol is length-prefixed frames on a plain TCP stream:
//
//   frame := u32 LE payload length N (1 <= N <= kMaxFramePayload)
//            N payload bytes
//
// where the payload is exactly one serve::wire canonical payload
// (version byte, type tag, body — see serve/wire.hpp). A client writes
// request frames and reads, per request in order, either the matching
// response frame or an error frame:
//
//   error payload := u8 version, u8 tag 0xEE,
//                    u16 LE code (ErrorCode), u16 LE message length,
//                    message bytes
//
// Error frames are the cheap-reject path: a BUSY or RATE_LIMITED answer
// is encoded without touching the serving stack, which is what keeps
// overload from ever stalling the snapshot hot-swap path.
//
// FrameAssembler is the receive-side state machine: feed() raw bytes,
// next() complete payloads. It is deliberately merciless about framing
// lies — a length prefix beyond the cap poisons the stream (the only
// safe response is to drop the connection, since the byte stream can
// never resynchronize).
//
// Fault seams (deterministic, via fa::fault::Injector::global()):
//   net.frame.decode   armed: an inbound frame's payload is treated as
//                      corrupt at the server (keyed by per-connection
//                      frame sequence), exercising the BAD_REQUEST path
//   net.conn.slow      armed: the server skips one flush round for the
//                      connection (keyed by flush sequence), simulating
//                      a client that stops draining its socket
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "fault/status.hpp"
#include "serve/wire.hpp"

namespace fa::net {

inline constexpr std::size_t kMaxFramePayload = 64 * 1024;

inline constexpr std::string_view kFrameDecodeSite = "net.frame.decode";
inline constexpr std::string_view kSlowClientSite = "net.conn.slow";

// Wire error codes carried by 0xEE frames (and mapped onto HTTP status
// codes by the shim).
enum class ErrorCode : std::uint16_t {
  kBadRequest = 1,    // malformed payload or unroutable HTTP target
  kTooLarge = 2,      // framing/header/body size cap exceeded
  kRateLimited = 3,   // per-client token bucket empty
  kBusy = 4,          // admission queue full — load shed
  kShuttingDown = 5,  // server draining; no new work admitted
  kInternal = 6,      // unexpected server-side failure handling a request
};

std::string_view error_code_name(ErrorCode code);

// One decoded error payload.
struct WireError {
  ErrorCode code = ErrorCode::kBadRequest;
  std::string message;
};

// -- frame encode ------------------------------------------------------

// Wraps one payload in a length prefix.
std::string frame(std::string_view payload);

// Complete error frame (length prefix included), ready to write.
std::string error_frame(ErrorCode code, std::string_view message);

// Error payload only (no length prefix); serve::wire::peek_tag on it
// yields Tag::kError.
std::string error_payload(ErrorCode code, std::string_view message);

fault::Result<WireError> decode_error(std::string_view payload);

// -- receive-side framing ----------------------------------------------

class FrameAssembler {
 public:
  explicit FrameAssembler(std::size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  // Appends raw socket bytes. No-op once poisoned.
  void feed(std::string_view bytes);

  // Extracts the next complete payload. nullopt = need more bytes; an
  // error Status (source "net.frame") = the stream is poisoned: the
  // length prefix exceeded the cap (kLimit) or declared an empty
  // payload (kParse). After an error every subsequent call returns the
  // same error.
  fault::Result<std::optional<std::string>> next();

  // A partial frame is pending (length prefix seen or partially seen,
  // payload incomplete) — the read-timeout trigger: a peer that opens a
  // frame must finish it.
  bool mid_frame() const { return !buf_.empty(); }
  std::size_t buffered() const { return buf_.size(); }
  bool poisoned() const { return !status_.ok(); }

 private:
  std::size_t max_payload_;
  std::string buf_;
  fault::Status status_;
};

}  // namespace fa::net

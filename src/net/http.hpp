// Minimal HTTP/1.1 mapping onto the serve query model.
//
// The binary protocol is the performance surface; this shim exists so a
// human with curl (or a dashboard) can reach the same four query shapes
// through the endpoint set the exemplar risk backends expose:
//
//   GET  /health                        liveness + current epoch
//   GET  /fires?lon=&lat=[&radius_m=&k=]  top-K fire-threatened sites
//                                       near a point (TopKSitesQuery —
//                                       the WHP-ranked analog of
//                                       live-fire retrieval)
//   GET  /assets?bbox=w,s,e,n           infrastructure-in-viewport
//                                       aggregate (BBoxAggregateQuery)
//   POST /risk                          {"lon":..,"lat":..[,"neighborhood_m":..]}
//                                       per-point hazard (PointRiskQuery)
//   GET  /providers/{att|tmobile|sprint|verizon|regional}
//                                       one Table 2 row
//                                       (ProviderExposureQuery)
//   GET  /ensemble/summary[?members=&seed=]
//                                       fire-season ensemble aggregates +
//                                       exceedance curve
//                                       (EnsembleSummaryQuery)
//   GET  /ensemble/fragile[?members=&seed=&k=]
//                                       top-K fragile sites by expected
//                                       user-hours lost
//                                       (TopKFragileSitesQuery)
//   GET  /scenario/camp-fire-2018       prebuilt composite payload for
//                                       the 2018 Camp Fire ignition
//
// Responses are JSON (io::JsonValue, deterministic key order). The shim
// shares the binary path's admission control end to end: parsed
// requests enter the same bounded queue, quotas and shedding included —
// BUSY maps to 503, RATE_LIMITED to 429, SHUTTING_DOWN to 503,
// BAD_REQUEST to 400, TOO_LARGE to 413.
//
// Parsing is deliberately small: request line + headers (Content-Length
// and Connection are the only ones consulted), optional body, with hard
// caps on header block and body size. Anything outside that subset is a
// 400/413/431 and the connection closes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "io/json.hpp"
#include "net/protocol.hpp"
#include "serve/types.hpp"

namespace fa::serve {
class Server;
}

namespace fa::net {

inline constexpr std::size_t kMaxHttpHeaderBytes = 8 * 1024;
inline constexpr std::size_t kMaxHttpBodyBytes = 64 * 1024;

struct HttpRequest {
  std::string method;  // uppercased
  std::string path;    // percent-decoded, query string stripped
  std::map<std::string, std::string> params;  // percent-decoded
  std::string body;
  bool keep_alive = true;
};

// Incremental HTTP/1.1 request parser (the HTTP twin of
// FrameAssembler): feed() socket bytes, next() complete requests.
// Errors poison the stream; the caller answers with `status` and
// closes.
class HttpAssembler {
 public:
  // Error statuses carry the HTTP code to answer with in offset:
  // 400 (malformed), 413 (body too large), 431 (headers too large).
  fault::Result<std::optional<HttpRequest>> next();
  void feed(std::string_view bytes);

  bool mid_request() const { return !buf_.empty(); }
  std::size_t buffered() const { return buf_.size(); }
  bool poisoned() const { return !status_.ok(); }

 private:
  std::string buf_;
  fault::Status status_;
};

// -- routing -----------------------------------------------------------

struct HttpRoute {
  enum class Kind : std::uint8_t {
    kQuery,     // request holds the decoded serve::Request
    kScenario,  // /scenario/camp-fire-2018 composite
    kHealth,    // answered inline, no admission needed
    kBadRequest,
    kNotFound,
  };
  Kind kind = Kind::kNotFound;
  serve::Request request;
  std::string error;  // kBadRequest detail
};

HttpRoute route_http(const HttpRequest& req);

// -- response rendering ------------------------------------------------

// JSON document for one typed response (shared by the HTTP shim and the
// scenario payload builder).
io::JsonValue response_json(const serve::Response& response);

// Complete HTTP/1.1 response bytes.
std::string http_response(int status, std::string_view json_body,
                          bool keep_alive);

// Status code an ErrorCode maps onto (429/503/400/413).
int http_status_for(ErrorCode code);

// {"error":...,"code":...} body for an error answer.
std::string http_error_body(ErrorCode code, std::string_view message);

// The 2018 Camp Fire ignition (Camp Creek Road, Pulga CA); the scenario
// endpoint builds its payload around this point.
inline constexpr double kCampFireLon = -121.437;
inline constexpr double kCampFireLat = 39.810;

// URL token for a provider (att/tmobile/sprint/verizon/regional) and
// its inverse, used by /providers/{name} and the by_provider JSON keys.
std::string_view provider_token(cellnet::Provider p);
std::optional<cellnet::Provider> provider_from_token(std::string_view token);

// Prebuilt /scenario/camp-fire-2018 payload: point risk at the
// ignition, the 25 riskiest sites within 60 km, and all five provider
// exposure rows — every block answered through Server::handle, each
// labeled with the epoch that answered it (a concurrent hot-swap may
// split a composite across epochs; no single block ever mixes).
io::JsonValue scenario_camp_fire(serve::Server& server);

}  // namespace fa::net

#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <variant>
#include <vector>

#include "fault/injector.hpp"
#include "io/json.hpp"
#include "net/http.hpp"
#include "net/protocol.hpp"
#include "obs/metrics.hpp"

namespace fa::net {

namespace {

constexpr std::string_view kServerSource = "net.server";

[[noreturn]] void throw_errno(const char* what) {
  throw fault::IoError(fault::ErrCode::kIoFailure, std::string(kServerSource),
                       std::string(what) + ": " + std::strerror(errno));
}

// Classic token bucket, refilled lazily from the registry clock. Owned
// by the IO thread (quota decisions happen at admission, before the
// request ever reaches a worker), so no synchronization.
struct TokenBucket {
  double qps = 0.0;
  double burst = 0.0;
  double tokens = 0.0;
  std::uint64_t last_ns = 0;

  bool take(std::uint64_t now_ns) {
    if (qps <= 0.0) return true;
    if (last_ns == 0) {
      last_ns = now_ns;
      tokens = burst;
    }
    const double elapsed_s = static_cast<double>(now_ns - last_ns) * 1e-9;
    last_ns = now_ns;
    tokens = std::min(burst, tokens + elapsed_s * qps);
    if (tokens < 1.0) return false;
    tokens -= 1.0;
    return true;
  }
};

constexpr bool http_method_prefix(std::string_view head) {
  return head.starts_with("GET ") || head.starts_with("POST") ||
         head.starts_with("HEAD") || head.starts_with("PUT ") ||
         head.starts_with("DELE") || head.starts_with("OPTI") ||
         head.starts_with("PATC");
}

}  // namespace

struct Conn;

// One unit of response work. Either a live request (evaluated through
// Server::handle by a worker) or a canned answer — reject frames,
// health, 404s — whose bytes were prebuilt on the IO thread. Both kinds
// carry a per-connection sequence number so replies reach the outbox
// strictly in request order: the frames carry no request id, ordering
// IS the correlation.
struct Work {
  enum class Kind : std::uint8_t { kQuery, kScenario };

  std::shared_ptr<Conn> conn;
  serve::Request request;
  Kind kind = Kind::kQuery;
  bool http = false;
  bool keep_alive = true;
  bool close_after = false;
  std::uint64_t seq = 0;
  std::string canned;  // non-empty: deliver these bytes verbatim
};

// One accepted socket. Parser state, the token bucket, and the fd are
// owned by the IO thread; `mu` guards the outbox and the ordering state
// shared with workers.
struct Conn {
  enum class Proto : std::uint8_t { kUnknown, kBinary, kHttp };

  // -- IO-thread-only --------------------------------------------------
  int fd = -1;
  std::uint64_t id = 0;
  Proto proto = Proto::kUnknown;
  std::string sniff;  // bytes held until the protocol is identified
  FrameAssembler frames;
  HttpAssembler http;
  TokenBucket bucket;
  std::uint64_t requests_seen = 0;  // fault key: net.frame.decode
  std::uint64_t flush_seq = 0;      // fault key: net.conn.slow
  std::uint64_t admit_seq = 0;      // last stamped request seq
  std::uint64_t last_activity_ns = 0;
  bool want_write = false;   // EPOLLOUT armed
  bool error_sent = false;   // poisoned stream answered; discard reads
  bool dead = false;         // fd closed; shared_ptrs may outlive it

  // -- shared with workers (under mu) ----------------------------------
  std::mutex mu;
  std::string outbox;
  // Last forward progress on the outbox: stamped when bytes land in an
  // empty outbox and whenever send() moves bytes. The sweep expires
  // connections whose outbox sat non-empty past write_timeout_ms.
  std::uint64_t outbox_progress_ns = 0;
  std::vector<Work> pending;   // out-of-order completions parked here
  std::uint64_t next_seq = 1;  // next response the peer expects
  bool busy = false;           // a worker is executing for this conn
  bool closed = false;         // worker-visible mirror of `dead`
  bool close_after_flush = false;
  bool overflow = false;  // outbox blew max_outbox_bytes; drop the peer

  // Admitted-but-unanswered requests (drain + idle-sweep bookkeeping).
  std::atomic<std::uint32_t> in_flight{0};

  // All three require mu.
  void pending_insert(Work w) {
    auto it = std::find_if(pending.begin(), pending.end(),
                           [&](const Work& p) { return p.seq > w.seq; });
    pending.insert(it, std::move(w));
  }
  bool pending_ready() const {
    return !pending.empty() && pending.front().seq == next_seq;
  }
  Work pending_pop() {
    Work w = std::move(pending.front());
    pending.erase(pending.begin());
    return w;
  }
};

struct NetServer::Impl {
  serve::Server& server;
  NetServerOptions opts;
  obs::Registry& reg;

  int listen_fd = -1;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::uint16_t bound_port = 0;

  std::atomic<bool> draining{false};
  std::atomic<bool> stop{false};
  std::atomic<bool> quiescent{false};
  std::atomic<std::uint64_t> in_flight_total{0};
  std::uint64_t next_conn_id = 1;

  // Admission queue (bounded; full = shed) and the canned-reply side
  // queue (unbounded but each entry is a few hundred prebuilt bytes
  // tied to one received request — inbound socket rate bounds it).
  std::mutex qmu;
  std::condition_variable qcv;
  std::deque<Work> queue;
  std::deque<Work> canned_queue;

  // IO-thread-owned connection table.
  std::unordered_map<int, std::shared_ptr<Conn>> conns;

  // Connections with freshly appended outbox bytes (workers push, the
  // eventfd wakes the IO thread to flush).
  std::mutex dirty_mu;
  std::vector<std::shared_ptr<Conn>> dirty;

  std::mutex shutdown_mu;
  bool joined = false;

  std::vector<std::thread> workers;
  std::thread io_thread;

  // Cached instruments — these sit on every request path.
  obs::Counter& c_accepted;
  obs::Counter& c_closed;
  obs::Counter& c_dropped_slow;
  obs::Counter& c_timeouts;
  obs::Counter& c_bytes_in;
  obs::Counter& c_bytes_out;
  obs::Counter& c_frames_in;
  obs::Counter& c_frames_out;
  obs::Counter& c_http_requests;
  obs::Counter& c_ok;
  obs::Counter& c_bad;
  obs::Counter& c_sheds;
  obs::Counter& c_rate_limited;
  obs::Counter& c_shutdown_rejects;
  obs::Histogram& h_queue_depth;
  obs::Histogram& h_point_ns;
  obs::Histogram& h_bbox_ns;
  obs::Histogram& h_provider_ns;
  obs::Histogram& h_topk_ns;
  obs::Histogram& h_ensemble_ns;
  obs::Histogram& h_scenario_ns;

  Impl(serve::Server& srv, const NetServerOptions& options)
      : server(srv),
        opts(options),
        reg(options.registry ? *options.registry : srv.registry()),
        c_accepted(reg.counter(obs::metrics::kNetConnectionsAccepted)),
        c_closed(reg.counter(obs::metrics::kNetConnectionsClosed)),
        c_dropped_slow(reg.counter(obs::metrics::kNetConnectionsDroppedSlow)),
        c_timeouts(reg.counter(obs::metrics::kNetTimeouts)),
        c_bytes_in(reg.counter(obs::metrics::kNetBytesIn)),
        c_bytes_out(reg.counter(obs::metrics::kNetBytesOut)),
        c_frames_in(reg.counter(obs::metrics::kNetFramesIn)),
        c_frames_out(reg.counter(obs::metrics::kNetFramesOut)),
        c_http_requests(reg.counter(obs::metrics::kNetHttpRequests)),
        c_ok(reg.counter(obs::metrics::kNetRequestsOk)),
        c_bad(reg.counter(obs::metrics::kNetRequestsBad)),
        c_sheds(reg.counter(obs::metrics::kNetSheds)),
        c_rate_limited(reg.counter(obs::metrics::kNetRateLimited)),
        c_shutdown_rejects(reg.counter(obs::metrics::kNetShutdownRejects)),
        h_queue_depth(reg.histogram(obs::metrics::kNetQueueDepth)),
        h_point_ns(reg.histogram(obs::metrics::kNetLatencyPointRiskNs)),
        h_bbox_ns(reg.histogram(obs::metrics::kNetLatencyBBoxNs)),
        h_provider_ns(reg.histogram(obs::metrics::kNetLatencyProviderNs)),
        h_topk_ns(reg.histogram(obs::metrics::kNetLatencyTopKNs)),
        h_ensemble_ns(reg.histogram(obs::metrics::kNetLatencyEnsembleNs)),
        h_scenario_ns(reg.histogram(obs::metrics::kNetLatencyScenarioNs)) {
    opts.workers = std::max(1, opts.workers);
    opts.queue_capacity = std::max<std::size_t>(1, opts.queue_capacity);
    start();
  }

  ~Impl() { shutdown(false); }

  // -- lifecycle -------------------------------------------------------

  void start() {
    listen_fd =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd < 0) throw_errno("socket");
    int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opts.port);
    addr.sin_addr.s_addr =
        htonl(opts.loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
        0) {
      const int saved = errno;
      ::close(listen_fd);
      // An occupied port is an operator error worth a precise message
      // (and the fix), not a bare strerror; the Status offset carries
      // the losing port number.
      if (saved == EADDRINUSE) {
        throw fault::IoError(fault::Status::error(
            fault::ErrCode::kIoFailure, opts.port, std::string(kServerSource),
            "listen port " + std::to_string(opts.port) +
                " is already in use; stop the other listener or pass "
                "--port 0 for an ephemeral port"));
      }
      errno = saved;
      throw_errno("bind");
    }
    if (::listen(listen_fd, 128) < 0) {
      const int saved = errno;
      ::close(listen_fd);
      errno = saved;
      throw_errno("listen");
    }
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
    bound_port = ntohs(addr.sin_port);

    epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd < 0) throw_errno("epoll_create1");
    wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wake_fd < 0) throw_errno("eventfd");
    epoll_add(listen_fd, EPOLLIN);
    epoll_add(wake_fd, EPOLLIN);

    workers.reserve(static_cast<std::size_t>(opts.workers));
    for (int i = 0; i < opts.workers; ++i) {
      workers.emplace_back([this] { worker_loop(); });
    }
    io_thread = std::thread([this] { io_loop(); });
  }

  void shutdown(bool drain) {
    std::lock_guard<std::mutex> lk(shutdown_mu);
    if (joined) return;
    draining.store(true, std::memory_order_release);
    wake();
    if (drain) {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(opts.drain_timeout_ms);
      while (!quiescent.load(std::memory_order_acquire) &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
    stop.store(true, std::memory_order_release);
    qcv.notify_all();
    wake();
    for (auto& t : workers) t.join();
    io_thread.join();
    joined = true;
  }

  void wake() {
    if (wake_fd >= 0) {
      const std::uint64_t one = 1;
      [[maybe_unused]] ssize_t n = ::write(wake_fd, &one, sizeof one);
    }
  }

  void epoll_add(int fd, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      throw_errno("epoll_ctl(ADD)");
    }
  }

  void epoll_mod(int fd, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, fd, &ev);
  }

  // -- IO thread -------------------------------------------------------

  void io_loop() {
    std::vector<epoll_event> events(64);
    std::uint64_t last_sweep_ns = reg.now_ns();
    while (!stop.load(std::memory_order_acquire)) {
      if (draining.load(std::memory_order_acquire) && listen_fd >= 0) {
        ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
        ::close(listen_fd);
        listen_fd = -1;
      }
      const int n = ::epoll_wait(epoll_fd, events.data(),
                                 static_cast<int>(events.size()), 50);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        const std::uint32_t ev = events[i].events;
        if (fd == listen_fd) {
          accept_all();
          continue;
        }
        if (fd == wake_fd) {
          std::uint64_t junk = 0;
          while (::read(wake_fd, &junk, sizeof junk) > 0) {
          }
          continue;
        }
        auto it = conns.find(fd);
        if (it == conns.end()) continue;
        std::shared_ptr<Conn> conn = it->second;
        if (ev & (EPOLLHUP | EPOLLERR)) {
          close_conn(*conn);
          continue;
        }
        if (ev & EPOLLIN) read_conn(conn);
        if (!conn->dead && (ev & EPOLLOUT)) flush_conn(*conn);
      }
      flush_dirty();
      const std::uint64_t now = reg.now_ns();
      if (now - last_sweep_ns >= 100'000'000ull) {
        sweep_timeouts(now);
        last_sweep_ns = now;
      }
      if (draining.load(std::memory_order_acquire)) check_quiescent();
    }
    // Teardown: the IO thread owns every fd.
    for (auto& [fd, conn] : conns) {
      conn->dead = true;
      {
        std::lock_guard<std::mutex> lk(conn->mu);
        conn->closed = true;
      }
      ::close(fd);
      c_closed.add();
    }
    conns.clear();
    if (listen_fd >= 0) ::close(listen_fd);
    ::close(wake_fd);
    ::close(epoll_fd);
    listen_fd = epoll_fd = wake_fd = -1;
  }

  void accept_all() {
    for (;;) {
      const int fd =
          ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return;
      if (draining.load(std::memory_order_acquire) ||
          conns.size() >= opts.max_connections) {
        ::close(fd);
        continue;
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      auto conn = std::make_shared<Conn>();
      conn->fd = fd;
      conn->id = next_conn_id++;
      conn->bucket.qps = opts.quota_qps;
      conn->bucket.burst = std::max(1.0, opts.quota_burst);
      conn->last_activity_ns = reg.now_ns();
      conns.emplace(fd, std::move(conn));
      epoll_add(fd, EPOLLIN);
      c_accepted.add();
    }
  }

  void close_conn(Conn& conn) {
    if (conn.dead) return;
    conn.dead = true;
    {
      std::lock_guard<std::mutex> lk(conn.mu);
      conn.closed = true;
    }
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    conns.erase(conn.fd);  // `conn` stays alive via workers' shared_ptrs
    c_closed.add();
  }

  void read_conn(const std::shared_ptr<Conn>& conn) {
    char buf[16 * 1024];
    for (;;) {
      const ssize_t r = ::recv(conn->fd, buf, sizeof buf, 0);
      if (r > 0) {
        c_bytes_in.add(static_cast<std::uint64_t>(r));
        conn->last_activity_ns = reg.now_ns();
        ingest(conn, std::string_view(buf, static_cast<std::size_t>(r)));
        if (conn->dead) return;
        if (r < static_cast<ssize_t>(sizeof buf)) return;
        continue;
      }
      if (r == 0) {
        close_conn(*conn);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      close_conn(*conn);
      return;
    }
  }

  void ingest(const std::shared_ptr<Conn>& conn, std::string_view bytes) {
    // A poisoned stream was already answered; drain and discard until
    // the close-after-flush lands.
    if (conn->error_sent) return;
    if (conn->proto == Conn::Proto::kUnknown) {
      conn->sniff.append(bytes);
      if (conn->sniff.size() < 4) return;
      conn->proto = http_method_prefix(conn->sniff) ? Conn::Proto::kHttp
                                                    : Conn::Proto::kBinary;
      const std::string held = std::move(conn->sniff);
      conn->sniff.clear();
      if (conn->proto == Conn::Proto::kHttp) {
        conn->http.feed(held);
      } else {
        conn->frames.feed(held);
      }
    } else if (conn->proto == Conn::Proto::kHttp) {
      conn->http.feed(bytes);
    } else {
      conn->frames.feed(bytes);
    }
    if (conn->proto == Conn::Proto::kHttp) {
      pump_http(conn);
    } else {
      pump_binary(conn);
    }
  }

  void pump_binary(const std::shared_ptr<Conn>& conn) {
    const fault::Injector& inj = fault::Injector::global();
    for (;;) {
      fault::Result<std::optional<std::string>> next = conn->frames.next();
      if (!next.ok()) {
        // Framing lies desynchronize the stream: answer once, close.
        const ErrorCode code = next.status().code == fault::ErrCode::kLimit
                                   ? ErrorCode::kTooLarge
                                   : ErrorCode::kBadRequest;
        c_bad.add();
        conn->error_sent = true;
        send_canned(conn, error_frame(code, next.status().message),
                    /*http=*/false, /*keep_alive=*/false,
                    /*close_after=*/true);
        return;
      }
      std::optional<std::string> opt = std::move(next).take();
      if (!opt.has_value()) return;
      std::string payload = std::move(*opt);
      c_frames_in.add();
      conn->requests_seen++;
      if (inj.armed() && inj.fires(kFrameDecodeSite, conn->requests_seen)) {
        payload = inj.corrupt_bytes(std::move(payload), kFrameDecodeSite,
                                    conn->requests_seen);
      }
      fault::Result<serve::Request> req = serve::wire::decode_request(payload);
      if (!req.ok()) {
        // The frame boundary held, so the stream is still synchronized;
        // reject this request and keep the connection.
        c_bad.add();
        send_canned(conn,
                    error_frame(ErrorCode::kBadRequest, req.status().message),
                    /*http=*/false, /*keep_alive=*/true,
                    /*close_after=*/false);
        continue;
      }
      Work w;
      w.conn = conn;
      w.request = std::move(req).take();
      w.http = false;
      admit(std::move(w));
      if (conn->dead) return;
    }
  }

  void pump_http(const std::shared_ptr<Conn>& conn) {
    for (;;) {
      fault::Result<std::optional<HttpRequest>> next = conn->http.next();
      if (!next.ok()) {
        const int status = static_cast<int>(next.status().offset);
        const ErrorCode code =
            status == 413 ? ErrorCode::kTooLarge : ErrorCode::kBadRequest;
        c_bad.add();
        conn->error_sent = true;
        send_canned(conn,
                    http_response(status,
                                  http_error_body(code, next.status().message),
                                  false),
                    /*http=*/true, /*keep_alive=*/false, /*close_after=*/true);
        return;
      }
      std::optional<HttpRequest> opt = std::move(next).take();
      if (!opt.has_value()) return;
      HttpRequest req = std::move(*opt);
      c_http_requests.add();
      conn->requests_seen++;
      HttpRoute route = route_http(req);
      switch (route.kind) {
        case HttpRoute::Kind::kHealth: {
          io::JsonObject o;
          o["status"] = draining.load(std::memory_order_acquire)
                            ? "draining"
                            : "serving";
          o["epoch"] = static_cast<double>(server.epoch());
          send_canned(conn,
                      http_response(200, io::to_json(io::JsonValue{std::move(o)}),
                                    req.keep_alive),
                      /*http=*/true, req.keep_alive, !req.keep_alive);
          break;
        }
        case HttpRoute::Kind::kNotFound:
          c_bad.add();
          send_canned(conn,
                      http_response(404,
                                    http_error_body(ErrorCode::kBadRequest,
                                                    "no such endpoint"),
                                    req.keep_alive),
                      /*http=*/true, req.keep_alive, !req.keep_alive);
          break;
        case HttpRoute::Kind::kBadRequest:
          c_bad.add();
          send_canned(conn,
                      http_response(400,
                                    http_error_body(ErrorCode::kBadRequest,
                                                    route.error),
                                    req.keep_alive),
                      /*http=*/true, req.keep_alive, !req.keep_alive);
          break;
        case HttpRoute::Kind::kScenario: {
          Work w;
          w.conn = conn;
          w.kind = Work::Kind::kScenario;
          w.http = true;
          w.keep_alive = req.keep_alive;
          admit(std::move(w));
          break;
        }
        case HttpRoute::Kind::kQuery: {
          Work w;
          w.conn = conn;
          w.request = route.request;
          w.http = true;
          w.keep_alive = req.keep_alive;
          admit(std::move(w));
          break;
        }
      }
      if (conn->dead) return;
    }
  }

  // -- admission (IO thread) -------------------------------------------

  void admit(Work w) {
    const std::shared_ptr<Conn> conn = w.conn;
    const std::uint64_t now = reg.now_ns();
    ErrorCode rc{};
    std::string_view detail;
    bool rejected = false;
    if (draining.load(std::memory_order_acquire)) {
      c_shutdown_rejects.add();
      rc = ErrorCode::kShuttingDown;
      detail = "server draining; no new work admitted";
      rejected = true;
    } else if (!conn->bucket.take(now)) {
      c_rate_limited.add();
      rc = ErrorCode::kRateLimited;
      detail = "per-connection quota exceeded";
      rejected = true;
    }
    if (!rejected) {
      std::lock_guard<std::mutex> lk(qmu);
      if (queue.size() >= opts.queue_capacity) {
        c_sheds.add();
        rc = ErrorCode::kBusy;
        detail = "admission queue full";
        rejected = true;
      } else {
        w.seq = ++conn->admit_seq;
        conn->in_flight.fetch_add(1, std::memory_order_relaxed);
        in_flight_total.fetch_add(1, std::memory_order_relaxed);
        h_queue_depth.record(queue.size());
        queue.push_back(std::move(w));
        qcv.notify_one();
        return;
      }
    }
    // Cheap reject: bytes prebuilt here, never touching the serving
    // stack, delivered through the same ordered pipeline.
    send_canned(conn,
                w.http ? http_response(http_status_for(rc),
                                       http_error_body(rc, detail),
                                       w.keep_alive)
                       : error_frame(rc, detail),
                w.http, w.keep_alive, w.http && !w.keep_alive);
  }

  // Enqueues prebuilt response bytes (rejects, health, parse errors)
  // behind this connection's in-flight requests. IO thread only.
  void send_canned(const std::shared_ptr<Conn>& conn, std::string bytes,
                   bool http, bool keep_alive, bool close_after) {
    if (conn->dead) return;
    Work w;
    w.conn = conn;
    w.http = http;
    w.keep_alive = keep_alive;
    w.close_after = close_after;
    w.canned = std::move(bytes);
    w.seq = ++conn->admit_seq;
    conn->in_flight.fetch_add(1, std::memory_order_relaxed);
    in_flight_total.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(qmu);
      canned_queue.push_back(std::move(w));
    }
    qcv.notify_one();
  }

  // -- flushing (IO thread) --------------------------------------------

  void flush_dirty() {
    std::vector<std::shared_ptr<Conn>> batch;
    {
      std::lock_guard<std::mutex> lk(dirty_mu);
      batch.swap(dirty);
    }
    for (const auto& conn : batch) {
      if (!conn->dead) flush_conn(*conn);
    }
  }

  void flush_conn(Conn& conn) {
    if (conn.dead) return;
    conn.flush_seq++;
    bool drop_now = false;
    {
      // The overflow verdict comes first: a peer that stopped reading
      // (or a flush stalled by the net.conn.slow fault) must be dropped
      // even if every subsequent round would also stall.
      std::lock_guard<std::mutex> lk(conn.mu);
      drop_now = conn.overflow;
    }
    if (drop_now) {
      c_dropped_slow.add();
      close_conn(conn);
      return;
    }
    const fault::Injector& inj = fault::Injector::global();
    if (inj.armed() && inj.fires(kSlowClientSite, conn.flush_seq)) {
      // Simulated stalled writer: skip the round, stay write-armed so
      // the backlog (and the overflow guard) is exercised next round.
      if (!conn.want_write) {
        conn.want_write = true;
        epoll_mod(conn.fd, EPOLLIN | EPOLLOUT);
      }
      return;
    }
    bool drop_slow = false;
    bool close_now = false;
    bool blocked = false;
    {
      std::lock_guard<std::mutex> lk(conn.mu);
      if (conn.overflow) {
        drop_slow = true;
      } else {
        while (!conn.outbox.empty()) {
          const ssize_t n = ::send(conn.fd, conn.outbox.data(),
                                   conn.outbox.size(), MSG_NOSIGNAL);
          if (n > 0) {
            c_bytes_out.add(static_cast<std::uint64_t>(n));
            conn.outbox.erase(0, static_cast<std::size_t>(n));
            conn.outbox_progress_ns = reg.now_ns();
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            blocked = true;
            break;
          }
          if (n < 0 && errno == EINTR) continue;
          close_now = true;
          break;
        }
        if (conn.outbox.empty() && conn.close_after_flush &&
            conn.in_flight.load(std::memory_order_relaxed) == 0) {
          close_now = true;
        }
      }
    }
    if (drop_slow) {
      c_dropped_slow.add();
      close_conn(conn);
      return;
    }
    if (close_now) {
      close_conn(conn);
      return;
    }
    if (blocked && !conn.want_write) {
      conn.want_write = true;
      epoll_mod(conn.fd, EPOLLIN | EPOLLOUT);
    } else if (!blocked && conn.want_write) {
      conn.want_write = false;
      epoll_mod(conn.fd, EPOLLIN);
    }
  }

  void sweep_timeouts(std::uint64_t now_ns) {
    std::vector<std::shared_ptr<Conn>> expired;
    for (const auto& [fd, conn] : conns) {
      const std::uint64_t idle_ns = now_ns - conn->last_activity_ns;
      const bool mid =
          conn->proto == Conn::Proto::kBinary  ? conn->frames.mid_frame()
          : conn->proto == Conn::Proto::kHttp ? conn->http.mid_request()
                                              : !conn->sniff.empty();
      if (mid && idle_ns > opts.read_timeout_ms * 1'000'000ull) {
        expired.push_back(conn);
        continue;
      }
      std::lock_guard<std::mutex> lk(conn->mu);
      if (!conn->outbox.empty()) {
        // Write stall: a peer that stopped reading (or vanished without
        // a FIN) below max_outbox_bytes never triggers EPOLLOUT or the
        // overflow drop, so without this check the connection would pin
        // its slot forever.
        if (now_ns - conn->outbox_progress_ns >
            opts.write_timeout_ms * 1'000'000ull) {
          expired.push_back(conn);
        }
        continue;
      }
      if (!mid && idle_ns > opts.idle_timeout_ms * 1'000'000ull &&
          conn->in_flight.load(std::memory_order_relaxed) == 0) {
        expired.push_back(conn);
      }
    }
    for (const auto& conn : expired) {
      c_timeouts.add();
      close_conn(*conn);
    }
  }

  void check_quiescent() {
    if (in_flight_total.load(std::memory_order_relaxed) != 0) return;
    {
      std::lock_guard<std::mutex> lk(qmu);
      if (!queue.empty() || !canned_queue.empty()) return;
    }
    for (const auto& [fd, conn] : conns) {
      std::lock_guard<std::mutex> lk(conn->mu);
      if (!conn->outbox.empty() || conn->busy) return;
    }
    quiescent.store(true, std::memory_order_release);
  }

  // -- workers ---------------------------------------------------------

  void worker_loop() {
    for (;;) {
      Work w;
      {
        std::unique_lock<std::mutex> lk(qmu);
        qcv.wait(lk, [this] {
          return stop.load(std::memory_order_acquire) ||
                 !canned_queue.empty() || !queue.empty();
        });
        if (stop.load(std::memory_order_acquire)) return;
        if (!canned_queue.empty()) {
          w = std::move(canned_queue.front());
          canned_queue.pop_front();
        } else {
          w = std::move(queue.front());
          queue.pop_front();
        }
      }
      deliver(std::move(w));
    }
  }

  // Hands one unit of work to its connection's ordered pipeline:
  // responses append to the outbox strictly in admission order, however
  // workers interleave.
  void deliver(Work w) {
    std::shared_ptr<Conn> conn = w.conn;
    {
      std::lock_guard<std::mutex> lk(conn->mu);
      conn->pending_insert(std::move(w));
    }
    for (;;) {
      Work job;
      {
        std::lock_guard<std::mutex> lk(conn->mu);
        if (conn->busy) return;
        if (!conn->pending_ready()) return;
        job = conn->pending_pop();
        conn->busy = true;
      }
      const std::string out = execute(job);
      bool notify_io = false;
      {
        std::lock_guard<std::mutex> lk(conn->mu);
        conn->busy = false;
        conn->next_seq++;
        if (!conn->closed) {
          if (conn->outbox.empty()) conn->outbox_progress_ns = reg.now_ns();
          conn->outbox.append(out);
          if (job.close_after || (job.http && !job.keep_alive)) {
            conn->close_after_flush = true;
          }
          if (conn->outbox.size() > opts.max_outbox_bytes) {
            conn->overflow = true;
          }
          notify_io = true;
        }
      }
      conn->in_flight.fetch_sub(1, std::memory_order_relaxed);
      in_flight_total.fetch_sub(1, std::memory_order_relaxed);
      if (notify_io) {
        if (!job.http) c_frames_out.add();
        {
          std::lock_guard<std::mutex> lk(dirty_mu);
          dirty.push_back(conn);
        }
        wake();
      }
    }
  }

  std::string execute(const Work& w) {
    if (!w.canned.empty()) return w.canned;
    const std::uint64_t t0 = reg.now_ns();
    std::string out;
    try {
      if (w.kind == Work::Kind::kScenario) {
        const io::JsonValue doc = scenario_camp_fire(server);
        out = http_response(200, io::to_json(doc), w.keep_alive);
        h_scenario_ns.record(reg.now_ns() - t0);
      } else {
        const serve::Dispatch dispatch =
            opts.batch_point_queries &&
                    std::holds_alternative<serve::PointRiskQuery>(w.request)
                ? serve::Dispatch::kBatched
                : serve::Dispatch::kDirect;
        const serve::Response resp = server.handle(w.request, dispatch);
        if (w.http) {
          out = http_response(200, io::to_json(response_json(resp)),
                              w.keep_alive);
        } else {
          out = frame(serve::wire::encode(resp));
        }
        latency_histogram(w.request).record(reg.now_ns() - t0);
      }
      c_ok.add();
    } catch (const fault::IoError& e) {
      c_bad.add();
      out = w.http ? http_response(500,
                                   http_error_body(ErrorCode::kBadRequest,
                                                   e.what()),
                                   w.keep_alive)
                   : error_frame(ErrorCode::kBadRequest, e.what());
    } catch (const std::exception& e) {
      // Anything else escaping a worker thread would std::terminate the
      // whole server on one bad request; answer 500 and keep serving.
      c_bad.add();
      out = w.http
                ? http_response(500,
                                http_error_body(ErrorCode::kInternal,
                                                e.what()),
                                w.keep_alive)
                : error_frame(ErrorCode::kInternal, e.what());
    } catch (...) {
      c_bad.add();
      out = w.http
                ? http_response(500,
                                http_error_body(ErrorCode::kInternal,
                                                "unexpected error"),
                                w.keep_alive)
                : error_frame(ErrorCode::kInternal, "unexpected error");
    }
    return out;
  }

  obs::Histogram& latency_histogram(const serve::Request& request) {
    switch (request.index()) {
      case 0:
        return h_point_ns;
      case 1:
        return h_bbox_ns;
      case 2:
        return h_provider_ns;
      case 3:
        return h_topk_ns;
      default:
        // Both ensemble shapes (summary + fragility ranking) share one
        // latency surface; they run the same ensemble underneath.
        return h_ensemble_ns;
    }
  }
};

NetServer::NetServer(serve::Server& server, const NetServerOptions& options)
    : server_(server), impl_(std::make_unique<Impl>(server, options)) {}

NetServer::~NetServer() {
  if (impl_) impl_->shutdown(false);
}

std::uint16_t NetServer::port() const { return impl_->bound_port; }

void NetServer::shutdown(bool drain) { impl_->shutdown(drain); }

bool NetServer::draining() const {
  return impl_->draining.load(std::memory_order_acquire);
}

}  // namespace fa::net

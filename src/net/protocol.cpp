#include "net/protocol.hpp"

namespace fa::net {

namespace {

constexpr std::string_view kFrameSource = "net.frame";

std::uint32_t read_u32le(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest:
      return "bad_request";
    case ErrorCode::kTooLarge:
      return "too_large";
    case ErrorCode::kRateLimited:
      return "rate_limited";
    case ErrorCode::kBusy:
      return "busy";
    case ErrorCode::kShuttingDown:
      return "shutting_down";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string frame(std::string_view payload) {
  std::string out;
  out.reserve(4 + payload.size());
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((n >> (8 * i)) & 0xFF));
  }
  out.append(payload);
  return out;
}

std::string error_payload(ErrorCode code, std::string_view message) {
  // Messages are diagnostics, not data; keep the cheap-reject frames
  // small and the u16 length honest.
  if (message.size() > 512) message = message.substr(0, 512);
  std::string payload;
  payload.reserve(6 + message.size());
  serve::wire::detail::put_header(payload, serve::wire::Tag::kError);
  serve::wire::detail::put_u16(payload,
                               static_cast<std::uint16_t>(code));
  serve::wire::detail::put_u16(payload,
                               static_cast<std::uint16_t>(message.size()));
  payload.append(message);
  return payload;
}

std::string error_frame(ErrorCode code, std::string_view message) {
  return frame(error_payload(code, message));
}

fault::Result<WireError> decode_error(std::string_view payload) {
  const auto fail = [&](fault::ErrCode code, std::size_t offset,
                        std::string message) {
    return fault::Status::error(code, offset, std::string(kFrameSource),
                                std::move(message));
  };
  if (payload.size() < 6) {
    return fail(fault::ErrCode::kTruncated, payload.size(),
                "error payload shorter than its fixed header");
  }
  if (static_cast<std::uint8_t>(payload[0]) != serve::wire::kWireVersion) {
    return fail(fault::ErrCode::kParse, 0, "unsupported wire version");
  }
  if (static_cast<std::uint8_t>(payload[1]) !=
      static_cast<std::uint8_t>(serve::wire::Tag::kError)) {
    return fail(fault::ErrCode::kParse, 1, "not an error payload");
  }
  const std::uint16_t code =
      static_cast<std::uint16_t>(static_cast<unsigned char>(payload[2])) |
      static_cast<std::uint16_t>(static_cast<unsigned char>(payload[3])) << 8;
  const std::uint16_t len =
      static_cast<std::uint16_t>(static_cast<unsigned char>(payload[4])) |
      static_cast<std::uint16_t>(static_cast<unsigned char>(payload[5])) << 8;
  if (payload.size() != 6u + len) {
    return fail(fault::ErrCode::kSchema, 6,
                "error message length does not match payload");
  }
  if (code < 1 ||
      code > static_cast<std::uint16_t>(ErrorCode::kInternal)) {
    return fail(fault::ErrCode::kOutOfRange, 2,
                "unknown error code " + std::to_string(code));
  }
  WireError e;
  e.code = static_cast<ErrorCode>(code);
  e.message = std::string(payload.substr(6));
  return e;
}

void FrameAssembler::feed(std::string_view bytes) {
  if (!status_.ok()) return;
  buf_.append(bytes);
}

fault::Result<std::optional<std::string>> FrameAssembler::next() {
  if (!status_.ok()) return status_;
  if (buf_.size() < 4) return std::optional<std::string>{};
  const std::uint32_t n = read_u32le(buf_.data());
  if (n == 0) {
    status_ = fault::Status::error(fault::ErrCode::kParse, 0,
                                   std::string(kFrameSource),
                                   "zero-length frame");
    return status_;
  }
  if (n > max_payload_) {
    status_ = fault::Status::error(
        fault::ErrCode::kLimit, 0, std::string(kFrameSource),
        "frame length " + std::to_string(n) + " exceeds cap " +
            std::to_string(max_payload_));
    return status_;
  }
  if (buf_.size() < 4u + n) return std::optional<std::string>{};
  std::string payload = buf_.substr(4, n);
  buf_.erase(0, 4u + n);
  return std::optional<std::string>{std::move(payload)};
}

}  // namespace fa::net

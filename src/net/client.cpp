#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace fa::net {

namespace {

constexpr std::string_view kClientSource = "net.client";

fault::Status errno_status(const char* what) {
  return fault::Status::error(fault::ErrCode::kIoFailure, 0,
                              std::string(kClientSource),
                              std::string(what) + ": " + std::strerror(errno));
}

std::uint32_t read_u32le(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

fault::Result<Client> Client::connect(const std::string& host,
                                      std::uint16_t port, int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return fault::Status::error(fault::ErrCode::kParse, 0,
                                std::string(kClientSource),
                                "not a numeric IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return errno_status("socket");
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const fault::Status s = errno_status("connect");
    ::close(fd);
    return s;
  }
  return Client(fd);
}

std::uint64_t Client::backoff_delay_ms(const BackoffPolicy& policy,
                                       int attempt) {
  // cap = min(max, base * 2^attempt), saturating; shift guarded so a
  // large attempt index can't overflow into a tiny delay.
  std::uint64_t cap = policy.max_delay_ms;
  if (attempt < 63) {
    const std::uint64_t grown = policy.base_delay_ms << attempt;
    const bool overflowed =
        policy.base_delay_ms != 0 && (grown >> attempt) != policy.base_delay_ms;
    if (!overflowed && grown < cap) cap = grown;
  }
  // splitmix64 over (seed, attempt): deterministic, well-mixed jitter.
  std::uint64_t z =
      policy.seed + 0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(attempt) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  const std::uint64_t half = cap / 2;
  return half + (half ? z % (half + 1) : 0);
}

fault::Result<Client> Client::connect_retry(const std::string& host,
                                            std::uint16_t port,
                                            const BackoffPolicy& policy,
                                            int timeout_ms) {
  const int attempts = policy.attempts < 1 ? 1 : policy.attempts;
  fault::Status last;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    fault::Result<Client> c = connect(host, port, timeout_ms);
    if (c.ok()) return c;
    last = c.status();
    // kParse (bad address) can never succeed on retry; transport
    // failures (refused, timeout, unreachable) are worth the wait.
    if (last.code != fault::ErrCode::kIoFailure) return last;
    if (attempt + 1 < attempts) {
      const std::uint64_t delay = backoff_delay_ms(policy, attempt);
      ::usleep(static_cast<useconds_t>(delay * 1000));
    }
  }
  last.message += " (after " + std::to_string(attempts) + " attempts)";
  return last;
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), rx_(std::move(other.rx_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    rx_ = std::move(other.rx_);
  }
  return *this;
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rx_.clear();
}

fault::Result<Client::Reply> Client::call(const serve::Request& request) {
  if (fd_ < 0) {
    return fault::Status::error(fault::ErrCode::kIoFailure, 0,
                                std::string(kClientSource), "not connected");
  }
  const std::string out = frame(serve::wire::encode(request));
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  fault::Result<std::string> payload = read_frame();
  if (!payload.ok()) return payload.status();
  const std::uint8_t tag = serve::wire::peek_tag(payload.value());
  Reply reply;
  if (tag == static_cast<std::uint8_t>(serve::wire::Tag::kError)) {
    fault::Result<WireError> err = decode_error(payload.value());
    if (!err.ok()) return err.status();
    reply.error = std::move(err).take();
    return reply;
  }
  fault::Result<serve::Response> resp =
      serve::wire::decode_response(payload.value());
  if (!resp.ok()) return resp.status();
  reply.response = std::move(resp).take();
  return reply;
}

fault::Result<std::string> Client::read_frame() {
  char buf[16 * 1024];
  for (;;) {
    if (rx_.size() >= 4) {
      const std::uint32_t n = read_u32le(rx_.data());
      if (n == 0 || n > kMaxFramePayload) {
        return fault::Status::error(fault::ErrCode::kLimit, 0,
                                    std::string(kClientSource),
                                    "reply frame length out of range: " +
                                        std::to_string(n));
      }
      if (rx_.size() >= 4u + n) {
        std::string payload = rx_.substr(4, n);
        rx_.erase(0, 4u + n);
        return payload;
      }
    }
    const ssize_t r = ::recv(fd_, buf, sizeof buf, 0);
    if (r > 0) {
      rx_.append(buf, static_cast<std::size_t>(r));
      continue;
    }
    if (r == 0) {
      return fault::Status::error(fault::ErrCode::kTruncated, rx_.size(),
                                  std::string(kClientSource),
                                  "connection closed mid-reply");
    }
    if (errno == EINTR) continue;
    return errno_status("recv");
  }
}

}  // namespace fa::net

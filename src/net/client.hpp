// Blocking client for the fa::net binary protocol.
//
// One Client is one TCP connection issuing framed requests in lockstep:
// call() encodes the typed request through the same canonical
// serializer the server (and the cache fingerprints) use, writes one
// frame, and blocks for exactly one reply frame. The reply is either
// the matching typed response or a wire error — BUSY and RATE_LIMITED
// are *answers*, not transport failures, so they surface in Reply
// rather than as an error Status; the bench harness counts them as
// sheds while a broken socket aborts the measurement.
//
// Not thread-safe: one Client per thread (the closed-loop bench model).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "fault/status.hpp"
#include "net/protocol.hpp"
#include "serve/types.hpp"

namespace fa::net {

class Client {
 public:
  struct Reply {
    std::optional<serve::Response> response;
    std::optional<WireError> error;  // server said no (BUSY, ...)

    bool ok() const { return response.has_value(); }
  };

  // Connects to a numeric IPv4 address ("127.0.0.1"). timeout_ms bounds
  // connect, each send, and each receive.
  static fault::Result<Client> connect(const std::string& host,
                                       std::uint16_t port,
                                       int timeout_ms = 5000);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  // One framed round trip. An error Status means the conversation is
  // broken (socket failure, malformed reply, oversized frame) and the
  // Client should be discarded.
  fault::Result<Reply> call(const serve::Request& request);

  void close();
  bool connected() const { return fd_ >= 0; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  fault::Result<std::string> read_frame();

  int fd_ = -1;
  std::string rx_;  // bytes read past the current frame
};

}  // namespace fa::net

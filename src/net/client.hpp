// Blocking client for the fa::net binary protocol.
//
// One Client is one TCP connection issuing framed requests in lockstep:
// call() encodes the typed request through the same canonical
// serializer the server (and the cache fingerprints) use, writes one
// frame, and blocks for exactly one reply frame. The reply is either
// the matching typed response or a wire error — BUSY and RATE_LIMITED
// are *answers*, not transport failures, so they surface in Reply
// rather than as an error Status; the bench harness counts them as
// sheds while a broken socket aborts the measurement.
//
// Not thread-safe: one Client per thread (the closed-loop bench model).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "fault/status.hpp"
#include "net/protocol.hpp"
#include "serve/types.hpp"

namespace fa::net {

class Client {
 public:
  struct Reply {
    std::optional<serve::Response> response;
    std::optional<WireError> error;  // server said no (BUSY, ...)

    bool ok() const { return response.has_value(); }
  };

  // Connects to a numeric IPv4 address ("127.0.0.1"). timeout_ms bounds
  // connect, each send, and each receive.
  static fault::Result<Client> connect(const std::string& host,
                                       std::uint16_t port,
                                       int timeout_ms = 5000);

  // Capped exponential backoff for the reconnect path: a server
  // mid-restart answers ECONNREFUSED for tens of milliseconds, which
  // should read as "retry shortly", not as a hard failure. Jitter is
  // deterministic in (seed, attempt) so a failing sequence replays
  // exactly and fleets seeded differently don't reconnect in lockstep.
  struct BackoffPolicy {
    int attempts = 5;                  // total connect attempts (>= 1)
    std::uint64_t base_delay_ms = 25;  // delay budget before attempt 1
    std::uint64_t max_delay_ms = 1000;  // exponential growth cap
    std::uint64_t seed = 1;            // jitter stream
  };

  // connect() with retries. Transport-level failures (kIoFailure:
  // ECONNREFUSED, timeouts, unreachable) retry with backoff_delay_ms()
  // sleeps between attempts; a malformed address (kParse) never
  // retries. Returns the last attempt's Status when all attempts fail.
  static fault::Result<Client> connect_retry(const std::string& host,
                                             std::uint16_t port,
                                             const BackoffPolicy& policy,
                                             int timeout_ms = 5000);
  static fault::Result<Client> connect_retry(const std::string& host,
                                             std::uint16_t port) {
    return connect_retry(host, port, BackoffPolicy{});
  }

  // The deterministic delay slept after failed attempt `attempt`
  // (0-based): cap = min(max_delay_ms, base_delay_ms << attempt), delay
  // uniform in [cap/2, cap] keyed by (seed, attempt). Exposed so tests
  // can pin the exact schedule.
  static std::uint64_t backoff_delay_ms(const BackoffPolicy& policy,
                                        int attempt);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  // One framed round trip. An error Status means the conversation is
  // broken (socket failure, malformed reply, oversized frame) and the
  // Client should be discarded.
  fault::Result<Reply> call(const serve::Request& request);

  void close();
  bool connected() const { return fd_ >= 0; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  fault::Result<std::string> read_frame();

  int fd_ = -1;
  std::string rx_;  // bytes read past the current frame
};

}  // namespace fa::net

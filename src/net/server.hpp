// fa::net — the networked serving front door.
//
// A NetServer turns a serve::Server into something clients can actually
// reach: a nonblocking TCP listener plus one epoll IO thread and a
// small worker pool, speaking the length-prefixed binary protocol
// (net/protocol.hpp) and the minimal HTTP/1.1 mapping (net/http.hpp) on
// the same port (the first bytes of a connection pick the protocol:
// an HTTP method keyword selects the shim, anything else is framing).
//
// The design contract is *robustness under overload*, not just
// throughput:
//
//   * Admission control. Every parsed request passes a per-connection
//     token bucket (quota_qps/quota_burst; 0 disables) and then a
//     bounded in-flight queue. A full queue sheds the request with a
//     cheap BUSY frame (HTTP 503) encoded without touching the serving
//     stack — overload can make clients retry, it can never stall the
//     snapshot hot-swap path or grow memory without bound.
//   * Slow clients. Responses accumulate in a per-connection outbox
//     flushed by the IO thread; an outbox past max_outbox_bytes means
//     the peer stopped reading, and the connection is dropped
//     (net.connections.dropped_slow) instead of buffering forever.
//   * Timeouts. A connection idle past idle_timeout_ms, stalled
//     mid-frame past read_timeout_ms, or making no send progress on a
//     non-empty outbox past write_timeout_ms (a peer that vanished
//     without a FIN never triggers EPOLLOUT), is closed (net.timeouts).
//   * Graceful drain. shutdown(drain=true) stops accepting, answers
//     new requests with SHUTTING_DOWN, lets admitted work finish and
//     flush (bounded by drain_timeout_ms), then joins. Safe while a
//     rebuild() is in flight — the serve layer guarantees epoch-pure
//     answers; the net layer just keeps admitting or shedding.
//
// Threading: one IO thread owns every socket and all parser state;
// workers only evaluate admitted requests through Server::handle (the
// unified surface) and append encoded bytes to the connection outbox
// under its mutex. Nothing here blocks the IO thread on the serving
// stack, and nothing in the serving stack ever waits on a socket.
#pragma once

#include <cstdint>
#include <memory>

#include "obs/obs.hpp"
#include "serve/server.hpp"

namespace fa::net {

struct NetServerOptions {
  // 0 binds an ephemeral port (tests/bench); port() reports the result.
  std::uint16_t port = 0;
  // Loopback-only by default; set to false to bind 0.0.0.0.
  bool loopback_only = true;
  int workers = 2;                    // clamped to >= 1
  std::size_t queue_capacity = 256;   // bounded admission queue
  std::size_t max_connections = 1024;
  // Per-connection token bucket; 0 disables quota enforcement.
  double quota_qps = 0.0;
  double quota_burst = 32.0;
  std::uint64_t idle_timeout_ms = 30'000;
  std::uint64_t read_timeout_ms = 10'000;
  std::uint64_t write_timeout_ms = 10'000;
  std::uint64_t drain_timeout_ms = 5'000;
  std::size_t max_outbox_bytes = 1 << 20;
  // Route point queries through the flat-combining batcher so
  // concurrent network clients coalesce into vectorized rounds.
  bool batch_point_queries = true;
  // Registry for net.* instruments; null = the backend server's.
  obs::Registry* registry = nullptr;
};

class NetServer {
 public:
  // Binds, listens, and starts the IO thread and workers. Throws
  // fault::IoError when the socket cannot be bound.
  NetServer(serve::Server& server, const NetServerOptions& options = {});
  ~NetServer();  // shutdown(drain=false) if still running

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // The bound port (resolves option port 0).
  std::uint16_t port() const;

  // Stops accepting; with drain, waits (up to drain_timeout_ms) for
  // admitted work to finish and outboxes to flush before closing.
  // Idempotent; safe from any thread except the IO thread itself.
  void shutdown(bool drain = true);

  bool draining() const;
  serve::Server& backend() { return server_; }

 private:
  struct Impl;
  serve::Server& server_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fa::net

// fa_served — the networked serving front door as a process.
//
//   fa_served [--port N] [--workers N] [--scale S] [--cell-m M]
//             [--seed S] [--quota-qps Q] [--queue N] [--public]
//             [--store DIR] [--feed] [--feed-interval-ms N] [--feed-seed S]
//             [--sharded]
//
// Builds the synthetic scenario, starts a serve::Server behind a
// net::NetServer, and runs until SIGINT/SIGTERM. SIGTERM and SIGINT
// trigger a graceful drain: the listener closes, admitted requests
// finish and flush, then the process exits. SIGHUP rebuilds the
// snapshot from the same scenario config (a stand-in for "new WHP
// raster landed") while queries keep being served — the hot-swap path
// exercised from the command line.
//
// --store DIR enables crash-safe persistence: boot loads the newest
// clean generation instead of rebuilding (near-instant cold start), the
// freshly built or rebuilt world is committed back after boot and after
// every SIGHUP, and a failed persist only logs — the in-memory epoch
// keeps serving.
//
// --sharded serves from the geo-sharded view: the world is partitioned
// into balanced geographic shards, queries scatter/gather across them,
// and with --store the snapshot persists as a FASHRD01 container whose
// cold start mmaps shard columns zero-copy — the continental
// (--scale 1) path. Responses are byte-identical to the monolithic
// server either way.
//
// --feed starts the synthetic live feed: every --feed-interval-ms
// (default 1000) a tick of events (site adds/retires/moves, growing
// fire perimeters, WHP patches) is generated, deduplicated through the
// ingestion lookback window, and applied incrementally — each batch
// publishes a new serving epoch without a rebuild, and with --store the
// batch is also appended to the hash-chained delta log so a cold start
// replays it on top of the last full snapshot.
//
// --port 0 asks the kernel for an ephemeral port; the chosen port is
// announced on stdout as a single machine-readable line
// ("fa_served: port NNNN") so harnesses never race on fixed ports. An
// already-bound fixed port fails fast with the Status explaining which
// port lost and how to avoid the race.
//
// Quick start (see README.md for the curl session):
//   ./build/src/net/fa_served --port 8080 --scale 64 --cell-m 5400 &
//   curl -s 'http://127.0.0.1:8080/health'
//   curl -s -X POST 'http://127.0.0.1:8080/risk' -d '{"lon":-121.437,"lat":39.810}'
//   curl -s 'http://127.0.0.1:8080/scenario/camp-fire-2018'
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include <memory>
#include <optional>

#include "delta/feed.hpp"
#include "net/server.hpp"
#include "serve/server.hpp"
#include "synth/scenario.hpp"

namespace {

volatile std::sig_atomic_t g_terminate = 0;
volatile std::sig_atomic_t g_rebuild = 0;

void on_terminate(int) { g_terminate = 1; }
void on_rebuild(int) { g_rebuild = 1; }

double arg_double(int argc, char** argv, const char* flag, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

const char* arg_string(int argc, char** argv, const char* flag,
                       const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

bool arg_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

void persist(fa::serve::Server& server, const char* when) {
  const fa::fault::Status s = server.save_snapshot();
  if (s.ok()) {
    std::fprintf(stderr, "fa_served: snapshot persisted (%s)\n", when);
  } else {
    // Persistence is best-effort: the serving epoch is unaffected, so
    // log loudly and keep serving from memory.
    std::fprintf(stderr, "fa_served: persist failed (%s): %s\n", when,
                 s.to_string().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fa;

  if (arg_flag(argc, argv, "--help")) {
    std::fprintf(
        stderr,
        "usage: fa_served [--port N] [--workers N] [--scale S] [--cell-m M]\n"
        "                 [--seed S] [--quota-qps Q] [--queue N] [--public]\n"
        "                 [--store DIR] [--feed] [--feed-interval-ms N]\n"
        "                 [--feed-seed S] [--sharded]\n");
    return 2;
  }

  synth::ScenarioConfig scenario;
  scenario.corpus_scale = arg_double(argc, argv, "--scale", 16.0);
  scenario.whp_cell_m = arg_double(argc, argv, "--cell-m", 2700.0);
  scenario.seed = static_cast<std::uint64_t>(
      arg_double(argc, argv, "--seed", 20191022.0));

  net::NetServerOptions options;
  options.port =
      static_cast<std::uint16_t>(arg_double(argc, argv, "--port", 8080.0));
  options.workers = static_cast<int>(arg_double(argc, argv, "--workers", 4.0));
  options.queue_capacity = static_cast<std::size_t>(
      arg_double(argc, argv, "--queue", 256.0));
  options.quota_qps = arg_double(argc, argv, "--quota-qps", 0.0);
  options.loopback_only = !arg_flag(argc, argv, "--public");

  serve::ServerOptions serve_options;
  serve_options.store_dir = arg_string(argc, argv, "--store", "");
  serve_options.sharded = arg_flag(argc, argv, "--sharded");

  std::fprintf(stderr,
               "fa_served: building scenario (scale=%.0f cell=%.0fm%s)\n",
               scenario.corpus_scale, scenario.whp_cell_m,
               serve_options.sharded ? ", sharded" : "");
  try {
    serve::Server server(scenario, serve_options);
    if (server.loaded_from_store()) {
      std::fprintf(stderr, "fa_served: cold start from store '%s'\n",
                   serve_options.store_dir.c_str());
    }
    net::NetServer net(server, options);
    // The chosen port on stdout, one parseable line, flushed before any
    // client could try to connect — harnesses read this instead of
    // guessing (essential with --port 0).
    std::printf("fa_served: port %u\n", static_cast<unsigned>(net.port()));
    std::fflush(stdout);
    std::fprintf(stderr, "fa_served: serving epoch %llu on port %u\n",
                 static_cast<unsigned long long>(server.epoch()),
                 static_cast<unsigned>(net.port()));
    if (!serve_options.store_dir.empty() && !server.loaded_from_store()) {
      persist(server, "boot build");
    }

    std::signal(SIGTERM, on_terminate);
    std::signal(SIGINT, on_terminate);
    std::signal(SIGHUP, on_rebuild);

    // Live feed: generator + ingestor are built lazily against the
    // serving world so a store-loaded epoch feeds from its actual
    // corpus, not a rebuilt one.
    // feed_root pins the snapshot the generator mirrors — FeedGenerator
    // holds a raw pointer to that world, which must outlive it even
    // after later epochs retire the snapshot.
    std::shared_ptr<const serve::Snapshot> feed_root;
    std::unique_ptr<delta::FeedGenerator> feed;
    std::optional<delta::FeedIngestor> ingestor;
    const bool feed_enabled = arg_flag(argc, argv, "--feed");
    const long feed_interval_ms = static_cast<long>(
        arg_double(argc, argv, "--feed-interval-ms", 1000.0));
    if (feed_enabled) {
      delta::FeedOptions feed_options;
      feed_options.seed = static_cast<std::uint64_t>(
          arg_double(argc, argv, "--feed-seed", 1.0));
      feed_root = server.snapshots().acquire();
      feed = std::make_unique<delta::FeedGenerator>(feed_root->world(),
                                                    feed_options);
      ingestor.emplace(delta::IngestOptions{});
      std::fprintf(stderr, "fa_served: live feed on (interval %ldms)\n",
                   feed_interval_ms);
    }
    long since_feed_ms = 0;

    while (!g_terminate) {
      if (g_rebuild) {
        g_rebuild = 0;
        std::fprintf(stderr, "fa_served: rebuilding snapshot\n");
        const fault::Status s = server.rebuild(scenario);
        if (s.ok()) {
          std::fprintf(stderr, "fa_served: now serving epoch %llu\n",
                       static_cast<unsigned long long>(server.epoch()));
          if (!serve_options.store_dir.empty()) persist(server, "rebuild");
          if (feed) {
            // The rebuilt world's dense ids restart from the scenario
            // corpus; re-root the generator's mirror there so its
            // retire/move targets stay valid.
            delta::FeedOptions feed_options;
            feed_options.seed = feed->next_seq() + 1;
            feed_root = server.snapshots().acquire();
            feed = std::make_unique<delta::FeedGenerator>(
                feed_root->world(), feed_options);
            // Fresh generator restarts seqs at 0; a kept watermark
            // would drop everything as stale.
            ingestor.emplace(delta::IngestOptions{});
          }
        } else {
          std::fprintf(stderr, "fa_served: rebuild failed: %s\n",
                       s.to_string().c_str());
        }
      }
      if (feed_enabled) {
        since_feed_ms += 50;
        if (since_feed_ms >= feed_interval_ms) {
          since_feed_ms = 0;
          auto cleaned = ingestor->ingest(feed->tick());
          if (cleaned.ok() && !cleaned.value().empty()) {
            delta::ApplyStats stats;
            const fault::Status s =
                server.apply_delta(cleaned.value(), &stats);
            if (s.ok()) {
              std::fprintf(
                  stderr,
                  "fa_served: epoch %llu (+%llu events, %llu dirty)\n",
                  static_cast<unsigned long long>(server.epoch()),
                  static_cast<unsigned long long>(stats.events),
                  static_cast<unsigned long long>(stats.dirty_transceivers));
            } else {
              std::fprintf(stderr, "fa_served: delta apply failed: %s\n",
                           s.to_string().c_str());
            }
          }
        }
      }
      ::usleep(50 * 1000);
    }
    std::fprintf(stderr, "fa_served: draining\n");
    net.shutdown(/*drain=*/true);
  } catch (const fault::IoError& e) {
    std::fprintf(stderr, "fa_served: fatal: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "fa_served: bye\n");
  return 0;
}

// fa_served — the networked serving front door as a process.
//
//   fa_served [--port N] [--workers N] [--scale S] [--cell-m M]
//             [--seed S] [--quota-qps Q] [--queue N] [--public]
//             [--store DIR]
//
// Builds the synthetic scenario, starts a serve::Server behind a
// net::NetServer, and runs until SIGINT/SIGTERM. SIGTERM and SIGINT
// trigger a graceful drain: the listener closes, admitted requests
// finish and flush, then the process exits. SIGHUP rebuilds the
// snapshot from the same scenario config (a stand-in for "new WHP
// raster landed") while queries keep being served — the hot-swap path
// exercised from the command line.
//
// --store DIR enables crash-safe persistence: boot loads the newest
// clean generation instead of rebuilding (near-instant cold start), the
// freshly built or rebuilt world is committed back after boot and after
// every SIGHUP, and a failed persist only logs — the in-memory epoch
// keeps serving.
//
// --port 0 asks the kernel for an ephemeral port; the chosen port is
// announced on stdout as a single machine-readable line
// ("fa_served: port NNNN") so harnesses never race on fixed ports. An
// already-bound fixed port fails fast with the Status explaining which
// port lost and how to avoid the race.
//
// Quick start (see README.md for the curl session):
//   ./build/src/net/fa_served --port 8080 --scale 64 --cell-m 5400 &
//   curl -s 'http://127.0.0.1:8080/health'
//   curl -s -X POST 'http://127.0.0.1:8080/risk' -d '{"lon":-121.437,"lat":39.810}'
//   curl -s 'http://127.0.0.1:8080/scenario/camp-fire-2018'
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "net/server.hpp"
#include "serve/server.hpp"
#include "synth/scenario.hpp"

namespace {

volatile std::sig_atomic_t g_terminate = 0;
volatile std::sig_atomic_t g_rebuild = 0;

void on_terminate(int) { g_terminate = 1; }
void on_rebuild(int) { g_rebuild = 1; }

double arg_double(int argc, char** argv, const char* flag, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

const char* arg_string(int argc, char** argv, const char* flag,
                       const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

bool arg_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

void persist(fa::serve::Server& server, const char* when) {
  const fa::fault::Status s = server.save_snapshot();
  if (s.ok()) {
    std::fprintf(stderr, "fa_served: snapshot persisted (%s)\n", when);
  } else {
    // Persistence is best-effort: the serving epoch is unaffected, so
    // log loudly and keep serving from memory.
    std::fprintf(stderr, "fa_served: persist failed (%s): %s\n", when,
                 s.to_string().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fa;

  if (arg_flag(argc, argv, "--help")) {
    std::fprintf(
        stderr,
        "usage: fa_served [--port N] [--workers N] [--scale S] [--cell-m M]\n"
        "                 [--seed S] [--quota-qps Q] [--queue N] [--public]\n"
        "                 [--store DIR]\n");
    return 2;
  }

  synth::ScenarioConfig scenario;
  scenario.corpus_scale = arg_double(argc, argv, "--scale", 16.0);
  scenario.whp_cell_m = arg_double(argc, argv, "--cell-m", 2700.0);
  scenario.seed = static_cast<std::uint64_t>(
      arg_double(argc, argv, "--seed", 20191022.0));

  net::NetServerOptions options;
  options.port =
      static_cast<std::uint16_t>(arg_double(argc, argv, "--port", 8080.0));
  options.workers = static_cast<int>(arg_double(argc, argv, "--workers", 4.0));
  options.queue_capacity = static_cast<std::size_t>(
      arg_double(argc, argv, "--queue", 256.0));
  options.quota_qps = arg_double(argc, argv, "--quota-qps", 0.0);
  options.loopback_only = !arg_flag(argc, argv, "--public");

  serve::ServerOptions serve_options;
  serve_options.store_dir = arg_string(argc, argv, "--store", "");

  std::fprintf(stderr, "fa_served: building scenario (scale=%.0f cell=%.0fm)\n",
               scenario.corpus_scale, scenario.whp_cell_m);
  try {
    serve::Server server(scenario, serve_options);
    if (server.loaded_from_store()) {
      std::fprintf(stderr, "fa_served: cold start from store '%s'\n",
                   serve_options.store_dir.c_str());
    }
    net::NetServer net(server, options);
    // The chosen port on stdout, one parseable line, flushed before any
    // client could try to connect — harnesses read this instead of
    // guessing (essential with --port 0).
    std::printf("fa_served: port %u\n", static_cast<unsigned>(net.port()));
    std::fflush(stdout);
    std::fprintf(stderr, "fa_served: serving epoch %llu on port %u\n",
                 static_cast<unsigned long long>(server.epoch()),
                 static_cast<unsigned>(net.port()));
    if (!serve_options.store_dir.empty() && !server.loaded_from_store()) {
      persist(server, "boot build");
    }

    std::signal(SIGTERM, on_terminate);
    std::signal(SIGINT, on_terminate);
    std::signal(SIGHUP, on_rebuild);

    while (!g_terminate) {
      if (g_rebuild) {
        g_rebuild = 0;
        std::fprintf(stderr, "fa_served: rebuilding snapshot\n");
        const fault::Status s = server.rebuild(scenario);
        if (s.ok()) {
          std::fprintf(stderr, "fa_served: now serving epoch %llu\n",
                       static_cast<unsigned long long>(server.epoch()));
          if (!serve_options.store_dir.empty()) persist(server, "rebuild");
        } else {
          std::fprintf(stderr, "fa_served: rebuild failed: %s\n",
                       s.to_string().c_str());
        }
      }
      ::usleep(50 * 1000);
    }
    std::fprintf(stderr, "fa_served: draining\n");
    net.shutdown(/*drain=*/true);
  } catch (const fault::IoError& e) {
    std::fprintf(stderr, "fa_served: fatal: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "fa_served: bye\n");
  return 0;
}

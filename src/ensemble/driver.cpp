// Ensemble driver: fans members across fa::exec and folds their outcomes
// through a streaming aggregator.
//
// Determinism: the parallel phase only ever writes member-indexed slots
// (per-member stats plus a sparse list of per-site contributions); the
// fold that produces every aggregate runs serially in member order
// afterwards. Floating-point summation order is therefore a function of
// the member count alone — thread count and exec_grain are pure
// throughput knobs and the report is byte-identical under both.
#include "ensemble/ensemble.hpp"

#include <algorithm>
#include <cmath>

#include "exec/exec.hpp"
#include "fault/injector.hpp"
#include "geo/prepared.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace fa::ensemble {

namespace {

// One member's contribution to one site, kept sparse: most members
// knock out a handful of sites, so member-indexed delta lists stay tiny
// while letting the serial fold replay contributions in member order.
struct SiteDelta {
  std::uint32_t site = 0;
  double uh = 0.0;
  double power_uh = 0.0;
};

std::uint64_t member_seed(std::uint64_t ensemble_seed, std::uint32_t member) {
  std::uint64_t s = ensemble_seed ^ (0x9E3779B97F4A7C15ULL * (member + 1ULL));
  return synth::splitmix64(s);
}

// Population inside the fire perimeter, by testing the centers of the
// population-raster cells covering the perimeter's bbox.
double population_in_perimeter(const SharedInputs& in,
                               const firesim::FirePerimeter& fire,
                               const geo::PreparedMultiPolygon& prepared) {
  const raster::Raster<float>& pop = in.population->grid();
  const raster::GridGeometry& geom = pop.geom();
  const geo::AlbersConus& proj = in.population->projection();
  const geo::BBox& bb = fire.perimeter.bbox();  // lon/lat
  if (!bb.valid()) return 0.0;
  // The Albers image of a lon/lat box is curved; corners + edge
  // midpoints bound it well at fire scale.
  const double lons[3] = {bb.min_x, 0.5 * (bb.min_x + bb.max_x), bb.max_x};
  const double lats[3] = {bb.min_y, 0.5 * (bb.min_y + bb.max_y), bb.max_y};
  geo::BBox world;
  for (const double lon : lons) {
    for (const double lat : lats) {
      world.expand(proj.forward({lon, lat}));
    }
  }
  int c0 = geom.col_of(world.min_x) - 1, c1 = geom.col_of(world.max_x) + 1;
  int r0 = geom.row_of(world.min_y) - 1, r1 = geom.row_of(world.max_y) + 1;
  c0 = std::max(c0, 0);
  r0 = std::max(r0, 0);
  c1 = std::min(c1, geom.cols - 1);
  r1 = std::min(r1, geom.rows - 1);
  if (c0 > c1 || r0 > r1) return 0.0;

  std::vector<double> xs, ys;
  std::vector<float> persons;
  for (int r = r0; r <= r1; ++r) {
    for (int c = c0; c <= c1; ++c) {
      const float p = pop.at(c, r);
      if (p <= 0.0f) continue;
      const geo::LonLat center = proj.inverse(geom.cell_center(c, r));
      xs.push_back(center.lon);
      ys.push_back(center.lat);
      persons.push_back(p);
    }
  }
  if (xs.empty()) return 0.0;
  std::vector<std::uint8_t> inside(xs.size(), 0);
  prepared.contains_batch(xs, ys, inside);
  double total = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (inside[i] != 0) total += persons[i];
  }
  return total;
}

// Runs one member season; per-site contributions come back as a sparse
// delta list. `battery_overlay` is the resolved per-site hours vector
// (nullptr = stock batteries).
MemberStats run_member(const SharedInputs& in, const EnsembleConfig& cfg,
                       const std::vector<double>* battery_overlay,
                       const HardeningPlan* plan, std::uint32_t m,
                       std::vector<SiteDelta>& deltas) {
  MemberStats stats;
  const std::uint64_t seed = member_seed(cfg.seed, m);
  synth::Rng rng(seed);

  // Member wind profile: the baseline PSPS window perturbed by seeded
  // multipliers (every member sees a different event intensity).
  const std::vector<double>& base = cfg.outage.wind_severity;
  firesim::OutageSimConfig ocfg = cfg.outage;  // copy-on-write overlay
  ocfg.wind_severity.resize(static_cast<std::size_t>(cfg.window_days));
  for (int d = 0; d < cfg.window_days; ++d) {
    const double b = base.empty()
                         ? 0.5
                         : base[static_cast<std::size_t>(d) % base.size()];
    ocfg.wind_severity[static_cast<std::size_t>(d)] =
        std::clamp(b * rng.uniform(0.55, 1.45), 0.02, 1.0);
  }
  ocfg.site_battery_hours = battery_overlay;

  // Member fire set: Poisson count of bounded-Pareto-sized fires grown
  // from region-restricted hazard-weighted ignitions. Each spread uses a
  // fork of the prototype simulator (shared tables, member-owned RNG).
  const std::uint32_t n_fires = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(rng.poisson(cfg.mean_fires), cfg.max_fires));
  std::vector<firesim::FirePerimeter> fires;
  fires.reserve(n_fires);
  for (std::uint32_t f = 0; f < n_fires; ++f) {
    const double acres =
        rng.pareto(cfg.min_fire_acres, cfg.max_fire_acres, cfg.fire_size_alpha);
    const geo::LonLat ignition = sample_region_ignition(in, rng);
    firesim::FireSimulator sim =
        in.fire_proto->fork(seed ^ (0xF19E0000ULL + f));
    firesim::FirePerimeter fire =
        sim.spread_fire(ignition, acres, 2025, f, firesim::FireSimConfig{});
    if (fire.acres <= 0.0 || fire.perimeter.empty()) continue;
    // Window-relative burn interval (spread_fire stamps day-of-year).
    fire.start_day = rng.range(0, std::max(0, cfg.window_days - 2));
    fire.end_day = std::min(cfg.window_days - 1,
                            fire.start_day + rng.range(1, cfg.window_days));
    fires.push_back(std::move(fire));
  }
  stats.fires = static_cast<std::uint32_t>(fires.size());

  // Feeder hardening overlay: member-local copy only when a plan asks.
  const firesim::FeederPlan* feeder_plan = &in.feeder_plan;
  firesim::FeederPlan hardened_plan;
  if (plan != nullptr && !plan->feeder_hardened.empty()) {
    hardened_plan = in.feeder_plan;
    const std::size_t n =
        std::min(hardened_plan.hardened.size(), plan->feeder_hardened.size());
    for (std::size_t f = 0; f < n; ++f) {
      hardened_plan.hardened[f] |= plan->feeder_hardened[f];
    }
    feeder_plan = &hardened_plan;
  }

  firesim::OutageSimulator outage_sim(in.world->whp(), seed ^ 0x007A6E5ULL);
  std::vector<std::vector<firesim::OutageCause>> per_site;
  outage_sim.simulate(in.sites, fires, ocfg, feeder_plan, &per_site);

  // Fire containment per site (for the fire+outage overlap family) and
  // population exposure per fire.
  std::vector<geo::PreparedMultiPolygon> prepared;
  prepared.reserve(fires.size());
  std::vector<std::vector<std::uint8_t>> in_fire(fires.size());
  for (std::size_t f = 0; f < fires.size(); ++f) {
    prepared.emplace_back(fires[f].perimeter);
    in_fire[f].assign(in.sites.size(), 0);
    prepared[f].contains_batch(in.site_x, in.site_y, in_fire[f]);
    const double exposed = population_in_perimeter(in, fires[f], prepared[f]);
    const int active_days = fires[f].end_day - fires[f].start_day + 1;
    stats.pop_exposure += exposed * active_days;
  }

  std::vector<std::uint8_t> site_hit(in.sites.size(), 0);
  std::vector<double> site_uh(in.sites.size(), 0.0);
  std::vector<double> site_power_uh(in.sites.size(), 0.0);
  for (std::size_t day = 0; day < per_site.size(); ++day) {
    const int d = static_cast<int>(day);
    for (std::size_t i = 0; i < in.sites.size(); ++i) {
      const firesim::OutageCause cause = per_site[day][i];
      if (cause == firesim::OutageCause::kNone) continue;
      const double uh = in.site_users[i] * 24.0;
      stats.user_hours += uh;
      switch (cause) {
        case firesim::OutageCause::kDamage: stats.damage_user_hours += uh; break;
        case firesim::OutageCause::kPower:
          stats.power_user_hours += uh;
          site_power_uh[i] += uh;
          break;
        case firesim::OutageCause::kTransport:
          stats.transport_user_hours += uh;
          break;
        case firesim::OutageCause::kNone: break;
      }
      site_uh[i] += uh;
      site_hit[i] = 1;
      ++stats.outage_site_days;
      for (std::size_t f = 0; f < fires.size(); ++f) {
        if (d >= fires[f].start_day && d <= fires[f].end_day &&
            in_fire[f][i] != 0) {
          stats.overlap_user_hours += uh;
          break;
        }
      }
    }
  }
  for (std::size_t i = 0; i < in.sites.size(); ++i) {
    if (site_hit[i] != 0) {
      deltas.push_back({static_cast<std::uint32_t>(i), site_uh[i],
                        site_power_uh[i]});
    }
  }
  return stats;
}

std::vector<ExceedancePoint> exceedance_curve(
    const std::vector<MemberStats>& member_stats, std::uint32_t effective,
    std::uint32_t points) {
  std::vector<ExceedancePoint> curve;
  if (effective == 0 || points == 0) return curve;
  double max_total = 0.0;
  for (const MemberStats& s : member_stats) {
    if (s.quarantined == 0) max_total = std::max(max_total, s.user_hours);
  }
  curve.reserve(points);
  for (std::uint32_t j = 0; j < points; ++j) {
    ExceedancePoint p;
    p.user_hours =
        points == 1 ? 0.0 : max_total * j / static_cast<double>(points - 1);
    std::uint32_t hits = 0;
    for (const MemberStats& s : member_stats) {
      if (s.quarantined == 0 && s.user_hours >= p.user_hours) ++hits;
    }
    p.probability = static_cast<double>(hits) / effective;
    curve.push_back(p);
  }
  return curve;
}

}  // namespace

EnsembleReport run_ensemble(const SharedInputs& inputs,
                            const EnsembleConfig& config,
                            const HardeningPlan* plan) {
  const obs::Span span(obs::metrics::kEnsembleRunNs);
  obs::count(obs::metrics::kEnsembleRuns);
  const std::size_t n_sites = inputs.sites.size();

  // Resolve the battery overlay once per run: entries <= 0 mean "stock".
  std::vector<double> battery;
  const std::vector<double>* battery_overlay = nullptr;
  if (plan != nullptr && !plan->site_battery_hours.empty()) {
    battery.assign(n_sites, config.outage.battery_hours);
    const std::size_t n = std::min(n_sites, plan->site_battery_hours.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (plan->site_battery_hours[i] > 0.0) {
        battery[i] = plan->site_battery_hours[i];
      }
    }
    battery_overlay = &battery;
  }

  EnsembleReport report;
  report.members = config.members;
  report.sites = static_cast<std::uint32_t>(n_sites);
  report.member_stats.assign(config.members, MemberStats{});

  const fault::Injector& injector = fault::Injector::global();
  obs::Registry& registry = obs::Registry::global();

  // Parallel phase: every write lands in a member-indexed slot, so the
  // execution schedule cannot influence the numbers.
  std::vector<std::vector<SiteDelta>> deltas(config.members);
  exec::parallel_for(
      config.members,
      [&](std::size_t m) {
        const std::uint32_t member = static_cast<std::uint32_t>(m);
        if (injector.fires(kMemberFaultSite, member)) {
          report.member_stats[m].quarantined = 1;
          return;
        }
        const bool timed = obs::enabled();
        const std::uint64_t t0 = timed ? registry.now_ns() : 0;
        report.member_stats[m] =
            run_member(inputs, config, battery_overlay, plan, member,
                       deltas[m]);
        if (timed) {
          registry.histogram(obs::metrics::kEnsembleMemberNs)
              .record(registry.now_ns() - t0);
        }
      },
      exec::ExecOptions{.grain = config.exec_grain});

  // Serial fold in member order: the one and only summation order.
  std::vector<double> site_uh(n_sites, 0.0);
  std::vector<double> site_power_uh(n_sites, 0.0);
  std::vector<double> site_outage_members(n_sites, 0.0);
  double uh = 0.0, power = 0.0, pop = 0.0, overlap = 0.0;
  for (std::uint32_t m = 0; m < config.members; ++m) {
    const MemberStats& stats = report.member_stats[m];
    if (stats.quarantined != 0) {
      ++report.quarantined;
      continue;
    }
    for (const SiteDelta& d : deltas[m]) {
      site_uh[d.site] += d.uh;
      site_power_uh[d.site] += d.power_uh;
      site_outage_members[d.site] += 1.0;
    }
    uh += stats.user_hours;
    power += stats.power_user_hours;
    pop += stats.pop_exposure;
    overlap += stats.overlap_user_hours;
    report.fires += stats.fires;
    report.outage_site_days += stats.outage_site_days;
  }

  obs::count(obs::metrics::kEnsembleMembers,
             config.members - report.quarantined);
  obs::count(obs::metrics::kEnsembleQuarantined, report.quarantined);
  obs::count(obs::metrics::kEnsembleFires, report.fires);
  obs::count(obs::metrics::kEnsembleOutageSiteDays, report.outage_site_days);

  const std::uint32_t effective = report.effective_members();
  const double denom = effective == 0 ? 1.0 : static_cast<double>(effective);
  report.expected_user_hours = uh / denom;
  report.expected_power_user_hours = power / denom;
  report.expected_pop_exposure = pop / denom;
  report.expected_overlap_user_hours = overlap / denom;

  report.site_expected_user_hours.resize(n_sites);
  report.site_expected_power_user_hours.resize(n_sites);
  report.site_outage_probability.resize(n_sites);
  for (std::size_t i = 0; i < n_sites; ++i) {
    report.site_expected_user_hours[i] = site_uh[i] / denom;
    report.site_expected_power_user_hours[i] = site_power_uh[i] / denom;
    report.site_outage_probability[i] = site_outage_members[i] / denom;
  }

  report.exceedance = exceedance_curve(report.member_stats, effective,
                                       config.exceedance_points);

  report.fragile_order.resize(n_sites);
  for (std::uint32_t i = 0; i < n_sites; ++i) report.fragile_order[i] = i;
  std::sort(report.fragile_order.begin(), report.fragile_order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const double ua = report.site_expected_user_hours[a];
              const double ub = report.site_expected_user_hours[b];
              return ua != ub ? ua > ub : a < b;
            });
  return report;
}

std::vector<FragileSite> top_k_fragile(const SharedInputs& inputs,
                                       const EnsembleReport& report,
                                       std::uint32_t k) {
  std::vector<FragileSite> rows;
  const std::uint32_t n = std::min<std::uint32_t>(
      k, static_cast<std::uint32_t>(report.fragile_order.size()));
  rows.reserve(n);
  for (std::uint32_t r = 0; r < n; ++r) {
    const std::uint32_t i = report.fragile_order[r];
    FragileSite row;
    row.site = i;
    row.position = inputs.sites[i].position;
    row.users = inputs.site_users[i];
    row.expected_user_hours = report.site_expected_user_hours[i];
    row.power_share =
        report.site_expected_user_hours[i] > 0.0
            ? report.site_expected_power_user_hours[i] /
                  report.site_expected_user_hours[i]
            : 0.0;
    row.outage_probability = report.site_outage_probability[i];
    rows.push_back(row);
  }
  return rows;
}

}  // namespace fa::ensemble

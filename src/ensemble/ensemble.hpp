// fa::ensemble — cascading-scenario ensemble engine.
//
// The paper's Section 3.2 case study is one PSPS window; the question it
// begs — which sites fail users the most across *many* plausible fire
// seasons — needs thousands of seeded scenarios. Each ensemble member is
// one cascading season: seeded ignitions grown on the WHP fuel surface
// (firesim) × a wind-driven PSPS over the distribution grid (powergrid)
// × backhaul cuts × battery-exhaustion timelines, scored against the
// population raster. Members run across fa::exec with copy-on-write
// scenario state: the shared inputs (world, grid model, population
// surface, ignition tables) are immutable after build, and every member
// derives its own cheap overlays (wind profile, fires, feeder-plan copy)
// from a per-member seed, never mutating shared state.
//
// Determinism contract (mirrors fa::exec): member seeds are a pure
// function of (ensemble seed, member index); the chunk plan depends only
// on (members, grain); partial aggregates are combined serially in chunk
// order. The same config therefore produces byte-identical aggregates,
// exceedance curves and top-K orderings at any thread count. Quarantine
// decisions from the "ensemble.member" fault seam are pure functions of
// the injector seed and member index, so a degraded run is deterministic
// too.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cellnet/types.hpp"
#include "core/world.hpp"
#include "firesim/fire.hpp"
#include "firesim/outage.hpp"
#include "powergrid/grid_model.hpp"
#include "synth/population.hpp"

namespace fa::ensemble {

// Fault-injection seam: fires(kMemberFaultSite, member_index) quarantines
// that member — it is skipped, counted, and excluded from every aggregate.
inline constexpr std::string_view kMemberFaultSite = "ensemble.member";

struct EnsembleConfig {
  std::uint32_t members = 256;
  std::uint64_t seed = 7;
  // State the scenario family plays in (the paper's case-study region).
  std::string region = "CA";
  // Ignitions per member-season (Poisson mean) and the bounded-Pareto
  // size distribution they draw from.
  double mean_fires = 3.0;
  double min_fire_acres = 1500.0;
  double max_fire_acres = 2.0e5;
  double fire_size_alpha = 0.62;
  std::uint32_t max_fires = 10;  // hard cap per member
  // PSPS window length in days; each member perturbs the baseline wind
  // profile below with its own seeded multipliers.
  int window_days = 8;
  firesim::OutageSimConfig outage;
  // Members per exec chunk. Part of the deterministic chunk plan — a
  // throughput knob only, results are identical for any value.
  std::size_t exec_grain = 4;
  // Points on the per-member user-hours exceedance curve.
  std::uint32_t exceedance_points = 16;
};

// A fixed budget of physical upgrades, chosen by the optimizer (or a
// random baseline). Applied per member as copy-on-write overlays: the
// battery vector feeds OutageSimConfig::site_battery_hours, the feeder
// flags are OR-ed into a member-local copy of the feeder plan.
struct HardeningPlan {
  // Per region site; 0 entries (or an empty vector) mean "stock battery".
  std::vector<double> site_battery_hours;
  // Per feeder: rebuilt fire-safe (PSPS-exempt below extreme wind).
  std::vector<std::uint8_t> feeder_hardened;
  std::uint32_t budget_spent = 0;
  // The optimizer's model-predicted expected user-hours saved; compare
  // against the re-simulated ensemble to see model fidelity.
  double predicted_savings = 0.0;
};

// Everything members share, immutable after build(). Build once, run
// many ensembles (baseline, hardened, swept) against it.
struct SharedInputs {
  const core::World* world = nullptr;
  int region_state = -1;
  std::vector<cellnet::CellSite> sites;  // region sites (dense ids 0..n)
  // Users served per site: the population cell's persons split evenly
  // among the sites sharing that cell (sums to ~the region population
  // covered by sites).
  std::vector<double> site_users;
  double region_users = 0.0;
  // Site coordinates in contains_batch layout (lon, lat).
  std::vector<double> site_x;
  std::vector<double> site_y;
  powergrid::GridModel grid;
  firesim::FeederPlan feeder_plan;
  std::unique_ptr<synth::PopulationSurface> population;
  // Prototype fire simulator; members fork() it (shared ignition tables,
  // fresh RNG) instead of paying the full-grid constructor per member.
  std::unique_ptr<firesim::FireSimulator> fire_proto;
  // Region-restricted ignition CDF over burnable WHP cells.
  std::vector<double> ignition_cdf;
  std::vector<std::uint32_t> ignition_cells;

  static SharedInputs build(const core::World& world,
                            const EnsembleConfig& config);
};

// Hazard-weighted ignition draw restricted to the region (used by the
// member runner; exposed for tests).
geo::LonLat sample_region_ignition(const SharedInputs& inputs,
                                   synth::Rng& rng);

// One member's season outcome (kept per member for exceedance curves and
// the quarantine-exclusion accounting).
struct MemberStats {
  double user_hours = 0.0;  // total user-hours lost, all causes
  double power_user_hours = 0.0;
  double damage_user_hours = 0.0;
  double transport_user_hours = 0.0;
  // Person-days of population inside an active fire perimeter.
  double pop_exposure = 0.0;
  // User-hours lost at sites that were inside an active fire while out —
  // the fire+outage overlap family (people in the burn zone with no
  // service).
  double overlap_user_hours = 0.0;
  std::uint32_t fires = 0;
  std::uint32_t outage_site_days = 0;
  std::uint8_t quarantined = 0;
};

struct ExceedancePoint {
  double user_hours = 0.0;   // threshold
  double probability = 0.0;  // P(member total >= threshold)
};

struct EnsembleReport {
  std::uint32_t members = 0;      // scheduled
  std::uint32_t quarantined = 0;  // excluded by the fault seam
  std::uint32_t sites = 0;
  std::uint64_t fires = 0;
  std::uint64_t outage_site_days = 0;
  // Means over the non-quarantined members.
  double expected_user_hours = 0.0;
  double expected_power_user_hours = 0.0;
  double expected_pop_exposure = 0.0;
  double expected_overlap_user_hours = 0.0;
  std::vector<MemberStats> member_stats;  // size == members
  // Per region site (index-aligned with SharedInputs::sites).
  std::vector<double> site_expected_user_hours;
  std::vector<double> site_expected_power_user_hours;
  std::vector<double> site_outage_probability;  // P(>= 1 outage day)
  std::vector<ExceedancePoint> exceedance;  // member-total curve
  // Site indices, most fragile first (expected user-hours desc, id asc —
  // a total order, so the ranking is reproducible byte-for-byte).
  std::vector<std::uint32_t> fragile_order;

  std::uint32_t effective_members() const { return members - quarantined; }
};

// Runs the ensemble. `plan` (optional) applies a hardening overlay to
// every member. Deterministic in (inputs, config, plan) at any thread
// count.
EnsembleReport run_ensemble(const SharedInputs& inputs,
                            const EnsembleConfig& config,
                            const HardeningPlan* plan = nullptr);

// The served fragility row: top-K projection of a report.
struct FragileSite {
  std::uint32_t site = 0;  // index into SharedInputs::sites
  geo::LonLat position;
  double users = 0.0;
  double expected_user_hours = 0.0;
  double power_share = 0.0;  // fraction of the loss that is power-caused
  double outage_probability = 0.0;
};

std::vector<FragileSite> top_k_fragile(const SharedInputs& inputs,
                                       const EnsembleReport& report,
                                       std::uint32_t k);

}  // namespace fa::ensemble

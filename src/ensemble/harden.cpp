#include "ensemble/harden.hpp"

#include <algorithm>
#include <queue>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace fa::ensemble {

namespace {

// Candidate actions: site battery upgrades [0, n_sites), feeder rebuilds
// [n_sites, n_sites + n_feeders).
struct Candidate {
  std::uint32_t id = 0;
  double gain = 0.0;   // cached marginal gain (may be stale)
  int round = -1;      // selection round the gain was computed in
};

struct ByRatio {
  const std::vector<std::uint32_t>* cost;
  bool operator()(const Candidate& a, const Candidate& b) const {
    const double ra = a.gain / (*cost)[a.id];
    const double rb = b.gain / (*cost)[b.id];
    // Max-heap on gain/cost; ties broken by id so the selection order
    // (and therefore the plan) is a pure function of the inputs.
    return ra != rb ? ra < rb : a.id > b.id;
  }
};

}  // namespace

HardeningPlan optimize_hardening(const SharedInputs& inputs,
                                 const EnsembleReport& baseline,
                                 const HardenConfig& config) {
  const obs::Span span(obs::metrics::kEnsembleOptimizeNs);
  obs::count(obs::metrics::kEnsembleOptimizerRuns);

  const std::size_t n_sites = inputs.sites.size();
  const std::size_t n_feeders = inputs.grid.feeders().size();
  const std::vector<double>& w = baseline.site_expected_power_user_hours;

  // Coverage state: how much of site i's power loss is already removed.
  std::vector<double> covered(n_sites, 0.0);
  std::vector<std::uint8_t> site_upgraded(n_sites, 0);
  std::vector<std::uint8_t> feeder_done(n_feeders, 0);

  const auto marginal = [&](std::uint32_t id) {
    if (id < n_sites) {
      return site_upgraded[id] != 0 ? 0.0 : w[id] * (1.0 - covered[id]);
    }
    const std::uint32_t f = id - static_cast<std::uint32_t>(n_sites);
    if (feeder_done[f] != 0) return 0.0;
    double gain = 0.0;
    for (const std::uint32_t i : inputs.grid.feeders()[f].sites) {
      if (site_upgraded[i] == 0) {
        // Hardening lifts coverage from covered[i] to at least rho.
        gain += w[i] * std::max(0.0, config.feeder_rho - covered[i]);
      }
    }
    return gain;
  };

  std::vector<std::uint32_t> cost(n_sites + n_feeders, config.site_cost);
  for (std::size_t f = 0; f < n_feeders; ++f) {
    cost[n_sites + f] = config.feeder_cost;
  }

  std::priority_queue<Candidate, std::vector<Candidate>, ByRatio> heap{
      ByRatio{&cost}};
  std::uint64_t evals = 0;
  for (std::uint32_t id = 0; id < n_sites + n_feeders; ++id) {
    const double g = marginal(id);
    ++evals;
    if (g > 0.0) heap.push(Candidate{id, g, 0});
  }

  HardeningPlan plan;
  std::uint32_t remaining = config.budget;
  const std::uint32_t min_cost = std::min(config.site_cost, config.feeder_cost);
  int round = 0;
  while (remaining >= min_cost && !heap.empty()) {
    Candidate top = heap.top();
    heap.pop();
    if (cost[top.id] > remaining) continue;  // can't afford; drop
    if (top.round != round) {
      // Stale gain (something was selected since it was computed):
      // re-evaluate lazily and push back — submodularity guarantees the
      // refreshed gain can only shrink, so the heap order stays valid.
      top.gain = marginal(top.id);
      ++evals;
      top.round = round;
      if (top.gain > 0.0) heap.push(top);
      continue;
    }
    if (top.gain <= 0.0) break;
    // Buy it.
    if (top.id < n_sites) {
      site_upgraded[top.id] = 1;
      covered[top.id] = 1.0;
      if (plan.site_battery_hours.empty()) {
        plan.site_battery_hours.assign(n_sites, 0.0);
      }
      plan.site_battery_hours[top.id] = config.upgraded_battery_hours;
    } else {
      const std::uint32_t f = top.id - static_cast<std::uint32_t>(n_sites);
      feeder_done[f] = 1;
      if (plan.feeder_hardened.empty()) {
        plan.feeder_hardened.assign(n_feeders, 0);
      }
      plan.feeder_hardened[f] = 1;
      for (const std::uint32_t i : inputs.grid.feeders()[f].sites) {
        covered[i] = std::max(covered[i], config.feeder_rho);
      }
    }
    plan.predicted_savings += top.gain;
    plan.budget_spent += cost[top.id];
    remaining -= cost[top.id];
    ++round;
  }
  obs::count(obs::metrics::kEnsembleOptimizerEvals, evals);
  return plan;
}

HardeningPlan random_hardening(const SharedInputs& inputs,
                               const HardenConfig& config,
                               std::uint64_t seed) {
  const std::size_t n_sites = inputs.sites.size();
  const std::size_t n_feeders = inputs.grid.feeders().size();
  synth::Rng rng(seed ^ 0xBA5E11AEULL);

  // Seeded Fisher-Yates over the full candidate pool, bought in order
  // until the budget runs out — what an uninformed allocation buys.
  std::vector<std::uint32_t> order(n_sites + n_feeders);
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }

  HardeningPlan plan;
  std::uint32_t remaining = config.budget;
  for (const std::uint32_t id : order) {
    const std::uint32_t c =
        id < n_sites ? config.site_cost : config.feeder_cost;
    if (c > remaining) continue;
    if (id < n_sites) {
      if (plan.site_battery_hours.empty()) {
        plan.site_battery_hours.assign(n_sites, 0.0);
      }
      plan.site_battery_hours[id] = config.upgraded_battery_hours;
    } else {
      if (plan.feeder_hardened.empty()) {
        plan.feeder_hardened.assign(n_feeders, 0);
      }
      plan.feeder_hardened[id - n_sites] = 1;
    }
    plan.budget_spent += c;
    remaining -= c;
    if (remaining == 0) break;
  }
  return plan;
}

}  // namespace fa::ensemble

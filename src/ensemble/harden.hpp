// Budgeted hardening optimizer over an ensemble baseline.
//
// The restoration-market framing: a fixed budget of physical upgrades —
// long-duration site batteries and fire-safe feeder rebuilds — allocated
// to minimize expected user-hours lost across the ensemble. The
// objective is a coverage function over the baseline's per-site expected
// power-loss: a battery upgrade removes a site's power loss entirely, a
// hardened feeder removes a `feeder_rho` share for every still-stock
// site it serves. That structure is submodular (upgrades overlap, they
// never amplify), so lazy greedy (CELF) carries the classic (1 - 1/e)
// guarantee while evaluating only a fraction of the candidate pool.
//
// The plan is a *prediction*; re-run the ensemble with it (and with
// random_hardening at the same budget) to measure realized savings —
// bench_ensemble gates on greedy beating random.
#pragma once

#include "ensemble/ensemble.hpp"

namespace fa::ensemble {

struct HardenConfig {
  std::uint32_t budget = 24;  // upgrade points to spend
  std::uint32_t site_cost = 1;
  std::uint32_t feeder_cost = 4;
  // Upgraded on-site backup: 48 h x the simulator's 0.5..1.5 draw is
  // always >= 24 h, so an upgraded site never takes a power outage.
  double upgraded_battery_hours = 48.0;
  // Share of a stock site's power loss removed by hardening its feeder
  // (PSPS-exempt below extreme wind; extreme days still shut it off).
  double feeder_rho = 0.7;
};

// Lazy-greedy allocation against `baseline` (an unhardened run over the
// same inputs). Deterministic in (inputs, baseline, config).
HardeningPlan optimize_hardening(const SharedInputs& inputs,
                                 const EnsembleReport& baseline,
                                 const HardenConfig& config = {});

// Seeded random allocation at the same budget/costs — the control arm.
HardeningPlan random_hardening(const SharedInputs& inputs,
                               const HardenConfig& config, std::uint64_t seed);

}  // namespace fa::ensemble

#include "ensemble/ensemble.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "powergrid/psps.hpp"

namespace fa::ensemble {

namespace {

// Relative ignition likelihood per WHP class (mirrors the firesim
// season sampler: starts concentrate where fuels are).
double ignition_weight(synth::WhpClass cls) {
  switch (cls) {
    case synth::WhpClass::kNonBurnable: return 0.0;
    case synth::WhpClass::kVeryLow: return 0.4;
    case synth::WhpClass::kLow: return 1.2;
    case synth::WhpClass::kModerate: return 4.0;
    case synth::WhpClass::kHigh: return 9.0;
    case synth::WhpClass::kVeryHigh: return 16.0;
  }
  return 0.0;
}

}  // namespace

SharedInputs SharedInputs::build(const core::World& world,
                                 const EnsembleConfig& config) {
  const obs::Span span(obs::metrics::kEnsembleInputsNs);
  SharedInputs in;
  in.world = &world;

  const synth::UsAtlas& atlas = world.atlas();
  in.region_state = atlas.state_index(config.region);
  if (in.region_state < 0) {
    throw std::invalid_argument("ensemble: unknown region '" + config.region +
                                "'");
  }

  // Region corpus -> inferred sites (same clustering as the case study).
  std::vector<cellnet::Transceiver> txr;
  for (const cellnet::Transceiver& t : world.corpus().transceivers()) {
    if (t.state == in.region_state) txr.push_back(t);
  }
  const cellnet::CellCorpus region_corpus{std::move(txr)};
  in.sites = region_corpus.infer_sites(120.0);

  // The physical substrate is a property of the world, not of the
  // ensemble draw: grid topology and ignition tables key off the
  // scenario seed so every ensemble (any config.seed) sees the same
  // infrastructure.
  const std::uint64_t world_seed = world.config().seed;
  in.grid = powergrid::GridModel::build(in.sites, world.whp(), atlas,
                                        world_seed ^ 0xE45E3B1EULL);
  in.feeder_plan = powergrid::to_feeder_plan(in.grid);
  in.population = std::make_unique<synth::PopulationSurface>(
      synth::PopulationSurface::build(atlas, world.config()));
  in.fire_proto = std::make_unique<firesim::FireSimulator>(
      world.whp(), atlas, world_seed ^ 0xF14EF04CULL);

  // Users served per site: the population cell's persons split evenly
  // among the sites sharing it.
  const raster::Raster<float>& pop = in.population->grid();
  const geo::AlbersConus& proj = in.population->projection();
  std::unordered_map<std::uint64_t, std::uint32_t> sites_in_cell;
  std::vector<std::uint64_t> cell_of(in.sites.size(), ~0ULL);
  for (std::size_t i = 0; i < in.sites.size(); ++i) {
    const geo::Vec2 xy = proj.forward(in.sites[i].position);
    const int c = pop.geom().col_of(xy.x);
    const int r = pop.geom().row_of(xy.y);
    if (!pop.geom().in_bounds(c, r)) continue;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(r)) << 32) |
        static_cast<std::uint32_t>(c);
    cell_of[i] = key;
    ++sites_in_cell[key];
  }
  in.site_users.assign(in.sites.size(), 0.0);
  in.site_x.resize(in.sites.size());
  in.site_y.resize(in.sites.size());
  for (std::size_t i = 0; i < in.sites.size(); ++i) {
    const geo::Vec2 p = in.sites[i].position.as_vec();
    in.site_x[i] = p.x;
    in.site_y[i] = p.y;
    if (cell_of[i] == ~0ULL) continue;
    const double persons = in.population->population_at(in.sites[i].position);
    in.site_users[i] = persons / sites_in_cell[cell_of[i]];
    in.region_users += in.site_users[i];
  }

  // Region-restricted ignition CDF over burnable WHP cells. The WHP
  // state grid is cell-aligned with the class grid, so membership is one
  // lookup per cell.
  const raster::ClassRaster& grid = world.whp().grid();
  const raster::Raster<std::int16_t>& states = world.whp().state_grid();
  double acc = 0.0;
  for (std::uint32_t i = 0; i < grid.data().size(); ++i) {
    if (states.data()[i] != in.region_state) continue;
    const double w =
        ignition_weight(static_cast<synth::WhpClass>(grid.data()[i]));
    if (w <= 0.0) continue;
    acc += w;
    in.ignition_cdf.push_back(acc);
    in.ignition_cells.push_back(i);
  }
  if (in.ignition_cdf.empty()) {
    throw std::invalid_argument("ensemble: region '" + config.region +
                                "' has no burnable cells");
  }
  return in;
}

geo::LonLat sample_region_ignition(const SharedInputs& inputs,
                                   synth::Rng& rng) {
  const double target = rng.uniform() * inputs.ignition_cdf.back();
  const auto it = std::lower_bound(inputs.ignition_cdf.begin(),
                                   inputs.ignition_cdf.end(), target);
  const std::size_t k = static_cast<std::size_t>(
      std::distance(inputs.ignition_cdf.begin(), it));
  const std::uint32_t cell = inputs.ignition_cells[k];
  const raster::GridGeometry& geom = inputs.world->whp().grid().geom();
  const int c = static_cast<int>(cell % static_cast<std::uint32_t>(geom.cols));
  const int r = static_cast<int>(cell / static_cast<std::uint32_t>(geom.cols));
  const geo::Vec2 xy{geom.origin_x + (c + rng.uniform()) * geom.cell_w,
                     geom.origin_y + (r + rng.uniform()) * geom.cell_h};
  return inputs.world->whp().projection().inverse(xy);
}

}  // namespace fa::ensemble

// fa::exec — the parallel execution substrate: a dependency-free
// work-stealing thread pool with deterministic chunked parallel_for /
// parallel_reduce.
//
// Determinism contract: the decomposition of an iteration space into
// chunks depends only on (n, grain) — never on the worker count or on
// runtime scheduling. Chunk outputs are written to chunk-indexed slots
// (parallel_reduce combines partials serially in chunk order), so a
// region produces bit-identical results at any thread count, including
// the inline serial path. Which *worker* runs a chunk is scheduling-
// dependent; per-worker scratch is therefore for buffer reuse only,
// never for result accumulation.
//
// Exception propagation: the first exception thrown by a chunk body is
// captured, remaining chunks are cancelled (claimed but not executed),
// and the exception is rethrown on the calling thread.
//
// Nested parallelism: a region launched from inside a worker runs its
// chunks inline and serially on that worker — safe by construction, no
// pool re-entry, same chunk decomposition.
#pragma once

#include <algorithm>
#include <atomic>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace fa::exec {

// Default iterations per chunk when the caller does not specify a grain.
inline constexpr std::size_t kDefaultGrain = 1024;
// Upper bound on chunks per region; keeps scheduling state small while
// leaving plenty of slack for stealing (64x a typical worker count).
inline constexpr std::size_t kMaxChunks = 4096;

struct ExecOptions {
  // Target iterations per chunk (0 = kDefaultGrain). Part of the chunk
  // plan, so changing it changes float-reduction results; thread count
  // never does.
  std::size_t grain = 0;
  // Cap on worker threads for this region (0 = no cap). Results are
  // identical regardless; this is a throughput knob.
  int max_threads = 0;
  // Inline threshold for latency-sensitive callers (the serve batcher):
  // when 0 < n < min_parallel the region runs on the calling thread via
  // the pool's serial inline path instead of waking workers, skipping
  // the dispatch/park round-trip that dominates tiny batches. The chunk
  // plan is unchanged, so results stay bit-identical either way.
  std::size_t min_parallel = 0;
};

namespace detail {
// Resolves the ExecOptions thread cap: the min_parallel hook forces the
// serial inline path for small regions by capping workers at one.
inline int region_thread_cap(std::size_t n, const ExecOptions& opt) {
  if (opt.min_parallel != 0 && n < opt.min_parallel) return 1;
  return opt.max_threads;
}
}  // namespace detail

// The deterministic chunk decomposition of [0, n).
struct ChunkPlan {
  std::size_t n = 0;
  std::size_t chunks = 0;

  static ChunkPlan make(std::size_t n, std::size_t grain) {
    ChunkPlan plan;
    plan.n = n;
    if (n == 0) return plan;
    if (grain == 0) grain = kDefaultGrain;
    plan.chunks = std::min((n + grain - 1) / grain, kMaxChunks);
    return plan;
  }
  std::pair<std::size_t, std::size_t> bounds(std::size_t chunk) const {
    return {n * chunk / chunks, n * (chunk + 1) / chunks};
  }
};

// Non-owning reference to a chunk body `void(chunk, worker)`; avoids a
// std::function allocation per region.
class ChunkFnRef {
 public:
  // Constrained so copying a ChunkFnRef uses the copy constructor —
  // an unconstrained F& overload would win against it for lvalues and
  // wrap a pointer to the (shorter-lived) ChunkFnRef itself.
  template <class F>
    requires(!std::same_as<std::remove_cvref_t<F>, ChunkFnRef>)
  ChunkFnRef(F& f)  // NOLINT(google-explicit-constructor)
      : obj_(&f), call_([](void* o, std::size_t chunk, int worker) {
          (*static_cast<F*>(o))(chunk, worker);
        }) {}
  ChunkFnRef(const ChunkFnRef&) = default;
  ChunkFnRef& operator=(const ChunkFnRef&) = default;
  void operator()(std::size_t chunk, int worker) const {
    call_(obj_, chunk, worker);
  }

 private:
  void* obj_;
  void (*call_)(void*, std::size_t, int);
};

// Work-stealing pool. Workers own contiguous spans of the chunk array,
// pop from the front of their own span and steal the back half of a
// victim's span when theirs runs dry. One region runs at a time; the
// calling thread participates as worker 0.
class ThreadPool {
 public:
  // threads == 0: FA_THREADS env if set, else max(hardware_concurrency,
  // kMinDefaultWorkers) so thread-count sweeps work on small machines.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total workers including the caller (>= 1).
  int max_workers() const { return max_workers_; }

  // Process-wide pool used by the parallel_* algorithms.
  static ThreadPool& global();

  // Invokes fn(chunk, worker) exactly once per chunk in [0, num_chunks),
  // blocking until all complete; rethrows the first chunk exception.
  // worker ids are in [0, max_workers()). max_threads caps parallelism
  // for this region only (0 = all workers).
  void run(std::size_t num_chunks, ChunkFnRef fn, int max_threads = 0);

  // True on threads currently executing a chunk body (used to run nested
  // regions inline).
  static bool on_worker_thread();

  static constexpr int kMinDefaultWorkers = 8;
  static constexpr int kMaxWorkers = 256;

 private:
  struct Job;
  struct Impl;
  void worker_loop(int worker_id);
  static void work(Job& job, int worker_id);

  Impl* impl_;
  int max_workers_ = 1;
};

// Scoped cap on the workers used by regions launched from this thread
// (including regions inside library calls). 1 forces the serial inline
// path. Results are unaffected — see the determinism contract.
class ConcurrencyLimit {
 public:
  explicit ConcurrencyLimit(int max_threads);
  ~ConcurrencyLimit();
  ConcurrencyLimit(const ConcurrencyLimit&) = delete;
  ConcurrencyLimit& operator=(const ConcurrencyLimit&) = delete;

  // The cap active on this thread (0 = none).
  static int current();

 private:
  int previous_;
};

struct ChunkContext {
  std::size_t chunk = 0;  // deterministic: index into the chunk plan
  int worker = 0;         // scheduling-dependent: scratch slot only
};

// body(begin, end, ChunkContext) per chunk. The workhorse primitive.
template <class Body>
void parallel_for_chunks(std::size_t n, Body&& body, ExecOptions opt = {}) {
  const ChunkPlan plan = ChunkPlan::make(n, opt.grain);
  if (plan.chunks == 0) return;
  auto chunk_fn = [&plan, &body](std::size_t chunk, int worker) {
    const auto [begin, end] = plan.bounds(chunk);
    body(begin, end, ChunkContext{chunk, worker});
  };
  ThreadPool::global().run(plan.chunks, ChunkFnRef(chunk_fn),
                           detail::region_thread_cap(n, opt));
}

// body(i) for every i in [0, n), grouped into chunks.
template <class Body>
void parallel_for(std::size_t n, Body&& body, ExecOptions opt = {}) {
  parallel_for_chunks(
      n,
      [&body](std::size_t begin, std::size_t end, ChunkContext) {
        for (std::size_t i = begin; i < end; ++i) body(i);
      },
      opt);
}

// map(begin, end, T& acc) accumulates a chunk into a zero-initialized
// (copy of `identity`) partial; combine(T& into, T&& part) folds the
// partials serially in chunk order. Deterministic for floats.
template <class T, class Map, class Combine>
T parallel_reduce(std::size_t n, T identity, Map&& map, Combine&& combine,
                  ExecOptions opt = {}) {
  const ChunkPlan plan = ChunkPlan::make(n, opt.grain);
  T total = std::move(identity);
  if (plan.chunks == 0) return total;
  std::vector<T> parts(plan.chunks, total);
  auto chunk_fn = [&plan, &map, &parts](std::size_t chunk, int worker) {
    (void)worker;
    const auto [begin, end] = plan.bounds(chunk);
    map(begin, end, parts[chunk]);
  };
  ThreadPool::global().run(plan.chunks, ChunkFnRef(chunk_fn),
                           detail::region_thread_cap(n, opt));
  for (T& part : parts) combine(total, std::move(part));
  return total;
}

// One slot per pool worker, for reusable buffers inside chunk bodies
// (index with ChunkContext::worker). Slot contents after a region are
// scheduling-dependent — never fold them into results.
template <class T>
class WorkerScratch {
 public:
  explicit WorkerScratch(T init = T{})
      : slots_(static_cast<std::size_t>(ThreadPool::global().max_workers()),
               std::move(init)) {}
  T& at(int worker) { return slots_[static_cast<std::size_t>(worker)]; }
  std::size_t size() const { return slots_.size(); }

 private:
  std::vector<T> slots_;
};

}  // namespace fa::exec

#include "exec/exec.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <optional>
#include <string>

#include "fault/injector.hpp"
#include "obs/obs.hpp"

namespace fa::exec {

namespace {

thread_local bool t_on_worker = false;
thread_local int t_concurrency_limit = 0;

int default_worker_count() {
  if (const char* env = std::getenv("FA_THREADS");
      env != nullptr && *env != '\0') {
    const int parsed = std::atoi(env);
    if (parsed >= 1) return std::min(parsed, ThreadPool::kMaxWorkers);
  }
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  // Headroom above the core count so thread-count sweeps (benches, the
  // determinism tests) exercise real multi-worker scheduling even on
  // small machines; surplus workers park on a condition variable.
  return std::clamp(std::max(hw, ThreadPool::kMinDefaultWorkers), 1,
                    ThreadPool::kMaxWorkers);
}

// Per-region instrumentation handles, resolved once per work()/run()
// call so the per-chunk path never takes the registry lock. The chunk
// count is part of the deterministic chunk plan, so "exec.chunks" is
// identical at any thread count; "exec.steals" and the queue-depth
// histogram are scheduling-dependent by nature and excluded from the
// additivity contract (see obs.hpp).
struct ExecObs {
  obs::Counter* chunks = nullptr;
  obs::Counter* steals = nullptr;
  obs::Histogram* chunk_ns = nullptr;
  obs::Histogram* queue_depth = nullptr;
  obs::Registry* registry = nullptr;

  static ExecObs resolve() {
    ExecObs handles;
    if (!obs::enabled()) return handles;
    obs::Registry& reg = obs::Registry::global();
    handles.registry = &reg;
    handles.chunks = &reg.counter("exec.chunks");
    handles.steals = &reg.counter("exec.steals");
    handles.chunk_ns = &reg.histogram("exec.chunk_ns");
    handles.queue_depth = &reg.histogram("exec.queue_depth");
    return handles;
  }
};

// Packs a [lo, hi) chunk span into one atomic word for CAS claiming.
std::uint64_t pack_span(std::uint32_t lo, std::uint32_t hi) {
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}
std::uint32_t span_lo(std::uint64_t s) {
  return static_cast<std::uint32_t>(s >> 32);
}
std::uint32_t span_hi(std::uint64_t s) {
  return static_cast<std::uint32_t>(s & 0xFFFFFFFFULL);
}

}  // namespace

struct ThreadPool::Job {
  Job(std::size_t chunks, ChunkFnRef fn, int workers)
      : fn(fn),
        num_chunks(chunks),
        active_workers(workers),
        slots(static_cast<std::size_t>(workers)) {
    // Contiguous spans per worker; stealing rebalances at runtime, the
    // decomposition itself stays thread-count-independent (chunks are).
    const auto w = static_cast<std::size_t>(workers);
    for (std::size_t i = 0; i < w; ++i) {
      slots[i].store(pack_span(static_cast<std::uint32_t>(chunks * i / w),
                               static_cast<std::uint32_t>(chunks * (i + 1) / w)),
                     std::memory_order_relaxed);
    }
  }

  // Pops the front chunk of `worker`'s own span.
  std::optional<std::size_t> take_front(int worker) {
    std::atomic<std::uint64_t>& slot = slots[static_cast<std::size_t>(worker)];
    std::uint64_t s = slot.load(std::memory_order_acquire);
    while (span_lo(s) < span_hi(s)) {
      if (slot.compare_exchange_weak(s, pack_span(span_lo(s) + 1, span_hi(s)),
                                     std::memory_order_acq_rel)) {
        return span_lo(s);
      }
    }
    return std::nullopt;
  }

  // Steals the back half of some other worker's span into `worker`'s
  // (empty) slot, returning the first stolen chunk.
  std::optional<std::size_t> steal(int worker) {
    const int w = active_workers;
    for (int delta = 1; delta < w; ++delta) {
      const int victim = (worker + delta) % w;
      std::atomic<std::uint64_t>& slot =
          slots[static_cast<std::size_t>(victim)];
      std::uint64_t s = slot.load(std::memory_order_acquire);
      while (true) {
        const std::uint32_t lo = span_lo(s);
        const std::uint32_t hi = span_hi(s);
        if (lo >= hi) break;
        const std::uint32_t mid = hi - lo >= 2 ? lo + (hi - lo) / 2 : lo;
        if (!slot.compare_exchange_weak(s, pack_span(lo, mid),
                                        std::memory_order_acq_rel)) {
          continue;
        }
        // Stolen [mid, hi) (== [lo, hi) when the victim had one chunk):
        // execute `mid` now, park the rest in our own slot.
        if (mid + 1 < hi) {
          slots[static_cast<std::size_t>(worker)].store(
              pack_span(mid + 1, hi), std::memory_order_release);
        }
        return mid;
      }
    }
    return std::nullopt;
  }

  void record_error(std::exception_ptr err) {
    {
      const std::lock_guard<std::mutex> lock(error_mu);
      if (!error) error = std::move(err);
    }
    cancelled.store(true, std::memory_order_release);
  }

  ChunkFnRef fn;
  std::size_t num_chunks;
  int active_workers;
  std::vector<std::atomic<std::uint64_t>> slots;
  std::atomic<std::size_t> done{0};
  std::atomic<bool> cancelled{false};
  std::mutex error_mu;
  std::exception_ptr error;
  int joined = 0;  // workers inside work(); guarded by Impl::mu
};

struct ThreadPool::Impl {
  std::mutex run_mu;  // serializes parallel regions
  std::mutex mu;      // guards job/epoch/stop/Job::joined
  std::condition_variable cv;
  Job* job = nullptr;
  std::uint64_t epoch = 0;
  bool stop = false;
  std::vector<std::thread> threads;
};

ThreadPool::ThreadPool(int threads) : impl_(new Impl) {
  max_workers_ =
      threads >= 1 ? std::min(threads, kMaxWorkers) : default_worker_count();
  impl_->threads.reserve(static_cast<std::size_t>(max_workers_ - 1));
  for (int id = 1; id < max_workers_; ++id) {
    impl_->threads.emplace_back([this, id] { worker_loop(id); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  for (std::thread& t : impl_->threads) t.join();
  delete impl_;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

void ThreadPool::work(Job& job, int worker_id) {
  const bool was_on_worker = t_on_worker;
  t_on_worker = true;
  const fault::Injector& inj = fault::Injector::global();
  const ExecObs ob = ExecObs::resolve();
  while (true) {
    std::optional<std::size_t> chunk = job.take_front(worker_id);
    if (!chunk) {
      chunk = job.steal(worker_id);
      if (chunk && ob.steals != nullptr) ob.steals->add();
    }
    if (!chunk) break;
    if (!job.cancelled.load(std::memory_order_acquire)) {
      try {
        if (inj.armed()) inj.fail_point("exec.chunk", *chunk);
        if (ob.registry != nullptr) {
          ob.queue_depth->record(
              job.num_chunks - job.done.load(std::memory_order_relaxed));
          const std::uint64_t t0 = ob.registry->now_ns();
          job.fn(*chunk, worker_id);
          ob.chunk_ns->record(ob.registry->now_ns() - t0);
          ob.chunks->add();
        } else {
          job.fn(*chunk, worker_id);
        }
      } catch (...) {
        job.record_error(std::current_exception());
      }
    }
    job.done.fetch_add(1, std::memory_order_acq_rel);
  }
  t_on_worker = was_on_worker;
}

void ThreadPool::worker_loop(int worker_id) {
  std::uint64_t seen = 0;
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(impl_->mu);
      impl_->cv.wait(lock, [&] {
        return impl_->stop || (impl_->job != nullptr && impl_->epoch != seen);
      });
      if (impl_->stop) return;
      seen = impl_->epoch;
      if (worker_id >= impl_->job->active_workers) continue;
      job = impl_->job;
      ++job->joined;
    }
    work(*job, worker_id);
    {
      const std::lock_guard<std::mutex> lock(impl_->mu);
      --job->joined;
    }
    impl_->cv.notify_all();
  }
}

void ThreadPool::run(std::size_t num_chunks, ChunkFnRef fn, int max_threads) {
  if (num_chunks == 0) return;
  int workers = max_workers_;
  if (max_threads >= 1) workers = std::min(workers, max_threads);
  if (const int limit = ConcurrencyLimit::current(); limit >= 1) {
    workers = std::min(workers, limit);
  }
  workers = std::min(workers, static_cast<int>(num_chunks));

  // Serial inline path: nested region, single worker, or a single chunk.
  // Same chunk decomposition, executed in chunk order on this thread.
  // Chunk accounting matches the pooled path exactly, so "exec.chunks"
  // and "exec.regions" are invariant across thread counts.
  if (t_on_worker || workers <= 1) {
    const bool was_on_worker = t_on_worker;
    t_on_worker = true;
    const fault::Injector& inj = fault::Injector::global();
    const ExecObs ob = ExecObs::resolve();
    if (ob.registry != nullptr) {
      ob.registry->counter("exec.regions").add();
      ob.registry->counter("exec.inline_regions").add();
    }
    try {
      for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
        if (inj.armed()) inj.fail_point("exec.chunk", chunk);
        if (ob.registry != nullptr) {
          ob.queue_depth->record(num_chunks - chunk);
          const std::uint64_t t0 = ob.registry->now_ns();
          fn(chunk, 0);
          ob.chunk_ns->record(ob.registry->now_ns() - t0);
          ob.chunks->add();
        } else {
          fn(chunk, 0);
        }
      }
    } catch (...) {
      t_on_worker = was_on_worker;
      throw;
    }
    t_on_worker = was_on_worker;
    return;
  }

  obs::Span region_span("exec.region");
  obs::count("exec.regions");
  const std::lock_guard<std::mutex> region(impl_->run_mu);
  Job job(num_chunks, fn, workers);
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->job = &job;
    ++impl_->epoch;
  }
  impl_->cv.notify_all();
  work(job, 0);
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->cv.wait(lock, [&] {
      return job.done.load(std::memory_order_acquire) == num_chunks &&
             job.joined == 0;
    });
    impl_->job = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

ConcurrencyLimit::ConcurrencyLimit(int max_threads)
    : previous_(t_concurrency_limit) {
  t_concurrency_limit = std::max(0, max_threads);
}

ConcurrencyLimit::~ConcurrencyLimit() { t_concurrency_limit = previous_; }

int ConcurrencyLimit::current() { return t_concurrency_limit; }

}  // namespace fa::exec

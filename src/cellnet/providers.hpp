// MCC/MNC -> service-provider resolution (paper Section 3.5).
//
// The four national carriers of 2019 (AT&T, T-Mobile, Sprint, Verizon)
// each own many MNCs accumulated through mergers; the registry below
// cross-references the identifier blocks the way the paper did with
// mcc-mnc.com and IFAST, plus a tail of regional carriers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fa::cellnet {

enum class Provider : std::uint8_t {
  kAtt,
  kTMobile,
  kSprint,
  kVerizon,
  kRegional,  // any of the ~46 smaller carriers
};

inline constexpr int kNumProviders = 5;

std::string_view provider_name(Provider p);

struct MncRecord {
  std::uint16_t mcc;
  std::uint16_t mnc;
  Provider provider;
  std::string_view brand;  // operating brand for this identifier block
};

class ProviderRegistry {
 public:
  // Builds the built-in registry (US MCCs 310..316).
  ProviderRegistry();

  // Resolves an identifier pair; unknown pairs map to kRegional with a
  // synthesized brand, mirroring how the paper buckets the long tail.
  Provider resolve(std::uint16_t mcc, std::uint16_t mnc) const;
  // Brand string for diagnostics ("AT&T Mobility", "Cellcom", ...).
  std::string_view brand(std::uint16_t mcc, std::uint16_t mnc) const;

  // All identifier blocks registered for `p` (used by the generator to
  // stamp realistic MCC/MNC pairs onto synthetic transceivers).
  std::vector<MncRecord> blocks_of(Provider p) const;

  std::size_t size() const { return records_.size(); }
  // Number of distinct regional brands (the paper footnotes 46).
  std::size_t regional_brand_count() const;

 private:
  const MncRecord* find(std::uint16_t mcc, std::uint16_t mnc) const;
  std::vector<MncRecord> records_;  // sorted by (mcc, mnc)
};

}  // namespace fa::cellnet

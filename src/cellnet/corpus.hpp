// The transceiver corpus: container + statistics + tower inference +
// OpenCelliD-schema CSV round-trip.
#pragma once

#include <array>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "cellnet/providers.hpp"
#include "cellnet/types.hpp"
#include "fault/diagnostics.hpp"

namespace fa::cellnet {

class CellCorpus {
 public:
  CellCorpus() = default;
  explicit CellCorpus(std::vector<Transceiver> transceivers);

  const std::vector<Transceiver>& transceivers() const { return txr_; }
  std::size_t size() const { return txr_.size(); }
  bool empty() const { return txr_.empty(); }
  const Transceiver& operator[](std::size_t i) const { return txr_[i]; }

  // Count per radio technology (indexed by RadioType).
  std::array<std::size_t, kNumRadioTypes> count_by_radio() const;
  // Count per provider resolved through `registry`.
  std::array<std::size_t, kNumProviders> count_by_provider(
      const ProviderRegistry& registry) const;

  // Groups transceivers that report the same rounded position into cell
  // sites (co-location inference; see Section 2.2.3 for why this is an
  // approximation). `merge_dist_m` controls the rounding granularity.
  std::vector<CellSite> infer_sites(double merge_dist_m = 50.0) const;

  // Moves the transceivers out (degraded-mode ingestion validates and
  // re-densifies records without copying).
  std::vector<Transceiver> take_transceivers() && { return std::move(txr_); }

 private:
  std::vector<Transceiver> txr_;
};

// OpenCelliD CSV schema:
//   radio,mcc,net,area,cell,unit,lon,lat,range,samples,changeable,created,
//   updated,averageSignal
// Only the columns the analysis consumes (radio, mcc, net, cell, lon, lat)
// are meaningful here; the rest are emitted as plausible constants and
// ignored on read. Unparseable/out-of-range records are skipped and
// counted, mirroring real crowd-sourced data hygiene.
struct CsvLoadStats {
  std::size_t parsed = 0;
  std::size_t skipped = 0;
};

void write_opencellid_csv(std::ostream& out, const CellCorpus& corpus);
CellCorpus read_opencellid_csv(std::istream& in, CsvLoadStats* stats = nullptr);

// Degraded-mode loader. Per-record failures carry a Status whose offset
// is the 1-based data-record index and whose code distinguishes short
// rows (kSchema), unparseable fields (kParse), and out-of-domain
// positions (kOutOfRange).
//   Strict      first malformed record is the load's error
//   Quarantine  malformed records are dropped and counted in diagnostics
//   BestEffort  finite out-of-range coordinates are clamped into
//               [-180,180]x[-90,90] (counted as repaired); the rest drop
struct CorpusLoadOptions {
  fault::RecoveryPolicy policy = fault::RecoveryPolicy::kQuarantine;
  fault::Diagnostics* diagnostics = nullptr;  // optional sink
  std::string source = "opencellid";          // tag used in every Status
};
fault::Result<CellCorpus> load_opencellid_csv(
    std::istream& in, const CorpusLoadOptions& options = {});

}  // namespace fa::cellnet

#include "cellnet/providers.hpp"

#include <algorithm>

#include "cellnet/types.hpp"

namespace fa::cellnet {

std::string_view radio_type_name(RadioType t) {
  switch (t) {
    case RadioType::kGsm: return "GSM";
    case RadioType::kCdma: return "CDMA";
    case RadioType::kUmts: return "UMTS";
    case RadioType::kLte: return "LTE";
    case RadioType::kNr: return "NR";
  }
  return "?";
}

bool parse_radio_type(std::string_view name, RadioType& out) {
  for (int i = 0; i < kNumRadioTypes; ++i) {
    const auto t = static_cast<RadioType>(i);
    if (name == radio_type_name(t)) {
      out = t;
      return true;
    }
  }
  return false;
}

std::string_view provider_name(Provider p) {
  switch (p) {
    case Provider::kAtt: return "AT&T";
    case Provider::kTMobile: return "T-Mobile";
    case Provider::kSprint: return "Sprint";
    case Provider::kVerizon: return "Verizon";
    case Provider::kRegional: return "Others";
  }
  return "?";
}

namespace {

// Identifier blocks as of the paper's October 2019 snapshot. National
// carriers list their principal home MNCs plus blocks inherited through
// acquisitions (e.g. AT&T <- Cingular/Centennial, T-Mobile <- MetroPCS,
// Verizon <- Alltel, Sprint <- Nextel/Clearwire).
constexpr MncRecord kRecords[] = {
    // --- AT&T Mobility ---
    {310, 30, Provider::kAtt, "AT&T Mobility"},
    {310, 70, Provider::kAtt, "AT&T Mobility"},
    {310, 80, Provider::kAtt, "AT&T Mobility"},
    {310, 90, Provider::kAtt, "AT&T Mobility"},
    {310, 150, Provider::kAtt, "AT&T Mobility"},
    {310, 170, Provider::kAtt, "AT&T Mobility"},
    {310, 280, Provider::kAtt, "AT&T Mobility"},
    {310, 380, Provider::kAtt, "AT&T Mobility"},
    {310, 410, Provider::kAtt, "AT&T Mobility"},
    {310, 560, Provider::kAtt, "AT&T Mobility"},
    {310, 680, Provider::kAtt, "AT&T Mobility"},
    {310, 980, Provider::kAtt, "AT&T Mobility"},
    {311, 70, Provider::kAtt, "AT&T Mobility"},
    {311, 90, Provider::kAtt, "AT&T Mobility"},
    {311, 180, Provider::kAtt, "AT&T Mobility"},
    {311, 190, Provider::kAtt, "AT&T Mobility"},
    {312, 670, Provider::kAtt, "AT&T Mobility"},
    {313, 100, Provider::kAtt, "AT&T FirstNet"},
    // --- T-Mobile USA ---
    {310, 160, Provider::kTMobile, "T-Mobile USA"},
    {310, 200, Provider::kTMobile, "T-Mobile USA"},
    {310, 210, Provider::kTMobile, "T-Mobile USA"},
    {310, 220, Provider::kTMobile, "T-Mobile USA"},
    {310, 230, Provider::kTMobile, "T-Mobile USA"},
    {310, 240, Provider::kTMobile, "T-Mobile USA"},
    {310, 250, Provider::kTMobile, "T-Mobile USA"},
    {310, 260, Provider::kTMobile, "T-Mobile USA"},
    {310, 270, Provider::kTMobile, "T-Mobile USA"},
    {310, 300, Provider::kTMobile, "T-Mobile USA"},
    {310, 310, Provider::kTMobile, "T-Mobile USA"},
    {310, 490, Provider::kTMobile, "T-Mobile USA"},
    {310, 660, Provider::kTMobile, "MetroPCS"},
    {310, 800, Provider::kTMobile, "T-Mobile USA"},
    // --- Sprint ---
    {310, 120, Provider::kSprint, "Sprint"},
    {311, 490, Provider::kSprint, "Sprint"},
    {311, 870, Provider::kSprint, "Sprint (Boost)"},
    {311, 880, Provider::kSprint, "Sprint"},
    {312, 190, Provider::kSprint, "Sprint"},
    {316, 10, Provider::kSprint, "Sprint (Nextel)"},
    // --- Verizon Wireless ---
    {310, 4, Provider::kVerizon, "Verizon Wireless"},
    {310, 10, Provider::kVerizon, "Verizon Wireless"},
    {310, 12, Provider::kVerizon, "Verizon Wireless"},
    {310, 13, Provider::kVerizon, "Verizon Wireless"},
    {310, 590, Provider::kVerizon, "Verizon Wireless"},
    {310, 890, Provider::kVerizon, "Verizon Wireless"},
    {310, 910, Provider::kVerizon, "Verizon Wireless"},
    {311, 110, Provider::kVerizon, "Verizon Wireless"},
    {311, 270, Provider::kVerizon, "Verizon Wireless"},
    {311, 280, Provider::kVerizon, "Verizon Wireless"},
    {311, 480, Provider::kVerizon, "Verizon Wireless"},
    {311, 486, Provider::kVerizon, "Verizon Wireless"},
    // --- Regional carriers (the paper's "46 smaller providers") ---
    {310, 100, Provider::kRegional, "Plateau Wireless"},
    {310, 320, Provider::kRegional, "Cellular One of AZ"},
    {310, 350, Provider::kRegional, "Carolina West Wireless"},
    {310, 370, Provider::kRegional, "Docomo Pacific"},
    {310, 450, Provider::kRegional, "Viaero Wireless"},
    {310, 540, Provider::kRegional, "Oklahoma Western Tel"},
    {310, 570, Provider::kRegional, "Broadpoint"},
    {310, 600, Provider::kRegional, "NewCell (Cellcom)"},
    {310, 640, Provider::kRegional, "SmartCom"},
    {310, 740, Provider::kRegional, "Convey Wireless"},
    {310, 770, Provider::kRegional, "iWireless"},
    {310, 850, Provider::kRegional, "Aeris"},
    {310, 950, Provider::kRegional, "Texas RSA"},
    {311, 20, Provider::kRegional, "Missouri RSA"},
    {311, 30, Provider::kRegional, "Indigo Wireless"},
    {311, 40, Provider::kRegional, "Commnet Wireless"},
    {311, 80, Provider::kRegional, "Pine Telephone"},
    {311, 120, Provider::kRegional, "James Valley Wireless"},
    {311, 220, Provider::kRegional, "US Cellular"},
    {311, 230, Provider::kRegional, "CellSouth (C Spire)"},
    {311, 320, Provider::kRegional, "Commnet Midwest"},
    {311, 330, Provider::kRegional, "Bug Tussel Wireless"},
    {311, 340, Provider::kRegional, "Illinois Valley Cellular"},
    {311, 350, Provider::kRegional, "Nemont"},
    {311, 370, Provider::kRegional, "GCI Wireless"},
    {311, 410, Provider::kRegional, "Chat Mobility"},
    {311, 420, Provider::kRegional, "NorthwestCell"},
    {311, 430, Provider::kRegional, "Cellcom"},
    {311, 440, Provider::kRegional, "Bluegrass Cellular"},
    {311, 530, Provider::kRegional, "NewCore Wireless"},
    {311, 580, Provider::kRegional, "US Cellular"},
    {311, 650, Provider::kRegional, "United Wireless"},
    {311, 670, Provider::kRegional, "Pine Belt Wireless"},
    {311, 690, Provider::kRegional, "TeleBEEPER of NM"},
    {311, 740, Provider::kRegional, "Ltd Mobile"},
    {311, 850, Provider::kRegional, "Cellular Network Partnership"},
    {312, 30, Provider::kRegional, "Cross Wireless (Bravado)"},
    {312, 40, Provider::kRegional, "Custer Telephone"},
    {312, 60, Provider::kRegional, "CoverageCo"},
    {312, 120, Provider::kRegional, "East Kentucky Network"},
    {312, 130, Provider::kRegional, "East Kentucky Network"},
    {312, 150, Provider::kRegional, "NorthwestCell"},
    {312, 170, Provider::kRegional, "Chat Mobility"},
    {312, 260, Provider::kRegional, "NewCore Wireless"},
    {312, 270, Provider::kRegional, "Pioneer Cellular"},
    {312, 280, Provider::kRegional, "Pioneer Cellular"},
    {312, 420, Provider::kRegional, "Nex-Tech Wireless"},
    {312, 470, Provider::kRegional, "Carolina West Wireless"},
    {312, 530, Provider::kRegional, "Sprocket Wireless"},
    {312, 860, Provider::kRegional, "ClearSky Technologies"},
    {312, 900, Provider::kRegional, "ClearSky Technologies"},
    {313, 50, Provider::kRegional, "Blue Wireless"},
    {313, 60, Provider::kRegional, "Country Wireless"},
    {313, 210, Provider::kRegional, "Tulare County Office of Ed"},
    {314, 100, Provider::kRegional, "Triangle Communication"},
    {316, 11, Provider::kRegional, "Southern Communications"},
};

}  // namespace

ProviderRegistry::ProviderRegistry()
    : records_(std::begin(kRecords), std::end(kRecords)) {
  std::sort(records_.begin(), records_.end(),
            [](const MncRecord& a, const MncRecord& b) {
              return a.mcc != b.mcc ? a.mcc < b.mcc : a.mnc < b.mnc;
            });
}

const MncRecord* ProviderRegistry::find(std::uint16_t mcc,
                                        std::uint16_t mnc) const {
  const auto it = std::lower_bound(
      records_.begin(), records_.end(), std::pair{mcc, mnc},
      [](const MncRecord& r, const std::pair<std::uint16_t, std::uint16_t>& k) {
        return r.mcc != k.first ? r.mcc < k.first : r.mnc < k.second;
      });
  if (it != records_.end() && it->mcc == mcc && it->mnc == mnc) return &*it;
  return nullptr;
}

Provider ProviderRegistry::resolve(std::uint16_t mcc,
                                   std::uint16_t mnc) const {
  const MncRecord* r = find(mcc, mnc);
  return r != nullptr ? r->provider : Provider::kRegional;
}

std::string_view ProviderRegistry::brand(std::uint16_t mcc,
                                         std::uint16_t mnc) const {
  const MncRecord* r = find(mcc, mnc);
  return r != nullptr ? r->brand : "Unknown regional";
}

std::vector<MncRecord> ProviderRegistry::blocks_of(Provider p) const {
  std::vector<MncRecord> out;
  for (const MncRecord& r : records_) {
    if (r.provider == p) out.push_back(r);
  }
  return out;
}

std::size_t ProviderRegistry::regional_brand_count() const {
  std::vector<std::string_view> brands;
  for (const MncRecord& r : records_) {
    if (r.provider == Provider::kRegional) brands.push_back(r.brand);
  }
  std::sort(brands.begin(), brands.end());
  brands.erase(std::unique(brands.begin(), brands.end()), brands.end());
  return brands.size();
}

}  // namespace fa::cellnet

#include "cellnet/corpus.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "geo/geodesy.hpp"
#include "io/csv.hpp"
#include "obs/obs.hpp"

namespace fa::cellnet {

CellCorpus::CellCorpus(std::vector<Transceiver> transceivers)
    : txr_(std::move(transceivers)) {}

std::array<std::size_t, kNumRadioTypes> CellCorpus::count_by_radio() const {
  std::array<std::size_t, kNumRadioTypes> counts{};
  for (const Transceiver& t : txr_) {
    ++counts[static_cast<std::size_t>(t.radio)];
  }
  return counts;
}

std::array<std::size_t, kNumProviders> CellCorpus::count_by_provider(
    const ProviderRegistry& registry) const {
  std::array<std::size_t, kNumProviders> counts{};
  for (const Transceiver& t : txr_) {
    ++counts[static_cast<std::size_t>(registry.resolve(t.mcc, t.mnc))];
  }
  return counts;
}

std::vector<CellSite> CellCorpus::infer_sites(double merge_dist_m) const {
  // Greedy lattice clustering: positions are hashed onto a merge_dist_m
  // grid, and each transceiver joins the nearest existing site within
  // merge_dist_m found in its own or the 8 neighbouring lattice cells
  // (so co-located radios straddling a lattice line still merge). Cheap,
  // deterministic, and in line with OpenCelliD position noise.
  const double lat_step = merge_dist_m / geo::meters_per_deg_lat();
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> cell_sites;
  std::vector<CellSite> sites;
  const auto key_of = [](std::int64_t qx, std::int64_t qy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(qx)) << 32) |
           static_cast<std::uint32_t>(qy);
  };
  for (const Transceiver& t : txr_) {
    const double lon_step =
        merge_dist_m / std::max(1.0, geo::meters_per_deg_lon(t.position.lat));
    const auto qx =
        static_cast<std::int64_t>(std::floor(t.position.lon / lon_step));
    const auto qy =
        static_cast<std::int64_t>(std::floor(t.position.lat / lat_step));
    std::uint32_t best = 0;
    double best_d = merge_dist_m;
    bool found = false;
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        const auto it = cell_sites.find(key_of(qx + dx, qy + dy));
        if (it == cell_sites.end()) continue;
        for (const std::uint32_t site_id : it->second) {
          const double d = geo::haversine_m(sites[site_id].position, t.position);
          if (d <= best_d) {
            best_d = d;
            best = site_id;
            found = true;
          }
        }
      }
    }
    if (found) {
      ++sites[best].transceiver_count;
    } else {
      CellSite site;
      site.id = static_cast<std::uint32_t>(sites.size());
      site.position = t.position;
      site.first_transceiver = t.id;
      site.transceiver_count = 1;
      cell_sites[key_of(qx, qy)].push_back(site.id);
      sites.push_back(site);
    }
  }
  return sites;
}

namespace {

bool parse_u16(const std::string& s, std::uint16_t& out) {
  unsigned v = 0;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), v);
  if (res.ec != std::errc{} || res.ptr != s.data() + s.size() || v > 0xffff) {
    return false;
  }
  out = static_cast<std::uint16_t>(v);
  return true;
}

bool parse_u32(const std::string& s, std::uint32_t& out) {
  unsigned long v = 0;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), v);
  if (res.ec != std::errc{} || res.ptr != s.data() + s.size() ||
      v > 0xffffffffUL) {
    return false;
  }
  out = static_cast<std::uint32_t>(v);
  return true;
}

bool parse_double(const std::string& s, double& out) {
  const auto res = std::from_chars(s.data(), s.data() + s.size(), out);
  return res.ec == std::errc{} && res.ptr == s.data() + s.size();
}

}  // namespace

void write_opencellid_csv(std::ostream& out, const CellCorpus& corpus) {
  io::CsvWriter writer(out);
  writer.write_row({"radio", "mcc", "net", "area", "cell", "unit", "lon",
                    "lat", "range", "samples", "changeable", "created",
                    "updated", "averageSignal"});
  for (const Transceiver& t : corpus.transceivers()) {
    writer.write_row({std::string{radio_type_name(t.radio)},
                      std::to_string(t.mcc), std::to_string(t.mnc),
                      std::to_string(t.cell_id >> 16),
                      std::to_string(t.cell_id), "0",
                      std::to_string(t.position.lon),
                      std::to_string(t.position.lat), "1000", "1", "1",
                      "1571702400", "1571702400", "0"});
  }
}

fault::Result<CellCorpus> load_opencellid_csv(std::istream& in,
                                              const CorpusLoadOptions& opts) {
  using fault::ErrCode;
  using fault::RecoveryPolicy;
  using fault::Status;

  const obs::Span span("cellnet.load_csv");
  io::CsvReader reader(in);
  const int c_radio = reader.column("radio");
  const int c_mcc = reader.column("mcc");
  const int c_net = reader.column("net");
  const int c_cell = reader.column("cell");
  const int c_lon = reader.column("lon");
  const int c_lat = reader.column("lat");
  if (c_radio < 0 || c_mcc < 0 || c_net < 0 || c_cell < 0 || c_lon < 0 ||
      c_lat < 0) {
    // A broken header poisons every record; no policy can degrade past it.
    return Status::error(ErrCode::kSchema, 0, opts.source,
                         "header lacks a required column "
                         "(radio/mcc/net/cell/lon/lat)");
  }

  std::vector<Transceiver> txr;
  // Called once per malformed record; returns an error Status when the
  // policy says the whole load must stop (Strict), nullopt otherwise.
  const auto reject = [&opts](Status status) -> std::optional<Status> {
    if (opts.policy == RecoveryPolicy::kStrict) return status;
    if (opts.diagnostics != nullptr) opts.diagnostics->dropped(status);
    return std::nullopt;
  };

  while (auto next = reader.try_next()) {
    const std::uint64_t record = reader.records_read();  // 1-based index
    if (!next->ok()) {
      Status s = next->status();
      s.source = opts.source;  // reader tags "csv"; re-tag with our source
      if (auto fatal = reject(std::move(s))) return *fatal;
      continue;
    }
    const std::vector<std::string>& r = next->value();
    const auto field = [&r](int idx) -> const std::string& {
      return r[static_cast<std::size_t>(idx)];
    };

    Transceiver t;
    double lon = 0.0, lat = 0.0;
    std::string_view bad_field;
    if (!parse_radio_type(field(c_radio), t.radio)) bad_field = "radio";
    else if (!parse_u16(field(c_mcc), t.mcc)) bad_field = "mcc";
    else if (!parse_u16(field(c_net), t.mnc)) bad_field = "net";
    else if (!parse_u32(field(c_cell), t.cell_id)) bad_field = "cell";
    else if (!parse_double(field(c_lon), lon)) bad_field = "lon";
    else if (!parse_double(field(c_lat), lat)) bad_field = "lat";
    if (!bad_field.empty()) {
      if (auto fatal = reject(Status::error(
              ErrCode::kParse, record, opts.source,
              "unparseable field '" + std::string(bad_field) + "'"))) {
        return *fatal;
      }
      continue;
    }

    if (!geo::is_valid({lon, lat})) {
      const bool finite = std::isfinite(lon) && std::isfinite(lat);
      if (opts.policy == RecoveryPolicy::kBestEffort && finite) {
        lon = std::clamp(lon, -180.0, 180.0);
        lat = std::clamp(lat, -90.0, 90.0);
        if (opts.diagnostics != nullptr) {
          opts.diagnostics->repaired(Status::error(
              ErrCode::kOutOfRange, record, opts.source,
              "clamped out-of-range position"));
        }
      } else {
        if (auto fatal = reject(Status::error(
                ErrCode::kOutOfRange, record, opts.source,
                finite ? "position outside lon/lat domain"
                       : "non-finite position"))) {
          return *fatal;
        }
        continue;
      }
    }

    t.position = {lon, lat};
    t.id = static_cast<std::uint32_t>(txr.size());
    txr.push_back(t);
  }
  obs::count("cellnet.load_csv.kept", txr.size());
  return CellCorpus{std::move(txr)};
}

CellCorpus read_opencellid_csv(std::istream& in, CsvLoadStats* stats) {
  // Legacy skip-and-count behaviour == Quarantine with a local sink. A
  // header-level failure (which no policy can degrade past) reads as an
  // empty corpus here; this entry point never throws.
  fault::Diagnostics diags;
  CorpusLoadOptions opts;
  opts.policy = fault::RecoveryPolicy::kQuarantine;
  opts.diagnostics = &diags;
  fault::Result<CellCorpus> result = load_opencellid_csv(in, opts);
  CellCorpus corpus = result.ok() ? std::move(result).take() : CellCorpus{};
  if (stats != nullptr) {
    stats->parsed = corpus.size();
    stats->skipped = diags.total_dropped();
  }
  return corpus;
}

}  // namespace fa::cellnet

// Core cellular-infrastructure value types, mirroring the fields of the
// OpenCelliD corpus the paper analyses (Section 2.2.3).
#pragma once

#include <cstdint>
#include <string_view>

#include "geo/lonlat.hpp"

namespace fa::cellnet {

// Radio access technologies present in the 2019 OpenCelliD snapshot. NR
// (5G) was absent from the snapshot (Section 3.5) but is modelled so the
// forward-looking analysis has somewhere to grow.
enum class RadioType : std::uint8_t { kGsm, kCdma, kUmts, kLte, kNr };

inline constexpr int kNumRadioTypes = 5;

std::string_view radio_type_name(RadioType t);
// Parses OpenCelliD radio strings ("GSM", "CDMA", "UMTS", "LTE", "NR");
// returns false on unknown input.
bool parse_radio_type(std::string_view name, RadioType& out);

// One cell transceiver record: an individual radio serving handsets.
// Matches the subset of OpenCelliD columns the analysis consumes.
struct Transceiver {
  std::uint32_t id = 0;      // dense corpus index
  geo::LonLat position;      // estimated location (crowd-sourced accuracy)
  RadioType radio = RadioType::kLte;
  std::uint16_t mcc = 310;   // mobile country code (310..316 in the US)
  std::uint16_t mnc = 0;     // mobile network code
  std::uint32_t cell_id = 0; // provider-scoped cell identifier
  std::int16_t state = -1;   // index into the state table, -1 = unassigned
};

// A cell site groups co-located transceivers (Figure 1 of the paper):
// the physical tower/rooftop plus power and backhaul connections.
struct CellSite {
  std::uint32_t id = 0;
  geo::LonLat position;
  std::uint32_t first_transceiver = 0;  // range into corpus order
  std::uint32_t transceiver_count = 0;
};

}  // namespace fa::cellnet

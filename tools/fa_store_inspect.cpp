// fa_store_inspect — operator's view of a snapshot store.
//
//   fa_store_inspect STORE_DIR          inspect the whole store
//   fa_store_inspect --image FILE.fa    inspect one snapshot image
//
// Dumps the manifest (generation chain, sizes, checksums) and walks
// every generation image's checksum ladder, printing per-section
// status. Exit code 0 means everything verified; any corruption —
// unreadable manifest, missing generation, failed CRC, structural
// mismatch — is reported and the exit code is non-zero, so the tool
// slots into health checks ("is this store safe to boot from?").
#include <cstdio>
#include <cstring>
#include <string>

#include "store/codec.hpp"
#include "store/format.hpp"
#include "store/recovery.hpp"
#include "store/store.hpp"

namespace {

using namespace fa;

// Walks one image's ladder; returns true when it verified clean.
bool inspect_file(const std::string& path) {
  fault::Result<store::MappedFile> mapped = store::MappedFile::open(path);
  if (!mapped.ok()) {
    std::printf("  %-22s UNREADABLE  %s\n", path.c_str(),
                mapped.status().to_string().c_str());
    return false;
  }
  fault::Result<store::FileReport> report = store::inspect_image(
      mapped.value().data(), mapped.value().size(), path);
  if (!report.ok()) {
    std::printf("  %-22s CORRUPT     %s\n", path.c_str(),
                report.status().to_string().c_str());
    return false;
  }
  const store::FileReport& r = report.value();
  std::printf("  format v%u, %llu bytes, header %s, footer %s, body crc %s\n",
              r.version, static_cast<unsigned long long>(r.file_size),
              r.header_ok ? "ok" : "BAD", r.footer_ok ? "ok" : "BAD",
              r.body_crc_ok ? "ok" : "BAD");
  for (const store::SectionReport& s : r.sections) {
    std::printf("    %-18s off=%-10llu len=%-10llu crc=%08x %s\n",
                std::string(store::section_kind_name(s.info.kind)).c_str(),
                static_cast<unsigned long long>(s.info.offset),
                static_cast<unsigned long long>(s.info.length), s.info.crc,
                s.crc_ok ? "ok" : "MISMATCH");
  }
  if (!r.ok()) {
    std::printf("  => image FAILS verification\n");
    return false;
  }
  return true;
}

int inspect_store(const std::string& dir_path) {
  fault::Result<store::StoreDir> opened =
      store::StoreDir::open(dir_path, /*create=*/false);
  if (!opened.ok()) {
    std::fprintf(stderr, "fa_store_inspect: %s\n",
                 opened.status().to_string().c_str());
    return 2;
  }
  const store::StoreDir& dir = opened.value();
  bool all_ok = true;

  fault::Result<store::Manifest> manifest = dir.read_manifest();
  store::Manifest listing;
  if (manifest.ok()) {
    listing = manifest.value();
    std::printf("MANIFEST: ok, %zu generation(s)\n",
                listing.generations.size());
  } else {
    all_ok = false;
    std::printf("MANIFEST: CORRUPT — %s\n",
                manifest.status().to_string().c_str());
    listing = dir.scan();
    std::printf("falling back to directory scan: %zu generation(s)\n",
                listing.generations.size());
  }
  if (listing.generations.empty()) {
    std::printf("store holds no generations\n");
    return all_ok ? 0 : 1;
  }

  for (const store::Generation& gen : listing.generations) {
    std::printf("generation %llu (%s, %llu bytes, manifest crc %08x):\n",
                static_cast<unsigned long long>(gen.number),
                gen.filename.c_str(),
                static_cast<unsigned long long>(gen.size), gen.crc);
    all_ok &= inspect_file(dir.file_path(gen.filename));
  }

  // The bottom line an operator (or a health check) actually wants:
  // would a cold start right now get a world, and from which generation?
  fault::Result<store::RecoveredWorld> rec = store::recover_from(dir_path);
  if (rec.ok()) {
    std::printf("cold start would serve generation %llu\n",
                static_cast<unsigned long long>(rec.value().generation.number));
  } else {
    all_ok = false;
    std::printf("cold start would REBUILD: %s\n",
                rec.status().to_string().c_str());
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--image") == 0) {
    return inspect_file(argv[2]) ? 0 : 1;
  }
  if (argc != 2 || std::strcmp(argv[1], "--help") == 0) {
    std::fprintf(stderr,
                 "usage: fa_store_inspect STORE_DIR\n"
                 "       fa_store_inspect --image FILE.fa\n");
    return 2;
  }
  return inspect_store(argv[1]);
}

// fa_store_inspect — operator's view of a snapshot store.
//
//   fa_store_inspect STORE_DIR          inspect the whole store
//   fa_store_inspect --image FILE.fa    inspect one snapshot image
//
// Dumps the manifest (generation chain, sizes, checksums) and walks
// every generation image's checksum ladder, printing per-section
// status. Exit code 0 means everything verified; any corruption —
// unreadable manifest, missing generation, failed CRC, structural
// mismatch — is reported and the exit code is non-zero, so the tool
// slots into health checks ("is this store safe to boot from?").
#include <cstdio>
#include <cstring>
#include <string>

#include "shard/codec.hpp"
#include "shard/recovery.hpp"
#include "store/codec.hpp"
#include "store/format.hpp"
#include "store/recovery.hpp"
#include "store/store.hpp"

namespace {

using namespace fa;

// Per-shard listing for a FASHRD01 container: bounds, point count,
// payload bytes, structural and CRC status. A shard that fails either
// check is what a cold start would quarantine — flagged loudly, and the
// exit code goes non-zero.
bool inspect_sharded_file(const store::MappedFile& mapped,
                          const std::string& path) {
  fault::Result<shard::ContainerReport> report =
      shard::inspect_sharded(mapped.data(), mapped.size(), path);
  if (!report.ok()) {
    std::printf("  %-22s CORRUPT     %s\n", path.c_str(),
                report.status().to_string().c_str());
    return false;
  }
  const shard::ContainerReport& r = report.value();
  std::printf(
      "  FASHRD01, %llu bytes, %llu points, %llux%llu tiles, globals %s\n",
      static_cast<unsigned long long>(r.file_size),
      static_cast<unsigned long long>(r.total_points),
      static_cast<unsigned long long>(r.tiles_x),
      static_cast<unsigned long long>(r.tiles_y),
      r.globals_ok ? "ok" : "BAD");
  for (const shard::ShardReport& s : r.shards) {
    std::printf(
        "    shard %-3u [%8.3f,%7.3f → %8.3f,%7.3f] %9llu pts %11llu B "
        "structure=%s crc=%s%s\n",
        s.shard, s.bounds.min_x, s.bounds.min_y, s.bounds.max_x,
        s.bounds.max_y, static_cast<unsigned long long>(s.n_points),
        static_cast<unsigned long long>(s.bytes),
        s.structural_ok ? "ok" : "BAD", s.crc_ok ? "ok" : "MISMATCH",
        s.structural_ok && s.crc_ok ? "" : "  << would be quarantined");
  }
  if (!r.ok()) {
    std::printf("  => container FAILS verification\n");
    return false;
  }
  return true;
}

// Walks one image's ladder; returns true when it verified clean.
// Dispatches on the magic: FASNAP01 monolithic images walk the section
// checksum ladder, FASHRD01 containers get the per-shard listing.
bool inspect_file(const std::string& path) {
  fault::Result<store::MappedFile> mapped = store::MappedFile::open(path);
  if (!mapped.ok()) {
    std::printf("  %-22s UNREADABLE  %s\n", path.c_str(),
                mapped.status().to_string().c_str());
    return false;
  }
  if (mapped.value().size() >= 8 &&
      std::memcmp(mapped.value().data(), store::kShardMagic, 8) == 0) {
    return inspect_sharded_file(mapped.value(), path);
  }
  fault::Result<store::FileReport> report = store::inspect_image(
      mapped.value().data(), mapped.value().size(), path);
  if (!report.ok()) {
    std::printf("  %-22s CORRUPT     %s\n", path.c_str(),
                report.status().to_string().c_str());
    return false;
  }
  const store::FileReport& r = report.value();
  std::printf("  format v%u, %llu bytes, header %s, footer %s, body crc %s\n",
              r.version, static_cast<unsigned long long>(r.file_size),
              r.header_ok ? "ok" : "BAD", r.footer_ok ? "ok" : "BAD",
              r.body_crc_ok ? "ok" : "BAD");
  for (const store::SectionReport& s : r.sections) {
    std::printf("    %-18s off=%-10llu len=%-10llu crc=%08x %s\n",
                std::string(store::section_kind_name(s.info.kind)).c_str(),
                static_cast<unsigned long long>(s.info.offset),
                static_cast<unsigned long long>(s.info.length), s.info.crc,
                s.crc_ok ? "ok" : "MISMATCH");
  }
  if (!r.ok()) {
    std::printf("  => image FAILS verification\n");
    return false;
  }
  return true;
}

int inspect_store(const std::string& dir_path) {
  fault::Result<store::StoreDir> opened =
      store::StoreDir::open(dir_path, /*create=*/false);
  if (!opened.ok()) {
    std::fprintf(stderr, "fa_store_inspect: %s\n",
                 opened.status().to_string().c_str());
    return 2;
  }
  const store::StoreDir& dir = opened.value();
  bool all_ok = true;

  fault::Result<store::Manifest> manifest = dir.read_manifest();
  store::Manifest listing;
  if (manifest.ok()) {
    listing = manifest.value();
    std::printf("MANIFEST: ok, %zu generation(s)\n",
                listing.generations.size());
  } else {
    all_ok = false;
    std::printf("MANIFEST: CORRUPT — %s\n",
                manifest.status().to_string().c_str());
    listing = dir.scan();
    std::printf("falling back to directory scan: %zu generation(s)\n",
                listing.generations.size());
  }
  if (listing.generations.empty()) {
    std::printf("store holds no generations\n");
    return all_ok ? 0 : 1;
  }

  for (const store::Generation& gen : listing.generations) {
    std::printf("generation %llu (%s, %llu bytes, manifest crc %08x):\n",
                static_cast<unsigned long long>(gen.number),
                gen.filename.c_str(),
                static_cast<unsigned long long>(gen.size), gen.crc);
    all_ok &= inspect_file(dir.file_path(gen.filename));
  }

  // The bottom line an operator (or a health check) actually wants:
  // would a cold start right now get a world, and from which generation?
  // A store whose newest generation is a FASHRD01 container boots
  // through the sharded ladder (which degrades shard-by-shard and
  // migrates monolithic fallbacks), so report that verdict; otherwise
  // the monolithic one.
  bool newest_sharded = false;
  {
    fault::Result<store::MappedFile> newest = store::MappedFile::open(
        dir.file_path(listing.generations.back().filename));
    newest_sharded = newest.ok() && newest.value().size() >= 8 &&
                     std::memcmp(newest.value().data(), store::kShardMagic,
                                 8) == 0;
  }
  if (newest_sharded) {
    fault::Result<shard::RecoveredShardedWorld> rec =
        shard::recover_sharded(dir_path);
    if (rec.ok()) {
      const std::size_t quarantined = rec.value().world.quarantined_count();
      std::printf("sharded cold start would serve generation %llu",
                  static_cast<unsigned long long>(
                      rec.value().generation.number));
      if (quarantined > 0) {
        all_ok = false;
        std::printf(" DEGRADED (%zu of %zu shards quarantined)",
                    quarantined, rec.value().world.shard_count());
      }
      std::printf("%s\n", rec.value().migrated
                              ? " (migrated from a monolithic image)"
                              : "");
    } else {
      all_ok = false;
      std::printf("sharded cold start would REBUILD: %s\n",
                  rec.status().to_string().c_str());
    }
    return all_ok ? 0 : 1;
  }
  fault::Result<store::RecoveredWorld> rec = store::recover_from(dir_path);
  if (rec.ok()) {
    std::printf("cold start would serve generation %llu\n",
                static_cast<unsigned long long>(rec.value().generation.number));
  } else {
    all_ok = false;
    std::printf("cold start would REBUILD: %s\n",
                rec.status().to_string().c_str());
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--image") == 0) {
    return inspect_file(argv[2]) ? 0 : 1;
  }
  if (argc != 2 || std::strcmp(argv[1], "--help") == 0) {
    std::fprintf(stderr,
                 "usage: fa_store_inspect STORE_DIR\n"
                 "       fa_store_inspect --image FILE.fa\n");
    return 2;
  }
  return inspect_store(argv[1]);
}

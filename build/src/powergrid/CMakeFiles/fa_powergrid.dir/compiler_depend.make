# Empty compiler generated dependencies file for fa_powergrid.
# This may be replaced when dependencies are built.

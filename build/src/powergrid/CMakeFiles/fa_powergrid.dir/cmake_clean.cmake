file(REMOVE_RECURSE
  "CMakeFiles/fa_powergrid.dir/grid_model.cpp.o"
  "CMakeFiles/fa_powergrid.dir/grid_model.cpp.o.d"
  "CMakeFiles/fa_powergrid.dir/psps.cpp.o"
  "CMakeFiles/fa_powergrid.dir/psps.cpp.o.d"
  "libfa_powergrid.a"
  "libfa_powergrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fa_powergrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libfa_powergrid.a"
)

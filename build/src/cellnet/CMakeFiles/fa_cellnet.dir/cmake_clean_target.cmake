file(REMOVE_RECURSE
  "libfa_cellnet.a"
)

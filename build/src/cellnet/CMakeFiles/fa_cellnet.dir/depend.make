# Empty dependencies file for fa_cellnet.
# This may be replaced when dependencies are built.

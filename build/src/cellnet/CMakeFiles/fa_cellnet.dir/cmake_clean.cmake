file(REMOVE_RECURSE
  "CMakeFiles/fa_cellnet.dir/corpus.cpp.o"
  "CMakeFiles/fa_cellnet.dir/corpus.cpp.o.d"
  "CMakeFiles/fa_cellnet.dir/providers.cpp.o"
  "CMakeFiles/fa_cellnet.dir/providers.cpp.o.d"
  "libfa_cellnet.a"
  "libfa_cellnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fa_cellnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/src/firesim
# Build directory: /root/repo/build/src/firesim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

# Empty dependencies file for fa_firesim.
# This may be replaced when dependencies are built.

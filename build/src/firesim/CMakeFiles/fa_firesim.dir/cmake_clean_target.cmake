file(REMOVE_RECURSE
  "libfa_firesim.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/fa_firesim.dir/dirs.cpp.o"
  "CMakeFiles/fa_firesim.dir/dirs.cpp.o.d"
  "CMakeFiles/fa_firesim.dir/fire.cpp.o"
  "CMakeFiles/fa_firesim.dir/fire.cpp.o.d"
  "CMakeFiles/fa_firesim.dir/outage.cpp.o"
  "CMakeFiles/fa_firesim.dir/outage.cpp.o.d"
  "CMakeFiles/fa_firesim.dir/wind.cpp.o"
  "CMakeFiles/fa_firesim.dir/wind.cpp.o.d"
  "libfa_firesim.a"
  "libfa_firesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fa_firesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

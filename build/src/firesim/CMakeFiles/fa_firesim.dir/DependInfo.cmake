
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/firesim/dirs.cpp" "src/firesim/CMakeFiles/fa_firesim.dir/dirs.cpp.o" "gcc" "src/firesim/CMakeFiles/fa_firesim.dir/dirs.cpp.o.d"
  "/root/repo/src/firesim/fire.cpp" "src/firesim/CMakeFiles/fa_firesim.dir/fire.cpp.o" "gcc" "src/firesim/CMakeFiles/fa_firesim.dir/fire.cpp.o.d"
  "/root/repo/src/firesim/outage.cpp" "src/firesim/CMakeFiles/fa_firesim.dir/outage.cpp.o" "gcc" "src/firesim/CMakeFiles/fa_firesim.dir/outage.cpp.o.d"
  "/root/repo/src/firesim/wind.cpp" "src/firesim/CMakeFiles/fa_firesim.dir/wind.cpp.o" "gcc" "src/firesim/CMakeFiles/fa_firesim.dir/wind.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/fa_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/raster/CMakeFiles/fa_raster.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/fa_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/cellnet/CMakeFiles/fa_cellnet.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/fa_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

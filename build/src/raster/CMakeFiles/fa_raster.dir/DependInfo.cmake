
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/raster/geometry.cpp" "src/raster/CMakeFiles/fa_raster.dir/geometry.cpp.o" "gcc" "src/raster/CMakeFiles/fa_raster.dir/geometry.cpp.o.d"
  "/root/repo/src/raster/morphology.cpp" "src/raster/CMakeFiles/fa_raster.dir/morphology.cpp.o" "gcc" "src/raster/CMakeFiles/fa_raster.dir/morphology.cpp.o.d"
  "/root/repo/src/raster/rasterize.cpp" "src/raster/CMakeFiles/fa_raster.dir/rasterize.cpp.o" "gcc" "src/raster/CMakeFiles/fa_raster.dir/rasterize.cpp.o.d"
  "/root/repo/src/raster/regions.cpp" "src/raster/CMakeFiles/fa_raster.dir/regions.cpp.o" "gcc" "src/raster/CMakeFiles/fa_raster.dir/regions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/fa_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

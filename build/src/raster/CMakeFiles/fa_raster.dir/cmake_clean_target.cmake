file(REMOVE_RECURSE
  "libfa_raster.a"
)

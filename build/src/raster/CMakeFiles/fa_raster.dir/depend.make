# Empty dependencies file for fa_raster.
# This may be replaced when dependencies are built.

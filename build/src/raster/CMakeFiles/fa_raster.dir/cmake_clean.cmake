file(REMOVE_RECURSE
  "CMakeFiles/fa_raster.dir/geometry.cpp.o"
  "CMakeFiles/fa_raster.dir/geometry.cpp.o.d"
  "CMakeFiles/fa_raster.dir/morphology.cpp.o"
  "CMakeFiles/fa_raster.dir/morphology.cpp.o.d"
  "CMakeFiles/fa_raster.dir/rasterize.cpp.o"
  "CMakeFiles/fa_raster.dir/rasterize.cpp.o.d"
  "CMakeFiles/fa_raster.dir/regions.cpp.o"
  "CMakeFiles/fa_raster.dir/regions.cpp.o.d"
  "libfa_raster.a"
  "libfa_raster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fa_raster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

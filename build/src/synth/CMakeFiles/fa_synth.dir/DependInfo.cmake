
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/cells.cpp" "src/synth/CMakeFiles/fa_synth.dir/cells.cpp.o" "gcc" "src/synth/CMakeFiles/fa_synth.dir/cells.cpp.o.d"
  "/root/repo/src/synth/counties.cpp" "src/synth/CMakeFiles/fa_synth.dir/counties.cpp.o" "gcc" "src/synth/CMakeFiles/fa_synth.dir/counties.cpp.o.d"
  "/root/repo/src/synth/firecalib.cpp" "src/synth/CMakeFiles/fa_synth.dir/firecalib.cpp.o" "gcc" "src/synth/CMakeFiles/fa_synth.dir/firecalib.cpp.o.d"
  "/root/repo/src/synth/hazard.cpp" "src/synth/CMakeFiles/fa_synth.dir/hazard.cpp.o" "gcc" "src/synth/CMakeFiles/fa_synth.dir/hazard.cpp.o.d"
  "/root/repo/src/synth/noise.cpp" "src/synth/CMakeFiles/fa_synth.dir/noise.cpp.o" "gcc" "src/synth/CMakeFiles/fa_synth.dir/noise.cpp.o.d"
  "/root/repo/src/synth/population.cpp" "src/synth/CMakeFiles/fa_synth.dir/population.cpp.o" "gcc" "src/synth/CMakeFiles/fa_synth.dir/population.cpp.o.d"
  "/root/repo/src/synth/roads.cpp" "src/synth/CMakeFiles/fa_synth.dir/roads.cpp.o" "gcc" "src/synth/CMakeFiles/fa_synth.dir/roads.cpp.o.d"
  "/root/repo/src/synth/usatlas.cpp" "src/synth/CMakeFiles/fa_synth.dir/usatlas.cpp.o" "gcc" "src/synth/CMakeFiles/fa_synth.dir/usatlas.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/fa_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/raster/CMakeFiles/fa_raster.dir/DependInfo.cmake"
  "/root/repo/build/src/cellnet/CMakeFiles/fa_cellnet.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/fa_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for fa_synth.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libfa_synth.a"
)

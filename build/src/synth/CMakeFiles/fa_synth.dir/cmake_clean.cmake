file(REMOVE_RECURSE
  "CMakeFiles/fa_synth.dir/cells.cpp.o"
  "CMakeFiles/fa_synth.dir/cells.cpp.o.d"
  "CMakeFiles/fa_synth.dir/counties.cpp.o"
  "CMakeFiles/fa_synth.dir/counties.cpp.o.d"
  "CMakeFiles/fa_synth.dir/firecalib.cpp.o"
  "CMakeFiles/fa_synth.dir/firecalib.cpp.o.d"
  "CMakeFiles/fa_synth.dir/hazard.cpp.o"
  "CMakeFiles/fa_synth.dir/hazard.cpp.o.d"
  "CMakeFiles/fa_synth.dir/noise.cpp.o"
  "CMakeFiles/fa_synth.dir/noise.cpp.o.d"
  "CMakeFiles/fa_synth.dir/population.cpp.o"
  "CMakeFiles/fa_synth.dir/population.cpp.o.d"
  "CMakeFiles/fa_synth.dir/roads.cpp.o"
  "CMakeFiles/fa_synth.dir/roads.cpp.o.d"
  "CMakeFiles/fa_synth.dir/usatlas.cpp.o"
  "CMakeFiles/fa_synth.dir/usatlas.cpp.o.d"
  "libfa_synth.a"
  "libfa_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fa_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

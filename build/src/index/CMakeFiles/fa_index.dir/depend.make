# Empty dependencies file for fa_index.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libfa_index.a"
)

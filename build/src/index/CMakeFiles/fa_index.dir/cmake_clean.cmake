file(REMOVE_RECURSE
  "CMakeFiles/fa_index.dir/grid_index.cpp.o"
  "CMakeFiles/fa_index.dir/grid_index.cpp.o.d"
  "CMakeFiles/fa_index.dir/rtree.cpp.o"
  "CMakeFiles/fa_index.dir/rtree.cpp.o.d"
  "libfa_index.a"
  "libfa_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fa_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

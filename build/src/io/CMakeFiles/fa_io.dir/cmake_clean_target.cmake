file(REMOVE_RECURSE
  "libfa_io.a"
)

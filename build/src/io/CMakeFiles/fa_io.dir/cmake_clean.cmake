file(REMOVE_RECURSE
  "CMakeFiles/fa_io.dir/csv.cpp.o"
  "CMakeFiles/fa_io.dir/csv.cpp.o.d"
  "CMakeFiles/fa_io.dir/fagrid.cpp.o"
  "CMakeFiles/fa_io.dir/fagrid.cpp.o.d"
  "CMakeFiles/fa_io.dir/geojson.cpp.o"
  "CMakeFiles/fa_io.dir/geojson.cpp.o.d"
  "CMakeFiles/fa_io.dir/json.cpp.o"
  "CMakeFiles/fa_io.dir/json.cpp.o.d"
  "CMakeFiles/fa_io.dir/wkt.cpp.o"
  "CMakeFiles/fa_io.dir/wkt.cpp.o.d"
  "libfa_io.a"
  "libfa_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fa_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

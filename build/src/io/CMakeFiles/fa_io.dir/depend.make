# Empty dependencies file for fa_io.
# This may be replaced when dependencies are built.

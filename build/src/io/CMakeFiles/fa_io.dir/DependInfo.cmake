
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/csv.cpp" "src/io/CMakeFiles/fa_io.dir/csv.cpp.o" "gcc" "src/io/CMakeFiles/fa_io.dir/csv.cpp.o.d"
  "/root/repo/src/io/fagrid.cpp" "src/io/CMakeFiles/fa_io.dir/fagrid.cpp.o" "gcc" "src/io/CMakeFiles/fa_io.dir/fagrid.cpp.o.d"
  "/root/repo/src/io/geojson.cpp" "src/io/CMakeFiles/fa_io.dir/geojson.cpp.o" "gcc" "src/io/CMakeFiles/fa_io.dir/geojson.cpp.o.d"
  "/root/repo/src/io/json.cpp" "src/io/CMakeFiles/fa_io.dir/json.cpp.o" "gcc" "src/io/CMakeFiles/fa_io.dir/json.cpp.o.d"
  "/root/repo/src/io/wkt.cpp" "src/io/CMakeFiles/fa_io.dir/wkt.cpp.o" "gcc" "src/io/CMakeFiles/fa_io.dir/wkt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/fa_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/raster/CMakeFiles/fa_raster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libfa_core.a"
)

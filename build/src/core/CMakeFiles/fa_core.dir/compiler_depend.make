# Empty compiler generated dependencies file for fa_core.
# This may be replaced when dependencies are built.

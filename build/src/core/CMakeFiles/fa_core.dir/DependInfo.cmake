
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/case_study.cpp" "src/core/CMakeFiles/fa_core.dir/case_study.cpp.o" "gcc" "src/core/CMakeFiles/fa_core.dir/case_study.cpp.o.d"
  "/root/repo/src/core/climate.cpp" "src/core/CMakeFiles/fa_core.dir/climate.cpp.o" "gcc" "src/core/CMakeFiles/fa_core.dir/climate.cpp.o.d"
  "/root/repo/src/core/coverage.cpp" "src/core/CMakeFiles/fa_core.dir/coverage.cpp.o" "gcc" "src/core/CMakeFiles/fa_core.dir/coverage.cpp.o.d"
  "/root/repo/src/core/escape.cpp" "src/core/CMakeFiles/fa_core.dir/escape.cpp.o" "gcc" "src/core/CMakeFiles/fa_core.dir/escape.cpp.o.d"
  "/root/repo/src/core/historical.cpp" "src/core/CMakeFiles/fa_core.dir/historical.cpp.o" "gcc" "src/core/CMakeFiles/fa_core.dir/historical.cpp.o.d"
  "/root/repo/src/core/maps.cpp" "src/core/CMakeFiles/fa_core.dir/maps.cpp.o" "gcc" "src/core/CMakeFiles/fa_core.dir/maps.cpp.o.d"
  "/root/repo/src/core/metro.cpp" "src/core/CMakeFiles/fa_core.dir/metro.cpp.o" "gcc" "src/core/CMakeFiles/fa_core.dir/metro.cpp.o.d"
  "/root/repo/src/core/overlay.cpp" "src/core/CMakeFiles/fa_core.dir/overlay.cpp.o" "gcc" "src/core/CMakeFiles/fa_core.dir/overlay.cpp.o.d"
  "/root/repo/src/core/population.cpp" "src/core/CMakeFiles/fa_core.dir/population.cpp.o" "gcc" "src/core/CMakeFiles/fa_core.dir/population.cpp.o.d"
  "/root/repo/src/core/provider_risk.cpp" "src/core/CMakeFiles/fa_core.dir/provider_risk.cpp.o" "gcc" "src/core/CMakeFiles/fa_core.dir/provider_risk.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/fa_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/fa_core.dir/report.cpp.o.d"
  "/root/repo/src/core/roadside.cpp" "src/core/CMakeFiles/fa_core.dir/roadside.cpp.o" "gcc" "src/core/CMakeFiles/fa_core.dir/roadside.cpp.o.d"
  "/root/repo/src/core/site_risk.cpp" "src/core/CMakeFiles/fa_core.dir/site_risk.cpp.o" "gcc" "src/core/CMakeFiles/fa_core.dir/site_risk.cpp.o.d"
  "/root/repo/src/core/validation.cpp" "src/core/CMakeFiles/fa_core.dir/validation.cpp.o" "gcc" "src/core/CMakeFiles/fa_core.dir/validation.cpp.o.d"
  "/root/repo/src/core/whp_overlay.cpp" "src/core/CMakeFiles/fa_core.dir/whp_overlay.cpp.o" "gcc" "src/core/CMakeFiles/fa_core.dir/whp_overlay.cpp.o.d"
  "/root/repo/src/core/world.cpp" "src/core/CMakeFiles/fa_core.dir/world.cpp.o" "gcc" "src/core/CMakeFiles/fa_core.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/fa_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/fa_index.dir/DependInfo.cmake"
  "/root/repo/build/src/raster/CMakeFiles/fa_raster.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/fa_io.dir/DependInfo.cmake"
  "/root/repo/build/src/cellnet/CMakeFiles/fa_cellnet.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/fa_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/firesim/CMakeFiles/fa_firesim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

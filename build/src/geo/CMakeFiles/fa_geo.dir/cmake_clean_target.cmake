file(REMOVE_RECURSE
  "libfa_geo.a"
)

# Empty dependencies file for fa_geo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fa_geo.dir/algorithms.cpp.o"
  "CMakeFiles/fa_geo.dir/algorithms.cpp.o.d"
  "CMakeFiles/fa_geo.dir/buffer.cpp.o"
  "CMakeFiles/fa_geo.dir/buffer.cpp.o.d"
  "CMakeFiles/fa_geo.dir/geodesy.cpp.o"
  "CMakeFiles/fa_geo.dir/geodesy.cpp.o.d"
  "CMakeFiles/fa_geo.dir/polygon.cpp.o"
  "CMakeFiles/fa_geo.dir/polygon.cpp.o.d"
  "CMakeFiles/fa_geo.dir/projection.cpp.o"
  "CMakeFiles/fa_geo.dir/projection.cpp.o.d"
  "libfa_geo.a"
  "libfa_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fa_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

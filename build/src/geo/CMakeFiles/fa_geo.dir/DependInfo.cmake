
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/algorithms.cpp" "src/geo/CMakeFiles/fa_geo.dir/algorithms.cpp.o" "gcc" "src/geo/CMakeFiles/fa_geo.dir/algorithms.cpp.o.d"
  "/root/repo/src/geo/buffer.cpp" "src/geo/CMakeFiles/fa_geo.dir/buffer.cpp.o" "gcc" "src/geo/CMakeFiles/fa_geo.dir/buffer.cpp.o.d"
  "/root/repo/src/geo/geodesy.cpp" "src/geo/CMakeFiles/fa_geo.dir/geodesy.cpp.o" "gcc" "src/geo/CMakeFiles/fa_geo.dir/geodesy.cpp.o.d"
  "/root/repo/src/geo/polygon.cpp" "src/geo/CMakeFiles/fa_geo.dir/polygon.cpp.o" "gcc" "src/geo/CMakeFiles/fa_geo.dir/polygon.cpp.o.d"
  "/root/repo/src/geo/projection.cpp" "src/geo/CMakeFiles/fa_geo.dir/projection.cpp.o" "gcc" "src/geo/CMakeFiles/fa_geo.dir/projection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

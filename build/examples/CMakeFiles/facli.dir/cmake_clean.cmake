file(REMOVE_RECURSE
  "CMakeFiles/facli.dir/facli.cpp.o"
  "CMakeFiles/facli.dir/facli.cpp.o.d"
  "facli"
  "facli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for facli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/experiments_runner.dir/experiments_runner.cpp.o"
  "CMakeFiles/experiments_runner.dir/experiments_runner.cpp.o.d"
  "experiments_runner"
  "experiments_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiments_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

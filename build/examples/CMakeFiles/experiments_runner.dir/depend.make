# Empty dependencies file for experiments_runner.
# This may be replaced when dependencies are built.

# Empty dependencies file for perimeter_export.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/perimeter_export.dir/perimeter_export.cpp.o"
  "CMakeFiles/perimeter_export.dir/perimeter_export.cpp.o.d"
  "perimeter_export"
  "perimeter_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perimeter_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for state_risk_report.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/state_risk_report.dir/state_risk_report.cpp.o"
  "CMakeFiles/state_risk_report.dir/state_risk_report.cpp.o.d"
  "state_risk_report"
  "state_risk_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_risk_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

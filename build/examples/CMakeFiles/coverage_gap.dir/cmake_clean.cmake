file(REMOVE_RECURSE
  "CMakeFiles/coverage_gap.dir/coverage_gap.cpp.o"
  "CMakeFiles/coverage_gap.dir/coverage_gap.cpp.o.d"
  "coverage_gap"
  "coverage_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

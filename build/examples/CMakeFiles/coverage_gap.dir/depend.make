# Empty dependencies file for coverage_gap.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_geo[1]_include.cmake")
include("/root/repo/build/tests/test_index[1]_include.cmake")
include("/root/repo/build/tests/test_raster[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_cellnet[1]_include.cmake")
include("/root/repo/build/tests/test_synth[1]_include.cmake")
include("/root/repo/build/tests/test_firesim[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_powergrid[1]_include.cmake")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/geo/algorithms_test.cpp" "tests/CMakeFiles/test_geo.dir/geo/algorithms_test.cpp.o" "gcc" "tests/CMakeFiles/test_geo.dir/geo/algorithms_test.cpp.o.d"
  "/root/repo/tests/geo/buffer_test.cpp" "tests/CMakeFiles/test_geo.dir/geo/buffer_test.cpp.o" "gcc" "tests/CMakeFiles/test_geo.dir/geo/buffer_test.cpp.o.d"
  "/root/repo/tests/geo/geodesy_test.cpp" "tests/CMakeFiles/test_geo.dir/geo/geodesy_test.cpp.o" "gcc" "tests/CMakeFiles/test_geo.dir/geo/geodesy_test.cpp.o.d"
  "/root/repo/tests/geo/polygon_test.cpp" "tests/CMakeFiles/test_geo.dir/geo/polygon_test.cpp.o" "gcc" "tests/CMakeFiles/test_geo.dir/geo/polygon_test.cpp.o.d"
  "/root/repo/tests/geo/projection_test.cpp" "tests/CMakeFiles/test_geo.dir/geo/projection_test.cpp.o" "gcc" "tests/CMakeFiles/test_geo.dir/geo/projection_test.cpp.o.d"
  "/root/repo/tests/geo/robustness_test.cpp" "tests/CMakeFiles/test_geo.dir/geo/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/test_geo.dir/geo/robustness_test.cpp.o.d"
  "/root/repo/tests/geo/vec2_test.cpp" "tests/CMakeFiles/test_geo.dir/geo/vec2_test.cpp.o" "gcc" "tests/CMakeFiles/test_geo.dir/geo/vec2_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/fa_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

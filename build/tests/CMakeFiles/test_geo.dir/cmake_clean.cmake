file(REMOVE_RECURSE
  "CMakeFiles/test_geo.dir/geo/algorithms_test.cpp.o"
  "CMakeFiles/test_geo.dir/geo/algorithms_test.cpp.o.d"
  "CMakeFiles/test_geo.dir/geo/buffer_test.cpp.o"
  "CMakeFiles/test_geo.dir/geo/buffer_test.cpp.o.d"
  "CMakeFiles/test_geo.dir/geo/geodesy_test.cpp.o"
  "CMakeFiles/test_geo.dir/geo/geodesy_test.cpp.o.d"
  "CMakeFiles/test_geo.dir/geo/polygon_test.cpp.o"
  "CMakeFiles/test_geo.dir/geo/polygon_test.cpp.o.d"
  "CMakeFiles/test_geo.dir/geo/projection_test.cpp.o"
  "CMakeFiles/test_geo.dir/geo/projection_test.cpp.o.d"
  "CMakeFiles/test_geo.dir/geo/robustness_test.cpp.o"
  "CMakeFiles/test_geo.dir/geo/robustness_test.cpp.o.d"
  "CMakeFiles/test_geo.dir/geo/vec2_test.cpp.o"
  "CMakeFiles/test_geo.dir/geo/vec2_test.cpp.o.d"
  "test_geo"
  "test_geo.pdb"
  "test_geo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_powergrid.dir/powergrid/grid_model_test.cpp.o"
  "CMakeFiles/test_powergrid.dir/powergrid/grid_model_test.cpp.o.d"
  "test_powergrid"
  "test_powergrid.pdb"
  "test_powergrid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_powergrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

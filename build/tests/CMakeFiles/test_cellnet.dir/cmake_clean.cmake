file(REMOVE_RECURSE
  "CMakeFiles/test_cellnet.dir/cellnet/corpus_test.cpp.o"
  "CMakeFiles/test_cellnet.dir/cellnet/corpus_test.cpp.o.d"
  "CMakeFiles/test_cellnet.dir/cellnet/providers_test.cpp.o"
  "CMakeFiles/test_cellnet.dir/cellnet/providers_test.cpp.o.d"
  "test_cellnet"
  "test_cellnet.pdb"
  "test_cellnet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cellnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

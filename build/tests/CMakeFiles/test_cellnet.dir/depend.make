# Empty dependencies file for test_cellnet.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/io/csv_test.cpp" "tests/CMakeFiles/test_io.dir/io/csv_test.cpp.o" "gcc" "tests/CMakeFiles/test_io.dir/io/csv_test.cpp.o.d"
  "/root/repo/tests/io/fagrid_test.cpp" "tests/CMakeFiles/test_io.dir/io/fagrid_test.cpp.o" "gcc" "tests/CMakeFiles/test_io.dir/io/fagrid_test.cpp.o.d"
  "/root/repo/tests/io/fuzz_test.cpp" "tests/CMakeFiles/test_io.dir/io/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/test_io.dir/io/fuzz_test.cpp.o.d"
  "/root/repo/tests/io/geojson_test.cpp" "tests/CMakeFiles/test_io.dir/io/geojson_test.cpp.o" "gcc" "tests/CMakeFiles/test_io.dir/io/geojson_test.cpp.o.d"
  "/root/repo/tests/io/json_test.cpp" "tests/CMakeFiles/test_io.dir/io/json_test.cpp.o" "gcc" "tests/CMakeFiles/test_io.dir/io/json_test.cpp.o.d"
  "/root/repo/tests/io/wkt_test.cpp" "tests/CMakeFiles/test_io.dir/io/wkt_test.cpp.o" "gcc" "tests/CMakeFiles/test_io.dir/io/wkt_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/fa_io.dir/DependInfo.cmake"
  "/root/repo/build/src/cellnet/CMakeFiles/fa_cellnet.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/fa_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/raster/CMakeFiles/fa_raster.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/fa_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

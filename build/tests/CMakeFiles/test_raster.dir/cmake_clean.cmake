file(REMOVE_RECURSE
  "CMakeFiles/test_raster.dir/raster/cross_validation_test.cpp.o"
  "CMakeFiles/test_raster.dir/raster/cross_validation_test.cpp.o.d"
  "CMakeFiles/test_raster.dir/raster/morphology_test.cpp.o"
  "CMakeFiles/test_raster.dir/raster/morphology_test.cpp.o.d"
  "CMakeFiles/test_raster.dir/raster/raster_test.cpp.o"
  "CMakeFiles/test_raster.dir/raster/raster_test.cpp.o.d"
  "CMakeFiles/test_raster.dir/raster/rasterize_test.cpp.o"
  "CMakeFiles/test_raster.dir/raster/rasterize_test.cpp.o.d"
  "CMakeFiles/test_raster.dir/raster/regions_test.cpp.o"
  "CMakeFiles/test_raster.dir/raster/regions_test.cpp.o.d"
  "test_raster"
  "test_raster.pdb"
  "test_raster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/raster/cross_validation_test.cpp" "tests/CMakeFiles/test_raster.dir/raster/cross_validation_test.cpp.o" "gcc" "tests/CMakeFiles/test_raster.dir/raster/cross_validation_test.cpp.o.d"
  "/root/repo/tests/raster/morphology_test.cpp" "tests/CMakeFiles/test_raster.dir/raster/morphology_test.cpp.o" "gcc" "tests/CMakeFiles/test_raster.dir/raster/morphology_test.cpp.o.d"
  "/root/repo/tests/raster/raster_test.cpp" "tests/CMakeFiles/test_raster.dir/raster/raster_test.cpp.o" "gcc" "tests/CMakeFiles/test_raster.dir/raster/raster_test.cpp.o.d"
  "/root/repo/tests/raster/rasterize_test.cpp" "tests/CMakeFiles/test_raster.dir/raster/rasterize_test.cpp.o" "gcc" "tests/CMakeFiles/test_raster.dir/raster/rasterize_test.cpp.o.d"
  "/root/repo/tests/raster/regions_test.cpp" "tests/CMakeFiles/test_raster.dir/raster/regions_test.cpp.o" "gcc" "tests/CMakeFiles/test_raster.dir/raster/regions_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/raster/CMakeFiles/fa_raster.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/fa_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/firesim/dirs_test.cpp" "tests/CMakeFiles/test_firesim.dir/firesim/dirs_test.cpp.o" "gcc" "tests/CMakeFiles/test_firesim.dir/firesim/dirs_test.cpp.o.d"
  "/root/repo/tests/firesim/fire_test.cpp" "tests/CMakeFiles/test_firesim.dir/firesim/fire_test.cpp.o" "gcc" "tests/CMakeFiles/test_firesim.dir/firesim/fire_test.cpp.o.d"
  "/root/repo/tests/firesim/outage_test.cpp" "tests/CMakeFiles/test_firesim.dir/firesim/outage_test.cpp.o" "gcc" "tests/CMakeFiles/test_firesim.dir/firesim/outage_test.cpp.o.d"
  "/root/repo/tests/firesim/progression_test.cpp" "tests/CMakeFiles/test_firesim.dir/firesim/progression_test.cpp.o" "gcc" "tests/CMakeFiles/test_firesim.dir/firesim/progression_test.cpp.o.d"
  "/root/repo/tests/firesim/season_properties_test.cpp" "tests/CMakeFiles/test_firesim.dir/firesim/season_properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_firesim.dir/firesim/season_properties_test.cpp.o.d"
  "/root/repo/tests/firesim/wind_test.cpp" "tests/CMakeFiles/test_firesim.dir/firesim/wind_test.cpp.o" "gcc" "tests/CMakeFiles/test_firesim.dir/firesim/wind_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/firesim/CMakeFiles/fa_firesim.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/fa_index.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/fa_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/cellnet/CMakeFiles/fa_cellnet.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/fa_io.dir/DependInfo.cmake"
  "/root/repo/build/src/raster/CMakeFiles/fa_raster.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/fa_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

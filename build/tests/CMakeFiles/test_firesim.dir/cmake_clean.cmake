file(REMOVE_RECURSE
  "CMakeFiles/test_firesim.dir/firesim/dirs_test.cpp.o"
  "CMakeFiles/test_firesim.dir/firesim/dirs_test.cpp.o.d"
  "CMakeFiles/test_firesim.dir/firesim/fire_test.cpp.o"
  "CMakeFiles/test_firesim.dir/firesim/fire_test.cpp.o.d"
  "CMakeFiles/test_firesim.dir/firesim/outage_test.cpp.o"
  "CMakeFiles/test_firesim.dir/firesim/outage_test.cpp.o.d"
  "CMakeFiles/test_firesim.dir/firesim/progression_test.cpp.o"
  "CMakeFiles/test_firesim.dir/firesim/progression_test.cpp.o.d"
  "CMakeFiles/test_firesim.dir/firesim/season_properties_test.cpp.o"
  "CMakeFiles/test_firesim.dir/firesim/season_properties_test.cpp.o.d"
  "CMakeFiles/test_firesim.dir/firesim/wind_test.cpp.o"
  "CMakeFiles/test_firesim.dir/firesim/wind_test.cpp.o.d"
  "test_firesim"
  "test_firesim.pdb"
  "test_firesim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_firesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_firesim.
# This may be replaced when dependencies are built.

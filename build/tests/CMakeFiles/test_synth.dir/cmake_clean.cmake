file(REMOVE_RECURSE
  "CMakeFiles/test_synth.dir/synth/cells_test.cpp.o"
  "CMakeFiles/test_synth.dir/synth/cells_test.cpp.o.d"
  "CMakeFiles/test_synth.dir/synth/counties_test.cpp.o"
  "CMakeFiles/test_synth.dir/synth/counties_test.cpp.o.d"
  "CMakeFiles/test_synth.dir/synth/hazard_test.cpp.o"
  "CMakeFiles/test_synth.dir/synth/hazard_test.cpp.o.d"
  "CMakeFiles/test_synth.dir/synth/noise_test.cpp.o"
  "CMakeFiles/test_synth.dir/synth/noise_test.cpp.o.d"
  "CMakeFiles/test_synth.dir/synth/population_test.cpp.o"
  "CMakeFiles/test_synth.dir/synth/population_test.cpp.o.d"
  "CMakeFiles/test_synth.dir/synth/rng_test.cpp.o"
  "CMakeFiles/test_synth.dir/synth/rng_test.cpp.o.d"
  "CMakeFiles/test_synth.dir/synth/roads_test.cpp.o"
  "CMakeFiles/test_synth.dir/synth/roads_test.cpp.o.d"
  "CMakeFiles/test_synth.dir/synth/usatlas_test.cpp.o"
  "CMakeFiles/test_synth.dir/synth/usatlas_test.cpp.o.d"
  "test_synth"
  "test_synth.pdb"
  "test_synth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/synth/cells_test.cpp" "tests/CMakeFiles/test_synth.dir/synth/cells_test.cpp.o" "gcc" "tests/CMakeFiles/test_synth.dir/synth/cells_test.cpp.o.d"
  "/root/repo/tests/synth/counties_test.cpp" "tests/CMakeFiles/test_synth.dir/synth/counties_test.cpp.o" "gcc" "tests/CMakeFiles/test_synth.dir/synth/counties_test.cpp.o.d"
  "/root/repo/tests/synth/hazard_test.cpp" "tests/CMakeFiles/test_synth.dir/synth/hazard_test.cpp.o" "gcc" "tests/CMakeFiles/test_synth.dir/synth/hazard_test.cpp.o.d"
  "/root/repo/tests/synth/noise_test.cpp" "tests/CMakeFiles/test_synth.dir/synth/noise_test.cpp.o" "gcc" "tests/CMakeFiles/test_synth.dir/synth/noise_test.cpp.o.d"
  "/root/repo/tests/synth/population_test.cpp" "tests/CMakeFiles/test_synth.dir/synth/population_test.cpp.o" "gcc" "tests/CMakeFiles/test_synth.dir/synth/population_test.cpp.o.d"
  "/root/repo/tests/synth/rng_test.cpp" "tests/CMakeFiles/test_synth.dir/synth/rng_test.cpp.o" "gcc" "tests/CMakeFiles/test_synth.dir/synth/rng_test.cpp.o.d"
  "/root/repo/tests/synth/roads_test.cpp" "tests/CMakeFiles/test_synth.dir/synth/roads_test.cpp.o" "gcc" "tests/CMakeFiles/test_synth.dir/synth/roads_test.cpp.o.d"
  "/root/repo/tests/synth/usatlas_test.cpp" "tests/CMakeFiles/test_synth.dir/synth/usatlas_test.cpp.o" "gcc" "tests/CMakeFiles/test_synth.dir/synth/usatlas_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synth/CMakeFiles/fa_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/cellnet/CMakeFiles/fa_cellnet.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/fa_io.dir/DependInfo.cmake"
  "/root/repo/build/src/raster/CMakeFiles/fa_raster.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/fa_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

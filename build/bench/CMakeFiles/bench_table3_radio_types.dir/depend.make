# Empty dependencies file for bench_table3_radio_types.
# This may be replaced when dependencies are built.

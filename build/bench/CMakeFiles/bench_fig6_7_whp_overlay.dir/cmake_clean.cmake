file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_7_whp_overlay.dir/bench_fig6_7_whp_overlay.cpp.o"
  "CMakeFiles/bench_fig6_7_whp_overlay.dir/bench_fig6_7_whp_overlay.cpp.o.d"
  "bench_fig6_7_whp_overlay"
  "bench_fig6_7_whp_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_7_whp_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig6_7_whp_overlay.
# This may be replaced when dependencies are built.

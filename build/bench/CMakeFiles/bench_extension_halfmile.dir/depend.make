# Empty dependencies file for bench_extension_halfmile.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_halfmile.dir/bench_extension_halfmile.cpp.o"
  "CMakeFiles/bench_extension_halfmile.dir/bench_extension_halfmile.cpp.o.d"
  "bench_extension_halfmile"
  "bench_extension_halfmile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_halfmile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_validation_whp.
# This may be replaced when dependencies are built.

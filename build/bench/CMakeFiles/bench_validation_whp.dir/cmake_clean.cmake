file(REMOVE_RECURSE
  "CMakeFiles/bench_validation_whp.dir/bench_validation_whp.cpp.o"
  "CMakeFiles/bench_validation_whp.dir/bench_validation_whp.cpp.o.d"
  "bench_validation_whp"
  "bench_validation_whp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validation_whp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

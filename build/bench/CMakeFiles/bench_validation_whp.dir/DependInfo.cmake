
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_validation_whp.cpp" "bench/CMakeFiles/bench_validation_whp.dir/bench_validation_whp.cpp.o" "gcc" "bench/CMakeFiles/bench_validation_whp.dir/bench_validation_whp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/fa_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/fa_index.dir/DependInfo.cmake"
  "/root/repo/build/src/powergrid/CMakeFiles/fa_powergrid.dir/DependInfo.cmake"
  "/root/repo/build/src/firesim/CMakeFiles/fa_firesim.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/fa_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/cellnet/CMakeFiles/fa_cellnet.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/fa_io.dir/DependInfo.cmake"
  "/root/repo/build/src/raster/CMakeFiles/fa_raster.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/fa_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bench_power_interdependence.dir/bench_power_interdependence.cpp.o"
  "CMakeFiles/bench_power_interdependence.dir/bench_power_interdependence.cpp.o.d"
  "bench_power_interdependence"
  "bench_power_interdependence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_power_interdependence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

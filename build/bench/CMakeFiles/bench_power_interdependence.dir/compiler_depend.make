# Empty compiler generated dependencies file for bench_power_interdependence.
# This may be replaced when dependencies are built.

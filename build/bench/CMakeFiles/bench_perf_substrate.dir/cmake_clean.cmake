file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_substrate.dir/bench_perf_substrate.cpp.o"
  "CMakeFiles/bench_perf_substrate.dir/bench_perf_substrate.cpp.o.d"
  "bench_perf_substrate"
  "bench_perf_substrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

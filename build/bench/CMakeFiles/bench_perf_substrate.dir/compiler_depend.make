# Empty compiler generated dependencies file for bench_perf_substrate.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_table1_historical.
# This may be replaced when dependencies are built.

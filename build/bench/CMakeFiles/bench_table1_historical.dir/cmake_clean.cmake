file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_historical.dir/bench_table1_historical.cpp.o"
  "CMakeFiles/bench_table1_historical.dir/bench_table1_historical.cpp.o.d"
  "bench_table1_historical"
  "bench_table1_historical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_historical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

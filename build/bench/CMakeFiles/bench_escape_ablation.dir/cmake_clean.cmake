file(REMOVE_RECURSE
  "CMakeFiles/bench_escape_ablation.dir/bench_escape_ablation.cpp.o"
  "CMakeFiles/bench_escape_ablation.dir/bench_escape_ablation.cpp.o.d"
  "bench_escape_ablation"
  "bench_escape_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_escape_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_escape_ablation.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_coverage_models.
# This may be replaced when dependencies are built.

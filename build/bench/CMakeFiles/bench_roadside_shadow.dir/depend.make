# Empty dependencies file for bench_roadside_shadow.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_roadside_shadow.dir/bench_roadside_shadow.cpp.o"
  "CMakeFiles/bench_roadside_shadow.dir/bench_roadside_shadow.cpp.o.d"
  "bench_roadside_shadow"
  "bench_roadside_shadow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_roadside_shadow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

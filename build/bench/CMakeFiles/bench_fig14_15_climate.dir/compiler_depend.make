# Empty compiler generated dependencies file for bench_fig14_15_climate.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_15_climate.dir/bench_fig14_15_climate.cpp.o"
  "CMakeFiles/bench_fig14_15_climate.dir/bench_fig14_15_climate.cpp.o.d"
  "bench_fig14_15_climate"
  "bench_fig14_15_climate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_15_climate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_iab_resilience.
# This may be replaced when dependencies are built.

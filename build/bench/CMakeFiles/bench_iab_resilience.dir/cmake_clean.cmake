file(REMOVE_RECURSE
  "CMakeFiles/bench_iab_resilience.dir/bench_iab_resilience.cpp.o"
  "CMakeFiles/bench_iab_resilience.dir/bench_iab_resilience.cpp.o.d"
  "bench_iab_resilience"
  "bench_iab_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iab_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_3_4_maps.dir/bench_fig2_3_4_maps.cpp.o"
  "CMakeFiles/bench_fig2_3_4_maps.dir/bench_fig2_3_4_maps.cpp.o.d"
  "bench_fig2_3_4_maps"
  "bench_fig2_3_4_maps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_3_4_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

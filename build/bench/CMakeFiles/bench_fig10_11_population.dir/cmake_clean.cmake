file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_11_population.dir/bench_fig10_11_population.cpp.o"
  "CMakeFiles/bench_fig10_11_population.dir/bench_fig10_11_population.cpp.o.d"
  "bench_fig10_11_population"
  "bench_fig10_11_population.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_11_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig10_11_population.
# This may be replaced when dependencies are built.

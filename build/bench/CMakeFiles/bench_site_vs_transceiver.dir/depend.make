# Empty dependencies file for bench_site_vs_transceiver.
# This may be replaced when dependencies are built.

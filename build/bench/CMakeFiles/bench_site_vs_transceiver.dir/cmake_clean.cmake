file(REMOVE_RECURSE
  "CMakeFiles/bench_site_vs_transceiver.dir/bench_site_vs_transceiver.cpp.o"
  "CMakeFiles/bench_site_vs_transceiver.dir/bench_site_vs_transceiver.cpp.o.d"
  "bench_site_vs_transceiver"
  "bench_site_vs_transceiver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_site_vs_transceiver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libfa_bench_common.a"
)

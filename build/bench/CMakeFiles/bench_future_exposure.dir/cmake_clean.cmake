file(REMOVE_RECURSE
  "CMakeFiles/bench_future_exposure.dir/bench_future_exposure.cpp.o"
  "CMakeFiles/bench_future_exposure.dir/bench_future_exposure.cpp.o.d"
  "bench_future_exposure"
  "bench_future_exposure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_future_exposure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_future_exposure.
# This may be replaced when dependencies are built.

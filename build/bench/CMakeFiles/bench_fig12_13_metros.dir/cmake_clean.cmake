file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_13_metros.dir/bench_fig12_13_metros.cpp.o"
  "CMakeFiles/bench_fig12_13_metros.dir/bench_fig12_13_metros.cpp.o.d"
  "bench_fig12_13_metros"
  "bench_fig12_13_metros.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_13_metros.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

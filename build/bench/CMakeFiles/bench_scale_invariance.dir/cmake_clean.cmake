file(REMOVE_RECURSE
  "CMakeFiles/bench_scale_invariance.dir/bench_scale_invariance.cpp.o"
  "CMakeFiles/bench_scale_invariance.dir/bench_scale_invariance.cpp.o.d"
  "bench_scale_invariance"
  "bench_scale_invariance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scale_invariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

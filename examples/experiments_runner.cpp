// experiments_runner — one-shot regeneration of every headline number in
// EXPERIMENTS.md as a single JSON document, so the comparison table can
// be refreshed (or CI-diffed) without scraping bench stdout.
//
//   $ ./experiments_runner > experiments.json
//   $ ./experiments_runner --scale 16 --cell 2700
#include <cstdio>
#include <cstring>

#include "core/analysis_context.hpp"
#include "core/case_study.hpp"
#include "core/climate.hpp"
#include "core/escape.hpp"
#include "core/population.hpp"
#include "core/provider_risk.hpp"
#include "core/roadside.hpp"
#include "core/validation.hpp"
#include "core/whp_overlay.hpp"
#include "io/json.hpp"

int main(int argc, char** argv) {
  using namespace fa;
  synth::ScenarioConfig config;
  config.corpus_scale = 16.0;
  config.whp_cell_m = 2700.0;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0) {
      config.corpus_scale = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--cell") == 0) {
      config.whp_cell_m = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      config.seed = static_cast<std::uint64_t>(std::atoll(argv[i + 1]));
    }
  }
  std::fprintf(stderr, "building world (scale 1/%.0f, cell %.0f m)...\n",
               config.corpus_scale, config.whp_cell_m);
  const core::AnalysisContext ctx(config);
  const core::World& world = ctx.world();

  io::JsonObject doc;
  doc["scenario"] = io::JsonObject{{"seed", config.seed},
                                   {"corpus_scale", config.corpus_scale},
                                   {"whp_cell_m", config.whp_cell_m},
                                   {"corpus_size", config.corpus_size()}};

  // Figure 7 / at-risk overlay.
  const core::WhpOverlayResult overlay = core::run_whp_overlay(world);
  io::JsonArray top_states;
  const auto rank = overlay.rank_by_at_risk();
  for (int i = 0; i < 5; ++i) {
    top_states.push_back(std::string{
        world.atlas().states()[static_cast<std::size_t>(rank[i])].abbr});
  }
  doc["whp_overlay"] = io::JsonObject{
      {"moderate", overlay.txr_by_class[3]},
      {"high", overlay.txr_by_class[4]},
      {"very_high", overlay.txr_by_class[5]},
      {"total_at_risk", overlay.total_at_risk()},
      {"at_risk_share", static_cast<double>(overlay.total_at_risk()) /
                            world.corpus().size()},
      {"top_states", std::move(top_states)}};

  // Table 2 shape.
  const core::ProviderRiskResult providers = core::run_provider_risk(world);
  io::JsonArray provider_rows;
  for (const core::ProviderRiskRow& row : providers.rows) {
    provider_rows.push_back(
        io::JsonObject{{"provider", std::string{provider_name(row.provider)}},
                       {"pct_moderate", row.pct_moderate()},
                       {"pct_high", row.pct_high()},
                       {"pct_very_high", row.pct_very_high()}});
  }
  doc["providers"] = std::move(provider_rows);

  // Section 3.4 validation + 3.8 extension.
  const core::ValidationResult validation = core::run_whp_validation(world);
  const core::ExtensionResult extension =
      core::run_perimeter_extension(world, validation);
  doc["validation"] = io::JsonObject{
      {"in_perimeter", validation.in_perimeter},
      {"accuracy", validation.accuracy()},
      {"accuracy_excluding_top2", validation.accuracy_excluding_top2()},
      {"vh_before", extension.vh_before},
      {"vh_after", extension.vh_after},
      {"at_risk_after_extension", extension.at_risk_after}};

  // Figure 5 case study.
  const firesim::DirsReport report = core::run_california_case_study(world);
  const auto& peak =
      report.days[static_cast<std::size_t>(report.peak_day())];
  doc["case_study"] = io::JsonObject{
      {"peak_label", peak.label},
      {"peak_total", peak.total()},
      {"peak_power_share",
       peak.total() ? static_cast<double>(peak.power) / peak.total() : 0.0},
      {"final_day_total", report.days.back().total()}};

  // Figures 10-11.
  const core::PopulationImpactResult impact =
      core::run_population_impact(world);
  doc["population"] = io::JsonObject{
      {"population_served", impact.population_served},
      {"at_risk_pop_vh", impact.at_risk_pop_vh()},
      {"very_high_pop_vh", impact.very_high_pop_vh()}};

  // Extensions.
  const core::FutureExposureResult future = core::run_future_exposure(world);
  const core::RoadsideResult roadside = core::run_roadside_shadow(world, 8);
  doc["extensions"] = io::JsonObject{
      {"future_exposure_growth",
       future.at_risk_2040 / std::max<double>(1.0, future.at_risk_now)},
      {"roadside_flag_rate", roadside.roadside_flag_rate()},
      {"interior_flag_rate", roadside.interior_flag_rate()}};

  std::printf("%s\n", io::to_json(io::JsonValue{std::move(doc)}, 2).c_str());
  return 0;
}

// State risk report: the workload a state public-utility commission would
// run — exposure by hazard class, by provider, by county density, plus a
// metro WUI gradient — for one state given on the command line.
//
//   $ ./state_risk_report CA
//   $ ./state_risk_report FL
#include <cstdio>
#include <algorithm>
#include <map>
#include <cstring>

#include "core/analysis_context.hpp"
#include "core/metro.hpp"
#include "core/population.hpp"
#include "core/report.hpp"
#include "core/world.hpp"
#include "geo/geodesy.hpp"

int main(int argc, char** argv) {
  using namespace fa;
  const char* abbr = argc > 1 ? argv[1] : "CA";

  synth::ScenarioConfig config;
  config.corpus_scale = 32.0;
  config.whp_cell_m = 2700.0;
  const core::AnalysisContext ctx(config);
  const core::World& world = ctx.world();

  const int state = world.atlas().state_index(abbr);
  if (state < 0) {
    std::fprintf(stderr, "unknown state '%s' (use a postal code, e.g. CA)\n",
                 abbr);
    return 1;
  }
  const synth::StateInfo& info = world.atlas().states()[state];
  std::printf("=== Wildfire risk report: %s ===\n", info.name.data());
  std::printf("population %.1fM, fire propensity %.2f\n\n",
              info.population / 1e6, info.fire_propensity);

  // Exposure by hazard class.
  std::array<std::size_t, synth::kNumWhpClasses> by_class{};
  std::size_t state_total = 0;
  for (const auto& t : world.corpus().transceivers()) {
    if (t.state != state) continue;
    ++state_total;
    ++by_class[static_cast<std::size_t>(world.txr_class(t.id))];
  }
  core::TextTable classes({"WHP class", "Transceivers", "Share"});
  for (int cls = 0; cls < synth::kNumWhpClasses; ++cls) {
    classes.add_row(
        {std::string{synth::whp_class_name(static_cast<synth::WhpClass>(cls))},
         core::fmt_count(by_class[static_cast<std::size_t>(cls)]),
         core::fmt_pct(state_total ? static_cast<double>(by_class[cls]) /
                                         state_total
                                   : 0.0)});
  }
  std::printf("exposure by hazard class (%s transceivers in state):\n%s\n",
              core::fmt_count(state_total).c_str(), classes.str().c_str());

  // County hot list: at-risk transceivers by county.
  std::map<int, std::size_t> by_county;
  for (const auto& t : world.corpus().transceivers()) {
    if (t.state != state || !synth::whp_at_risk(world.txr_class(t.id))) {
      continue;
    }
    const int county = world.txr_county(t.id);
    if (county >= 0) ++by_county[county];
  }
  std::vector<std::pair<std::size_t, int>> hot;
  for (const auto& [county, count] : by_county) hot.push_back({count, county});
  std::sort(hot.rbegin(), hot.rend());
  core::TextTable counties({"County", "Population", "At-risk txr"});
  for (std::size_t i = 0; i < hot.size() && i < 8; ++i) {
    const synth::County& c = world.counties().county(hot[i].second);
    counties.add_row({c.name, core::fmt_count(static_cast<std::size_t>(
                                  c.population)),
                      core::fmt_count(hot[i].first)});
  }
  std::printf("county hot list:\n%s\n", counties.str().c_str());

  // Metro gradient for the state's largest metro.
  const synth::CityInfo* metro = nullptr;
  for (const synth::CityInfo& city : world.atlas().cities()) {
    if (world.atlas().state_index(city.state_abbr) != state) continue;
    if (metro == nullptr || city.metro_population > metro->metro_population) {
      metro = &city;
    }
  }
  if (metro != nullptr) {
    std::printf("WUI gradient around %s:\n", metro->name.data());
    core::TextTable rings({"Ring (km)", "Transceivers", "At-risk share"});
    for (const core::MetroRing& ring :
         core::metro_risk_gradient(world, metro->position, 90e3)) {
      rings.add_row({core::fmt_double(ring.inner_m / 1000.0, 0) + "-" +
                         core::fmt_double(ring.outer_m / 1000.0, 0),
                     core::fmt_count(ring.transceivers),
                     core::fmt_pct(ring.at_risk_share())});
    }
    std::printf("%s", rings.str().c_str());
  }
  return 0;
}

// Ensemble drill: the "which sites fail users the most?" question asked
// properly — across a whole ensemble of seeded fire seasons instead of
// one case study. Runs a 100-member cascading-scenario ensemble over the
// California fleet (fires x PSPS x backhaul x battery exhaustion),
// prints the expected-loss headline, the season exceedance curve, and
// the top-10 most fragile sites, then lets the hardening optimizer spend
// a small upgrade budget and re-scores the ensemble against it.
//
//   $ ./ensemble_drill                 # ~100-member ensemble
//   $ FA_ENS_MEMBERS=32 ./ensemble_drill
#include <cstdio>
#include <cstdlib>

#include "core/analysis_context.hpp"
#include "core/report.hpp"
#include "core/world.hpp"
#include "ensemble/ensemble.hpp"
#include "ensemble/harden.hpp"

namespace {

double env_or(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return end != v && parsed > 0.0 ? parsed : fallback;
}

}  // namespace

int main() {
  using namespace fa;
  synth::ScenarioConfig config;
  config.corpus_scale = env_or("FA_SCALE", 100.0);
  config.whp_cell_m = env_or("FA_CELL_M", 9000.0);
  const core::AnalysisContext ctx(config);

  ensemble::EnsembleConfig ens;
  ens.members = static_cast<std::uint32_t>(env_or("FA_ENS_MEMBERS", 100.0));
  ens.seed = static_cast<std::uint64_t>(env_or("FA_SEED", 7.0));

  const ensemble::SharedInputs inputs =
      ensemble::SharedInputs::build(ctx.world(), ens);
  const ensemble::EnsembleReport report = ensemble::run_ensemble(inputs, ens);

  std::printf(
      "%u-member fire-season ensemble over %u California sites "
      "(~%s users served)\n\n",
      report.members, report.sites,
      core::fmt_count(static_cast<std::size_t>(inputs.region_users)).c_str());
  std::printf("expected per season:  %.0f user-hours lost "
              "(power %.0f / overlap-with-fire %.0f)\n",
              report.expected_user_hours, report.expected_power_user_hours,
              report.expected_overlap_user_hours);
  std::printf("                      %.0f person-days inside fire perimeters, "
              "%.1f fires, %llu outage site-days total\n\n",
              report.expected_pop_exposure,
              static_cast<double>(report.fires) /
                  std::max(1u, report.effective_members()),
              static_cast<unsigned long long>(report.outage_site_days));

  std::printf("season severity exceedance (P[user-hours >= x]):\n");
  for (const ensemble::ExceedancePoint& p : report.exceedance) {
    if (p.probability <= 0.0 && p.user_hours > 0.0) continue;
    std::printf("  >= %9.0f uh   %5.1f%%\n", p.user_hours,
                100.0 * p.probability);
  }

  core::TextTable table(
      {"#", "Site", "Users", "E[user-hours]", "Power share", "P(outage)"});
  const std::vector<ensemble::FragileSite> top =
      ensemble::top_k_fragile(inputs, report, 10);
  for (std::size_t r = 0; r < top.size(); ++r) {
    const ensemble::FragileSite& row = top[r];
    char site[64], users[32], uh[32], share[32], prob[32];
    std::snprintf(site, sizeof site, "#%u (%.2f, %.2f)", row.site,
                  row.position.lon, row.position.lat);
    std::snprintf(users, sizeof users, "%.0f", row.users);
    std::snprintf(uh, sizeof uh, "%.1f", row.expected_user_hours);
    std::snprintf(share, sizeof share, "%.0f%%", 100.0 * row.power_share);
    std::snprintf(prob, sizeof prob, "%.0f%%", 100.0 * row.outage_probability);
    table.add_row({std::to_string(r + 1), site, users, uh, share, prob});
  }
  std::printf("\ntop-10 most fragile sites:\n\n%s\n", table.str().c_str());

  // Spend a small hardening budget and re-score the same ensemble.
  const ensemble::HardenConfig harden;
  const ensemble::HardeningPlan plan =
      ensemble::optimize_hardening(inputs, report);
  const ensemble::EnsembleReport hardened =
      ensemble::run_ensemble(inputs, ens, &plan);
  std::printf(
      "hardening %u budget points (batteries + feeder rebuilds):\n"
      "  expected user-hours  %.0f -> %.0f  (%.1f%% lower; optimizer "
      "predicted %.0f saved)\n",
      harden.budget, report.expected_user_hours,
      hardened.expected_user_hours,
      report.expected_user_hours > 0.0
          ? 100.0 * (1.0 - hardened.expected_user_hours /
                               report.expected_user_hours)
          : 0.0,
      plan.predicted_savings);
  return 0;
}

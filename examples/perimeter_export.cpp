// Perimeter export: simulate a fire season and write it out as GeoJSON +
// OpenCelliD-schema CSV of the affected transceivers — the data-exchange
// path a GIS analyst would use to pull results into QGIS/ArcGIS.
//
//   $ ./perimeter_export 2018 season_2018.geojson affected_2018.csv
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/analysis_context.hpp"
#include "core/overlay.hpp"
#include "core/world.hpp"
#include "io/geojson.hpp"
#include "io/wkt.hpp"
#include "synth/firecalib.hpp"

int main(int argc, char** argv) {
  using namespace fa;
  const int year = argc > 1 ? std::atoi(argv[1]) : 2018;
  const std::string geojson_path =
      argc > 2 ? argv[2] : "season_" + std::to_string(year) + ".geojson";
  const std::string csv_path =
      argc > 3 ? argv[3] : "affected_" + std::to_string(year) + ".csv";

  synth::ScenarioConfig config;
  config.corpus_scale = 32.0;
  config.whp_cell_m = 2700.0;
  const core::AnalysisContext ctx(config);
  const core::World& world = ctx.world();

  // Find the requested season in the Table 1 calibration record.
  const synth::FireYearStats* target = nullptr;
  for (const auto& y : synth::historical_fire_years()) {
    if (y.year == year) target = &y;
  }
  if (target == nullptr) {
    std::fprintf(stderr, "year %d not in 2000-2018\n", year);
    return 1;
  }

  firesim::FireSimulator sim(world.whp(), world.atlas(), config.seed);
  const firesim::FireSeason season = sim.simulate_year(*target);
  std::printf("%d: %zu large fires, %.2fM acres simulated\n", year,
              season.fires.size(), season.simulated_acres / 1e6);

  // GeoJSON FeatureCollection of perimeters.
  io::JsonArray features;
  for (const firesim::FirePerimeter& fire : season.fires) {
    features.push_back(io::feature(
        io::multipolygon_geometry(fire.perimeter),
        io::JsonObject{{"name", fire.name},
                       {"year", fire.year},
                       {"acres", fire.acres},
                       {"start_day", fire.start_day},
                       {"end_day", fire.end_day}}));
  }
  {
    std::ofstream out(geojson_path);
    out << io::to_json(io::feature_collection(std::move(features)), 2);
  }
  std::printf("wrote %s\n", geojson_path.c_str());

  // Affected transceivers as OpenCelliD-schema CSV.
  const auto hit_ids = core::transceivers_in_perimeters(world, season.fires);
  std::vector<cellnet::Transceiver> affected;
  affected.reserve(hit_ids.size());
  for (const std::uint32_t id : hit_ids) {
    affected.push_back(world.corpus()[id]);
  }
  {
    std::ofstream out(csv_path);
    cellnet::write_opencellid_csv(out, cellnet::CellCorpus{affected});
  }
  std::printf("wrote %s (%zu affected transceivers)\n", csv_path.c_str(),
              affected.size());

  // Daily progression of a named large fire (GeoMAC-style real-time
  // perimeters), exported alongside the season.
  {
    const auto prog = sim.spread_fire_staged({-120.6, 39.2}, 40000.0, 6,
                                             year, 9000);
    io::JsonArray days;
    for (std::size_t d = 0; d < prog.daily.size(); ++d) {
      days.push_back(io::feature(
          io::multipolygon_geometry(prog.daily[d]),
          io::JsonObject{{"day", d + 1},
                         {"cumulative_acres", prog.daily_acres[d]}}));
    }
    std::ofstream out("progression_" + std::to_string(year) + ".geojson");
    out << io::to_json(io::feature_collection(std::move(days)));
    std::printf("wrote progression_%d.geojson (%zu daily perimeters, "
                "final %.0f acres)\n",
                year, prog.daily.size(), prog.daily_acres.back());
  }

  // And the largest perimeter as WKT, for copy-paste into a SQL console.
  if (!season.fires.empty()) {
    const firesim::FirePerimeter* biggest = &season.fires.front();
    for (const auto& f : season.fires) {
      if (f.acres > biggest->acres) biggest = &f;
    }
    const std::string wkt = io::to_wkt(biggest->perimeter);
    std::printf("largest fire %s (%.0f acres), WKT prefix: %.120s...\n",
                biggest->name.c_str(), biggest->acres, wkt.c_str());
  }
  return 0;
}

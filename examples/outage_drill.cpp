// Outage drill: a provider resilience exercise. Replays the 2019-style
// PSPS event under different mitigation policies — longer batteries,
// hardened feeders — and prints the peak/total outage deltas. This is the
// "what should we buy?" question the paper's Section 3.10 raises.
//
//   $ ./outage_drill
#include <cstdio>

#include "core/analysis_context.hpp"
#include "core/case_study.hpp"
#include "core/report.hpp"
#include "core/world.hpp"

namespace {

struct Policy {
  const char* name;
  double battery_hours;
  double feeder_psps_base;
};

}  // namespace

int main() {
  using namespace fa;
  synth::ScenarioConfig config;
  config.corpus_scale = 32.0;
  config.whp_cell_m = 2700.0;
  const core::AnalysisContext ctx(config);
  const core::World& world = ctx.world();

  // Baseline: Section 3.2 conditions. Mitigations: 48h batteries (the
  // post-Katrina FCC proposal that was never adopted), hardened feeders,
  // and both.
  const Policy policies[] = {
      {"baseline (6h battery)", 6.0, 0.055},
      {"48h batteries", 48.0, 0.055},
      {"hardened feeders", 6.0, 0.0275},
      {"both", 48.0, 0.0275},
  };

  core::TextTable table({"Policy", "Peak outages", "Outage site-days",
                         "vs baseline"});
  double baseline_days = -1.0;
  for (const Policy& policy : policies) {
    firesim::OutageSimConfig sim;
    sim.battery_hours = policy.battery_hours;
    sim.feeder_psps_base = policy.feeder_psps_base;
    const firesim::DirsReport report =
        core::run_california_case_study(world, sim);
    std::size_t peak = 0;
    std::size_t site_days = 0;
    for (const firesim::DayOutages& day : report.days) {
      peak = std::max(peak, day.total());
      site_days += day.total();
    }
    if (baseline_days < 0.0) baseline_days = static_cast<double>(site_days);
    table.add_row(
        {policy.name, core::fmt_count(peak), core::fmt_count(site_days),
         core::fmt_pct(baseline_days > 0.0
                           ? static_cast<double>(site_days) / baseline_days
                           : 0.0,
                       0)});
  }
  std::printf("2019-style PSPS drill over the California fleet "
              "(%s sites monitored at this scale):\n\n%s\n",
              core::fmt_count(
                  core::run_california_case_study(world).sites_monitored)
                  .c_str(),
              table.str().c_str());
  std::printf(
      "reading: batteries that bridge a full-day de-energization eliminate\n"
      "power-cause outages entirely (the dominant cause); feeder hardening\n"
      "only halves them. That is the paper's Section 3.10 argument for\n"
      "backup power as the first mitigation dollar.\n");
  return 0;
}

// facli — command-line front end for the data-exchange workflow, so the
// library is usable without writing C++:
//
//   facli generate-corpus  out.csv        [--scale N]            OpenCelliD CSV
//   facli generate-whp     out.fagrid     [--cell M]             hazard raster
//   facli overlay          corpus.csv whp.fagrid                 risk table
//   facli season           YEAR out.geojson [--scale N]          fire season
//
// generate-* products round-trip through `overlay`, which ingests them
// like externally-supplied data (the paper's actual inputs would take the
// same path: an OpenCelliD CSV plus a WHP raster).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/report.hpp"
#include "core/world.hpp"
#include "io/fagrid.hpp"
#include "io/geojson.hpp"
#include "synth/cells.hpp"
#include "synth/firecalib.hpp"
#include "firesim/fire.hpp"

namespace {

using namespace fa;

double arg_value(int argc, char** argv, const char* flag, double fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

synth::ScenarioConfig config_from(int argc, char** argv) {
  synth::ScenarioConfig config;
  config.corpus_scale = arg_value(argc, argv, "--scale", 64.0);
  config.whp_cell_m = arg_value(argc, argv, "--cell", 5400.0);
  config.seed =
      static_cast<std::uint64_t>(arg_value(argc, argv, "--seed", 20191022.0));
  return config;
}

int cmd_generate_corpus(int argc, char** argv) {
  if (argc < 1) {
    std::fprintf(stderr, "usage: facli generate-corpus out.csv [--scale N]\n");
    return 1;
  }
  const synth::ScenarioConfig config = config_from(argc, argv);
  const cellnet::CellCorpus corpus =
      synth::generate_corpus(synth::UsAtlas::get(), config);
  std::ofstream out(argv[0]);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", argv[0]);
    return 1;
  }
  cellnet::write_opencellid_csv(out, corpus);
  std::printf("wrote %zu transceivers to %s\n", corpus.size(), argv[0]);
  return 0;
}

int cmd_generate_whp(int argc, char** argv) {
  if (argc < 1) {
    std::fprintf(stderr, "usage: facli generate-whp out.fagrid [--cell M]\n");
    return 1;
  }
  const synth::ScenarioConfig config = config_from(argc, argv);
  const synth::WhpModel whp =
      synth::generate_whp(synth::UsAtlas::get(), config);
  io::save_fagrid(argv[0], whp.grid());
  std::printf("wrote %dx%d WHP grid (%.0f m cells) to %s\n",
              whp.grid().cols(), whp.grid().rows(), config.whp_cell_m,
              argv[0]);
  return 0;
}

int cmd_overlay(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: facli overlay corpus.csv whp.fagrid\n");
    return 1;
  }
  std::ifstream csv(argv[0]);
  if (!csv) {
    std::fprintf(stderr, "cannot open %s\n", argv[0]);
    return 1;
  }
  cellnet::CsvLoadStats stats;
  const cellnet::CellCorpus corpus = cellnet::read_opencellid_csv(csv, &stats);
  const raster::ClassRaster grid = io::load_fagrid(argv[1]);
  std::printf("loaded %zu transceivers (%zu skipped), %dx%d hazard grid\n",
              corpus.size(), stats.skipped, grid.cols(), grid.rows());

  // The raster is in Albers metres (as generate-whp wrote it).
  const geo::AlbersConus proj;
  std::array<std::size_t, synth::kNumWhpClasses> by_class{};
  for (const cellnet::Transceiver& t : corpus.transceivers()) {
    const auto cls = grid.sample(proj.forward(t.position), 0);
    ++by_class[std::min<std::uint8_t>(cls, synth::kNumWhpClasses - 1)];
  }
  core::TextTable table({"WHP class", "Transceivers", "Share"});
  for (int cls = 0; cls < synth::kNumWhpClasses; ++cls) {
    table.add_row(
        {std::string{synth::whp_class_name(static_cast<synth::WhpClass>(cls))},
         core::fmt_count(by_class[static_cast<std::size_t>(cls)]),
         core::fmt_pct(static_cast<double>(by_class[cls]) /
                       std::max<std::size_t>(1, corpus.size()))});
  }
  std::printf("%s", table.str().c_str());
  const std::size_t at_risk = by_class[3] + by_class[4] + by_class[5];
  std::printf("at risk (M/H/VH): %s (%s)\n", core::fmt_count(at_risk).c_str(),
              core::fmt_pct(static_cast<double>(at_risk) /
                            std::max<std::size_t>(1, corpus.size()))
                  .c_str());
  return 0;
}

int cmd_season(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: facli season YEAR out.geojson [--scale N]\n");
    return 1;
  }
  const int year = std::atoi(argv[0]);
  const synth::ScenarioConfig config = config_from(argc, argv);
  const synth::FireYearStats* target = nullptr;
  for (const auto& y : synth::historical_fire_years()) {
    if (y.year == year) target = &y;
  }
  if (target == nullptr) {
    std::fprintf(stderr, "year %d not in 2000-2018\n", year);
    return 1;
  }
  const synth::WhpModel whp =
      synth::generate_whp(synth::UsAtlas::get(), config);
  firesim::FireSimulator sim(whp, synth::UsAtlas::get(), config.seed);
  const firesim::FireSeason season = sim.simulate_year(*target);
  io::JsonArray features;
  for (const firesim::FirePerimeter& fire : season.fires) {
    features.push_back(io::feature(io::multipolygon_geometry(fire.perimeter),
                                   io::JsonObject{{"name", fire.name},
                                                  {"acres", fire.acres}}));
  }
  std::ofstream out(argv[1]);
  out << io::to_json(io::feature_collection(std::move(features)));
  std::printf("wrote %zu perimeters (%.2fM acres) to %s\n",
              season.fires.size(), season.simulated_acres / 1e6, argv[1]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "facli — fivealarms command line\n"
                 "  facli generate-corpus out.csv     [--scale N] [--seed S]\n"
                 "  facli generate-whp    out.fagrid  [--cell M]  [--seed S]\n"
                 "  facli overlay         corpus.csv whp.fagrid\n"
                 "  facli season          YEAR out.geojson [--scale N]\n");
    return 1;
  }
  const std::string cmd = argv[1];
  if (cmd == "generate-corpus") return cmd_generate_corpus(argc - 2, argv + 2);
  if (cmd == "generate-whp") return cmd_generate_whp(argc - 2, argv + 2);
  if (cmd == "overlay") return cmd_overlay(argc - 2, argv + 2);
  if (cmd == "season") return cmd_season(argc - 2, argv + 2);
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 1;
}

// Quickstart: build a world, run the core overlay, print a risk summary.
//
//   $ ./quickstart
//
// This is the 60-second tour of the public API: ScenarioConfig ->
// AnalysisContext -> run_whp_overlay / run_provider_risk -> TextTable.
#include <cstdio>

#include "core/analysis_context.hpp"
#include "core/provider_risk.hpp"
#include "core/report.hpp"
#include "core/whp_overlay.hpp"
#include "core/world.hpp"

int main() {
  using namespace fa;

  // 1. Configure the scenario. Everything downstream is deterministic in
  //    (seed, scale): rerun with the same config, get the same numbers.
  synth::ScenarioConfig config;
  config.seed = 20191022;      // the paper's OpenCelliD snapshot date
  config.corpus_scale = 32.0;  // 1/32 of the 5.36M-transceiver corpus
  config.whp_cell_m = 2700.0;  // 10x the USFS WHP resolution

  // 2. Build the world: hazard surface, transceiver corpus, county layer.
  std::printf("building world (%zu transceivers)...\n", config.corpus_size());
  const core::AnalysisContext ctx(config);
  const core::World& world = ctx.world();

  // 3. Who is at risk? The Section 3.3 overlay.
  const core::WhpOverlayResult overlay = core::run_whp_overlay(world);
  std::printf("\n%s of %s transceivers sit in moderate-or-worse wildfire "
              "hazard (%s)\n\n",
              core::fmt_count(overlay.total_at_risk()).c_str(),
              core::fmt_count(world.corpus().size()).c_str(),
              core::fmt_pct(static_cast<double>(overlay.total_at_risk()) /
                            world.corpus().size())
                  .c_str());

  // 4. Top states, like the paper's Figure 8.
  core::TextTable table({"State", "Moderate", "High", "Very High"});
  const auto rank = overlay.rank_by_at_risk();
  for (int i = 0; i < 5; ++i) {
    const core::StateWhpRow& row =
        overlay.states[static_cast<std::size_t>(rank[i])];
    table.add_row(
        {std::string{world.atlas().states()[row.state].name},
         core::fmt_count(row.moderate), core::fmt_count(row.high),
         core::fmt_count(row.very_high)});
  }
  std::printf("top five states by at-risk transceivers:\n%s\n",
              table.str().c_str());

  // 5. Per-provider exposure, like Table 2.
  const core::ProviderRiskResult providers = core::run_provider_risk(world);
  core::TextTable ptable({"Provider", "At risk", "Share of fleet"});
  for (const core::ProviderRiskRow& row : providers.rows) {
    const std::size_t at_risk = row.moderate + row.high + row.very_high;
    ptable.add_row({std::string{cellnet::provider_name(row.provider)},
                    core::fmt_count(at_risk),
                    core::fmt_pct(row.fleet ? static_cast<double>(at_risk) /
                                                  row.fleet
                                            : 0.0)});
  }
  std::printf("provider exposure:\n%s\n", ptable.str().c_str());
  std::printf("next: see examples/state_risk_report.cpp for a deep dive "
              "into one state.\n");
  return 0;
}

// Coverage gap: the Section 3.11 "alternate approach" — estimate how many
// people lose cellular service in a fire season, per county, rather than
// counting burned hardware.
//
//   $ ./coverage_gap            # 2018 season
//   $ ./coverage_gap 2007       # any year in 2000-2018
#include <cstdio>
#include <cstdlib>

#include "core/analysis_context.hpp"
#include "core/coverage.hpp"
#include "core/report.hpp"
#include "core/world.hpp"
#include "synth/firecalib.hpp"

int main(int argc, char** argv) {
  using namespace fa;
  const int year = argc > 1 ? std::atoi(argv[1]) : 2018;

  synth::ScenarioConfig config;
  config.corpus_scale = 32.0;
  config.whp_cell_m = 2700.0;
  const core::AnalysisContext ctx(config);
  const core::World& world = ctx.world();

  const synth::FireYearStats* target = nullptr;
  for (const auto& y : synth::historical_fire_years()) {
    if (y.year == year) target = &y;
  }
  if (target == nullptr) {
    std::fprintf(stderr, "year %d not in 2000-2018\n", year);
    return 1;
  }

  firesim::FireSimulator sim(world.whp(), world.atlas(), config.seed);
  const firesim::FireSeason season = sim.simulate_year(*target);
  const core::CoverageResult coverage =
      core::run_coverage_loss(world, season.fires);

  std::printf("=== Service-coverage impact of the %d fire season ===\n",
              year);
  std::printf("%zu transceivers inside perimeters across %zu counties\n\n",
              coverage.transceivers_lost, coverage.counties.size());

  core::TextTable table({"County", "St", "Population", "Txr lost", "Share",
                         "Users affected"});
  for (std::size_t i = 0; i < coverage.counties.size() && i < 10; ++i) {
    const core::CountyCoverageRow& row = coverage.counties[i];
    table.add_row({row.name, row.state_abbr,
                   core::fmt_count(static_cast<std::size_t>(row.population)),
                   core::fmt_count(row.lost) + "/" +
                       core::fmt_count(row.transceivers),
                   core::fmt_pct(row.lost_share()),
                   core::fmt_count(static_cast<std::size_t>(row.users_affected))});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("estimated users affected, all counties: %s\n",
              core::fmt_count(static_cast<std::size_t>(
                                  coverage.total_users_affected))
                  .c_str());
  std::printf(
      "\nnote the redundancy knee: counties losing under %.0f%% of their\n"
      "transceivers show zero user impact — co-sited radios and cell overlap\n"
      "absorb small losses, so hardware counts alone overstate harm.\n",
      core::CoverageConfig{}.redundancy * 100.0);
  return 0;
}

// Reproduces Figure 8 (states with the most transceivers in M/H/VH WHP)
// and Figure 9 (the same per thousand residents).
#include <cstdio>

#include "bench_common.hpp"
#include "core/whp_overlay.hpp"

int main() {
  using namespace fa;
  core::AnalysisContext& ctx = bench::bench_context("Figures 8-9: per-state WHP exposure");
  const core::World& world = ctx.world();

  bench::Stopwatch timer;
  const core::WhpOverlayResult overlay = core::run_whp_overlay(world);
  const auto& states = world.atlas().states();

  std::printf("Figure 8 — top 12 states by at-risk transceivers\n");
  std::printf("(paper top-7 moderate: CA FL TX SC GA NC AZ; CA/FL/TX lead)\n");
  core::TextTable table(
      {"Rank", "State", "Moderate", "High", "Very High", "Total", "x-scale"});
  io::JsonArray by_state;
  const auto rank = overlay.rank_by_at_risk();
  for (int i = 0; i < 12 && i < static_cast<int>(rank.size()); ++i) {
    const core::StateWhpRow& row =
        overlay.states[static_cast<std::size_t>(rank[i])];
    table.add_row({std::to_string(i + 1),
                   std::string{states[static_cast<std::size_t>(row.state)].name},
                   core::fmt_count(row.moderate), core::fmt_count(row.high),
                   core::fmt_count(row.very_high), core::fmt_count(row.at_risk()),
                   core::fmt_count(static_cast<std::size_t>(
                       bench::to_paper_scale(world, row.at_risk())))});
    by_state.push_back(io::JsonObject{
        {"state", std::string{states[static_cast<std::size_t>(row.state)].abbr}},
        {"moderate", row.moderate},
        {"high", row.high},
        {"very_high", row.very_high}});
  }
  std::printf("%s\n", table.str().c_str());

  std::printf("Figure 9 — top 10 states per 1,000 residents "
              "(rates shown at full-corpus scale)\n");
  std::printf("(paper VH per-capita leaders: UT FL CA NV NM)\n");
  core::TextTable capita({"Rank", "State", "M /1k", "H /1k", "VH /1k"});
  const auto capita_rank = overlay.rank_by_per_capita();
  const double scale = world.config().corpus_scale;
  for (int i = 0; i < 10 && i < static_cast<int>(capita_rank.size()); ++i) {
    const core::StateWhpRow& row =
        overlay.states[static_cast<std::size_t>(capita_rank[i])];
    capita.add_row(
        {std::to_string(i + 1),
         std::string{states[static_cast<std::size_t>(row.state)].name},
         core::fmt_double(row.per_thousand_m * scale, 2),
         core::fmt_double(row.per_thousand_h * scale, 2),
         core::fmt_double(row.per_thousand_vh * scale, 2)});
  }
  std::printf("%s\n", capita.str().c_str());
  std::printf("elapsed: %.2fs\n", timer.seconds());

  bench::print_json_trailer("fig8_9_states",
                            io::JsonValue{std::move(by_state)}, &timer);
  return 0;
}

// Reproduces Figure 10 (WHP class x county-population matrix) and the
// Figure 11 panel statistics (at-risk transceivers by county density,
// including the very-high/very-dense city breakdown).
#include <cstdio>

#include "bench_common.hpp"
#include "core/population.hpp"

int main() {
  using namespace fa;
  core::AnalysisContext& ctx = bench::bench_context("Figures 10-11: population-weighted impact");
  const core::World& world = ctx.world();

  bench::Stopwatch timer;
  const core::PopulationImpactResult r = core::run_population_impact(world);

  std::printf("Figure 10 — at-risk transceivers by WHP class and county "
              "population:\n");
  core::TextTable table(
      {"WHP class", "Rural(<200k)", "Pop M(200k-500k)", "Pop H(0.5-1.5M)",
       "Pop VH(>1.5M)"});
  const char* class_names[] = {"Moderate", "High", "Very High"};
  for (int w = 0; w < 3; ++w) {
    table.add_row({class_names[w],
                   core::fmt_count(r.matrix[static_cast<std::size_t>(w)][0]),
                   core::fmt_count(r.matrix[static_cast<std::size_t>(w)][1]),
                   core::fmt_count(r.matrix[static_cast<std::size_t>(w)][2]),
                   core::fmt_count(r.matrix[static_cast<std::size_t>(w)][3])});
  }
  std::printf("%s\n", table.str().c_str());

  std::printf("population of counties served by at-risk transceivers: "
              "%.1fM (paper: 'over 85 million')\n\n",
              r.population_served / 1e6);

  std::printf("Figure 11 panels:\n");
  std::printf("  left   (at-risk in counties >200k): %s  x-scale %s  "
              "(paper: ~250,000)\n",
              core::fmt_count(r.at_risk_pop_m_plus()).c_str(),
              core::fmt_count(static_cast<std::size_t>(bench::to_paper_scale(
                                  world, r.at_risk_pop_m_plus())))
                  .c_str());
  std::printf("  center (at-risk in counties >1.5M): %s  x-scale %s  "
              "(paper: 57,504)\n",
              core::fmt_count(r.at_risk_pop_vh()).c_str(),
              core::fmt_count(static_cast<std::size_t>(
                                  bench::to_paper_scale(world, r.at_risk_pop_vh())))
                  .c_str());
  std::printf("  right  (VH WHP in counties >1.5M):  %s  x-scale %s  "
              "(paper: ~7,000)\n\n",
              core::fmt_count(r.very_high_pop_vh()).c_str(),
              core::fmt_count(static_cast<std::size_t>(bench::to_paper_scale(
                                  world, r.very_high_pop_vh())))
                  .c_str());

  std::printf("Figure 11 right panel by county (paper: Los Angeles 3,547, "
              "Miami 1,536, San Diego 1,082,\nSan Francisco/San Jose 935, "
              "Phoenix 106, New York 81, Las Vegas 10):\n");
  core::TextTable cities({"County", "State", "VH transceivers", "x-scale"});
  io::JsonArray rows;
  for (const core::CityVhRow& row : core::very_high_by_major_county(world)) {
    cities.add_row({row.county, row.metro_state, core::fmt_count(row.count),
                    core::fmt_count(static_cast<std::size_t>(
                        bench::to_paper_scale(world, row.count)))});
    rows.push_back(io::JsonObject{{"county", row.county},
                                  {"state", row.metro_state},
                                  {"count", row.count}});
  }
  std::printf("%s\n", cities.str().c_str());
  std::printf("elapsed: %.2fs\n", timer.seconds());

  bench::print_json_trailer(
      "fig10_11_population",
      io::JsonObject{{"at_risk_pop_vh", r.at_risk_pop_vh()},
                     {"very_high_pop_vh", r.very_high_pop_vh()},
                     {"population_served", r.population_served},
                     {"by_county", std::move(rows)}}, &timer);
  return 0;
}

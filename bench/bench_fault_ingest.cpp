// Degraded-mode ingestion report: builds the same scenario under every
// RecoveryPolicy with the ingest.txr fault seam armed and shows what the
// validation stage did — the exact Status a Strict build fails with, the
// records Quarantine dropped, and the positions BestEffort repaired.
// FA_FAULTS overrides the default injection spec.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.hpp"
#include "fault/injector.hpp"

int main() {
  using namespace fa;
  bench::Stopwatch run_timer;
  const synth::ScenarioConfig cfg = bench::bench_scenario();
  std::printf("== Fault ingest: degraded-mode world builds ==\n");
  std::printf(
      "scenario: seed=%llu  whp_cell=%.0fm  corpus=1/%.0f of 5,364,949 "
      "(%zu transceivers)\n",
      static_cast<unsigned long long>(cfg.seed), cfg.whp_cell_m,
      cfg.corpus_scale, cfg.corpus_size());

  std::string spec = "seed=7,ingest.txr=0.003";
  if (const char* env = std::getenv("FA_FAULTS");
      env != nullptr && *env != '\0') {
    spec = env;
  }
  fault::Injector injector;
  {
    fault::Result<fault::Injector> parsed = fault::Injector::parse(spec);
    if (parsed.ok()) {
      injector = std::move(parsed).take();
    } else {
      std::fprintf(stderr, "bad fault spec: %s\n",
                   parsed.status().to_string().c_str());
      return 1;
    }
  }
  const fault::ScopedInjector scoped(std::move(injector));
  std::printf("faults: %s\n\n", spec.c_str());

  const fault::RecoveryPolicy policies[] = {
      fault::RecoveryPolicy::kStrict, fault::RecoveryPolicy::kQuarantine,
      fault::RecoveryPolicy::kBestEffort};

  core::TextTable table(
      {"Policy", "Kept", "Dropped", "Repaired", "Build s", "Outcome"});
  io::JsonArray rows;
  for (const fault::RecoveryPolicy policy : policies) {
    fault::Diagnostics diags;
    core::World::BuildOptions options;
    options.policy = policy;
    options.diagnostics = &diags;

    bench::Stopwatch timer;
    fault::Result<core::World> world = core::World::build(cfg, options);
    const double secs = timer.seconds();

    const std::string name{fault::recovery_policy_name(policy)};
    if (world.ok()) {
      table.add_row({name, core::fmt_count(world.value().corpus().size()),
                     core::fmt_count(world.value().ingest_dropped()),
                     core::fmt_count(world.value().ingest_repaired()),
                     core::fmt_double(secs, 2), "ok"});
      std::printf("%s: %s\n", name.c_str(),
                  core::coverage_line(world.value().corpus().size(), diags)
                      .c_str());
      rows.push_back(io::JsonObject{
          {"policy", name},
          {"kept", world.value().corpus().size()},
          {"dropped", world.value().ingest_dropped()},
          {"repaired", world.value().ingest_repaired()}});
    } else {
      table.add_row({name, "-", "-", "-", core::fmt_double(secs, 2),
                     world.status().to_string()});
      std::printf("%s: rejected (%s)\n", name.c_str(),
                  world.status().to_string().c_str());
      rows.push_back(io::JsonObject{
          {"policy", name},
          {"error", world.status().to_string()}});
    }
  }

  std::printf("\n%s\n", table.str().c_str());
  std::printf(
      "shape checks: Strict fails on the first injected record, Quarantine\n"
      "and BestEffort keep the same clean majority, BestEffort repairs the\n"
      "finite out-of-range subset instead of dropping it.\n");

  bench::print_json_trailer("fault_ingest", io::JsonValue{std::move(rows)}, &run_timer);
  return 0;
}

// Incremental-update bench: what does fa::delta buy over rebuilding?
//
// Measures, on the env-configured scenario (FA_SCALE/FA_CELL_M/FA_SEED):
//   rebuild_s        full from-scratch world build + provider-risk
//                    re-tally — the update-to-serving latency a
//                    rebuild-per-change deployment pays
//   apply_mean_s     mean feed-batch apply (ingest + copy-on-write
//                    apply + incremental index/risk maintenance) —
//                    the latency the delta path pays, measured over
//                    FA_DELTA_TICKS batches of a live synthetic feed
//   apply_p99_s      worst batch observed (fires dirty whole regions)
//
// The acceptance gate is the trailer's delta_speedup
// (rebuild_s / apply_mean_s): publishing a delta-built epoch must be
// >= 10x faster than the full rebuild it replaces. The final epoch is
// checked byte-identical to a from-scratch rebuild of the same state
// before the trailer prints — a fast wrong answer fails the run.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/provider_risk.hpp"
#include "core/world.hpp"
#include "delta/apply.hpp"
#include "delta/feed.hpp"
#include "store/codec.hpp"

int main() {
  using namespace fa;

  bench::Stopwatch run_timer;
  core::AnalysisContext& ctx = bench::bench_context(
      "fa::delta — incremental epoch updates vs full rebuild");
  const synth::ScenarioConfig cfg = ctx.world().config();

  const char* ticks_env = std::getenv("FA_DELTA_TICKS");
  const std::size_t ticks =
      ticks_env ? static_cast<std::size_t>(std::atol(ticks_env)) : 16;

  // Baseline: the rebuild-per-change path (fresh build, fresh tally).
  bench::Stopwatch rebuild_timer;
  core::World rebuilt = core::World::build(cfg);
  core::ProviderRiskResult rebuilt_risk = core::run_provider_risk(rebuilt);
  const double rebuild_s = rebuild_timer.seconds();
  std::printf("full rebuild: %.3fs (%zu transceivers)\n", rebuild_s,
              rebuilt.corpus().size());

  // Delta path: a live feed over the same world, one epoch per batch.
  core::World world = std::move(rebuilt);
  core::ProviderRiskResult risk = std::move(rebuilt_risk);
  delta::FeedOptions feed_options;
  feed_options.seed = cfg.seed + 1;
  delta::FeedGenerator gen(world, feed_options);
  delta::FeedIngestor ingestor;
  std::vector<double> apply_s;
  apply_s.reserve(ticks);
  std::size_t events_applied = 0;
  std::size_t dirty_total = 0;
  for (std::size_t tick = 0; tick < ticks; ++tick) {
    std::vector<delta::FeedEvent> raw = gen.tick();
    bench::Stopwatch apply_timer;
    auto cleaned = ingestor.ingest(std::move(raw));
    if (!cleaned.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n",
                   cleaned.status().to_string().c_str());
      return 1;
    }
    auto applied = delta::Applier::apply(world, risk, cleaned.value(), {});
    if (!applied.ok()) {
      std::fprintf(stderr, "apply failed: %s\n",
                   applied.status().to_string().c_str());
      return 1;
    }
    delta::ApplyResult result = std::move(applied).take();
    apply_s.push_back(apply_timer.seconds());
    events_applied += result.stats.events - result.stats.quarantined;
    dirty_total += result.stats.dirty_transceivers;
    world = std::move(result.world);
    risk = std::move(result.provider_risk);
  }
  double apply_sum = 0.0;
  double apply_max = 0.0;
  for (const double s : apply_s) {
    apply_sum += s;
    apply_max = std::max(apply_max, s);
  }
  std::vector<double> sorted = apply_s;
  std::sort(sorted.begin(), sorted.end());
  const double apply_mean_s = apply_sum / static_cast<double>(ticks);
  const double apply_p99_s =
      sorted[std::min(sorted.size() - 1,
                      static_cast<std::size_t>(
                          static_cast<double>(sorted.size()) * 0.99))];
  std::printf(
      "delta apply: %zu batches, %zu events, mean %.4fs, max %.4fs "
      "(%zu cache entries dirtied)\n",
      ticks, events_applied, apply_mean_s, apply_max, dirty_total);

  // Correctness gate: the final delta-built epoch must be
  // byte-identical to a from-scratch rebuild of the same state.
  core::World::BuildOptions opts;
  auto reference = core::World::from_parts(
      cellnet::CellCorpus(
          std::vector<cellnet::Transceiver>(world.corpus().transceivers())),
      world.whp_ptr(), world.counties_ptr(), world.config(), opts);
  if (!reference.ok()) {
    std::fprintf(stderr, "reference rebuild failed: %s\n",
                 reference.status().to_string().c_str());
    return 1;
  }
  core::World ref_world = std::move(reference).take();
  const core::ProviderRiskResult ref_risk =
      core::run_provider_risk(ref_world);
  const bool byte_identical = store::encode_world(world, risk) ==
                              store::encode_world(ref_world, ref_risk);
  if (!byte_identical) {
    std::fprintf(stderr,
                 "FAIL: delta-built epoch diverges from rebuild\n");
  }

  const double speedup = apply_mean_s > 0.0 ? rebuild_s / apply_mean_s : 0.0;
  const bool delta_faster = speedup >= 10.0;
  std::printf("update-to-serving speedup: %.1fx (%s the 10x gate)\n",
              speedup, delta_faster ? "clears" : "MISSES");

  io::JsonObject payload;
  payload["transceivers"] = world.corpus().size();
  payload["ticks"] = ticks;
  payload["events_applied"] = events_applied;
  payload["dirty_transceivers"] = dirty_total;
  payload["rebuild_s"] = rebuild_s;
  payload["apply_mean_s"] = apply_mean_s;
  payload["apply_p99_s"] = apply_p99_s;
  payload["apply_max_s"] = apply_max;
  payload["byte_identical"] = byte_identical;
  payload["delta_speedup"] = speedup;
  payload["delta_faster"] = delta_faster;
  bench::print_json_trailer("delta_ingest", io::JsonValue{std::move(payload)},
                            &run_timer);
  return byte_identical ? 0 : 1;
}

// Microbenchmarks of the GIS substrate (google-benchmark): the overlay
// primitives whose cost dominates the reproduction pipeline, plus the
// R-tree vs uniform-grid index ablation called out in DESIGN.md.
#include <benchmark/benchmark.h>

#include <random>

#include "geo/algorithms.hpp"
#include "geo/buffer.hpp"
#include "geo/projection.hpp"
#include "index/grid_index.hpp"
#include "index/rtree.hpp"
#include "raster/morphology.hpp"
#include "raster/rasterize.hpp"
#include "synth/noise.hpp"

namespace {

using namespace fa;

std::vector<geo::Vec2> random_points(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> x(-125.0, -66.0);
  std::uniform_real_distribution<double> y(24.0, 50.0);
  std::vector<geo::Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) pts.push_back({x(rng), y(rng)});
  return pts;
}

geo::Ring irregular_ring(int vertices) {
  std::vector<geo::Vec2> pts;
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> jitter(0.7, 1.3);
  for (int i = 0; i < vertices; ++i) {
    const double t = 2.0 * std::numbers::pi * i / vertices;
    const double r = jitter(rng);
    pts.push_back({r * std::cos(t), r * std::sin(t)});
  }
  return geo::Ring{std::move(pts)};
}

void BM_PointInPolygon(benchmark::State& state) {
  const geo::Ring ring = irregular_ring(static_cast<int>(state.range(0)));
  const auto pts = random_points(1024, 3);
  std::size_t i = 0;
  for (auto _ : state) {
    const geo::Vec2 p{pts[i & 1023].x / 60.0, pts[i & 1023].y / 60.0};
    benchmark::DoNotOptimize(ring.contains(p));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PointInPolygon)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_RTreeBuild(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 11);
  std::vector<index::RTree::Entry> entries;
  entries.reserve(pts.size());
  for (std::uint32_t i = 0; i < pts.size(); ++i) {
    entries.push_back({geo::BBox::of_point(pts[i]).inflated(0.05), i});
  }
  for (auto _ : state) {
    index::RTree tree(entries);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RTreeQuery(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 13);
  std::vector<index::RTree::Entry> entries;
  for (std::uint32_t i = 0; i < pts.size(); ++i) {
    entries.push_back({geo::BBox::of_point(pts[i]).inflated(0.05), i});
  }
  const index::RTree tree(entries);
  std::size_t i = 0;
  std::size_t found = 0;
  for (auto _ : state) {
    const geo::Vec2 q = pts[i % pts.size()];
    tree.query_point(q, [&found](std::uint32_t) { ++found; });
    ++i;
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RTreeQuery)->Arg(1000)->Arg(100000);

void BM_GridIndexQuery(benchmark::State& state) {
  // Ablation vs BM_RTreeQuery: point storage in a uniform grid.
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 13);
  const index::GridIndex idx(pts, geo::BBox{-125, 24, -66, 50}, 256, 128);
  std::size_t i = 0;
  std::size_t found = 0;
  for (auto _ : state) {
    const geo::Vec2 q = pts[i % pts.size()];
    idx.query(geo::BBox::of_point(q).inflated(0.05),
              [&found](std::uint32_t, geo::Vec2) { ++found; });
    ++i;
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GridIndexQuery)->Arg(1000)->Arg(100000);

void BM_RasterizePolygon(benchmark::State& state) {
  raster::GridGeometry geom;
  geom.origin_x = -2.0;
  geom.origin_y = -2.0;
  geom.cell_w = geom.cell_h = 4.0 / state.range(0);
  geom.cols = geom.rows = static_cast<int>(state.range(0));
  const geo::Polygon poly{irregular_ring(64)};
  raster::MaskRaster mask(geom, 0);
  for (auto _ : state) {
    mask.fill(0);
    raster::rasterize_polygon(mask, poly, 1);
    benchmark::DoNotOptimize(mask.data().data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * state.range(0));
}
BENCHMARK(BM_RasterizePolygon)->Arg(64)->Arg(256)->Arg(1024);

void BM_DistanceTransform(benchmark::State& state) {
  raster::GridGeometry geom;
  geom.cell_w = geom.cell_h = 270.0;
  geom.cols = geom.rows = static_cast<int>(state.range(0));
  raster::MaskRaster mask(geom, 0);
  std::mt19937_64 rng(5);
  for (int k = 0; k < geom.cols; ++k) {
    mask.at(static_cast<int>(rng() % geom.cols),
            static_cast<int>(rng() % geom.rows)) = 1;
  }
  for (auto _ : state) {
    const raster::FloatRaster d = raster::distance_transform(mask);
    benchmark::DoNotOptimize(d.data().data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * state.range(0));
}
BENCHMARK(BM_DistanceTransform)->Arg(256)->Arg(1024);

void BM_AlbersForward(benchmark::State& state) {
  const geo::AlbersConus proj;
  const auto pts = random_points(1024, 17);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        proj.forward(geo::LonLat::from_vec(pts[i & 1023])));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AlbersForward);

void BM_FbmNoise(benchmark::State& state) {
  const synth::ValueNoise noise(42);
  double x = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(noise.fbm(x, -x * 0.7, 4));
    x += 0.01;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FbmNoise);

void BM_BufferHull(benchmark::State& state) {
  const geo::Ring ring = irregular_ring(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::buffer_hull(ring, 0.1));
  }
}
BENCHMARK(BM_BufferHull)->Arg(16)->Arg(128);

}  // namespace

BENCHMARK_MAIN();

// Performance substrate report, in two parts:
//
//   1. fa::exec scaling — the Section 3.3 overlay primitive
//      (transceivers_in_perimeters) timed at 1/2/4/8 worker threads via
//      exec::ConcurrencyLimit, with an output-equality check against the
//      single-thread run and a machine-readable JSON trailer. Speedups
//      are whatever the host delivers: on a single-CPU container the
//      multi-thread rows measure scheduling overhead, not speedup.
//
//   2. Microbenchmarks of the GIS substrate (google-benchmark): the
//      overlay primitives whose cost dominates the reproduction
//      pipeline, plus the R-tree vs uniform-grid index ablation called
//      out in DESIGN.md. Filter with --benchmark_filter=...
#include <benchmark/benchmark.h>

#include <cstdio>
#include <numbers>
#include <random>
#include <thread>

#include "bench_common.hpp"
#include "core/overlay.hpp"
#include "exec/exec.hpp"
#include "firesim/fire.hpp"
#include "geo/algorithms.hpp"
#include "geo/buffer.hpp"
#include "geo/projection.hpp"
#include "index/grid_index.hpp"
#include "index/rtree.hpp"
#include "raster/morphology.hpp"
#include "raster/rasterize.hpp"
#include "synth/noise.hpp"

namespace {

using namespace fa;

// ---------------------------------------------------------------- part 1

void run_overlay_scaling_report() {
  bench::Stopwatch run_timer;
  core::AnalysisContext& ctx =
      bench::bench_context("Perf substrate: fa::exec overlay scaling");
  const core::World& world = ctx.world();

  // One simulated fire season gives the overlay a realistic workload:
  // a few hundred irregular perimeters against the full corpus index.
  firesim::FireSimulator sim(world.whp(), world.atlas(),
                             world.config().seed);
  const firesim::FireSeason season =
      sim.simulate_year(ctx.historical_years().back(), ctx.fire_config);
  std::printf("workload: %zu fire perimeters vs %zu transceivers\n",
              season.fires.size(), world.corpus().size());
  std::printf("host: %u hardware threads, pool of %d workers\n\n",
              std::thread::hardware_concurrency(),
              exec::ThreadPool::global().max_workers());

  constexpr int kReps = 3;
  const int thread_counts[] = {1, 2, 4, 8};
  std::vector<std::uint32_t> reference;
  double serial_s = 0.0;
  bool all_identical = true;

  core::TextTable table(
      {"Threads", "Best of 3 (ms)", "Speedup vs 1", "Hits", "Identical"});
  io::JsonArray rows;
  for (const int threads : thread_counts) {
    exec::ConcurrencyLimit limit(threads);
    double best = 0.0;
    std::vector<std::uint32_t> hits;
    for (int rep = 0; rep < kReps; ++rep) {
      bench::Stopwatch sw;
      hits = core::transceivers_in_perimeters(world, season.fires);
      const double s = sw.seconds();
      if (rep == 0 || s < best) best = s;
    }
    if (threads == 1) {
      reference = hits;
      serial_s = best;
    }
    const bool identical = hits == reference;
    all_identical = all_identical && identical;
    const double speedup = best > 0.0 ? serial_s / best : 0.0;
    table.add_row({std::to_string(threads),
                   core::fmt_double(best * 1e3, 2),
                   core::fmt_double(speedup, 2) + "x",
                   core::fmt_count(hits.size()), identical ? "yes" : "NO"});
    rows.push_back(io::JsonObject{{"threads", threads},
                                  {"best_ms", best * 1e3},
                                  {"speedup", speedup},
                                  {"hits", hits.size()},
                                  {"identical", identical}});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("determinism: every thread count produced %s output\n\n",
              all_identical ? "identical" : "DIVERGENT");

  io::JsonObject payload;
  payload["hardware_threads"] =
      static_cast<int>(std::thread::hardware_concurrency());
  payload["pool_workers"] = exec::ThreadPool::global().max_workers();
  payload["perimeters"] = season.fires.size();
  payload["transceivers"] = world.corpus().size();
  payload["identical_across_threads"] = all_identical;
  payload["scaling"] = io::JsonValue{std::move(rows)};
  bench::print_json_trailer("perf_substrate_scaling",
                            io::JsonValue{std::move(payload)}, &run_timer);
  std::printf("\n");
}

// ---------------------------------------------------------------- part 2

std::vector<geo::Vec2> random_points(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> x(-125.0, -66.0);
  std::uniform_real_distribution<double> y(24.0, 50.0);
  std::vector<geo::Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) pts.push_back({x(rng), y(rng)});
  return pts;
}

geo::Ring irregular_ring(int vertices) {
  std::vector<geo::Vec2> pts;
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> jitter(0.7, 1.3);
  for (int i = 0; i < vertices; ++i) {
    const double t = 2.0 * std::numbers::pi * i / vertices;
    const double r = jitter(rng);
    pts.push_back({r * std::cos(t), r * std::sin(t)});
  }
  return geo::Ring{std::move(pts)};
}

void BM_PointInPolygon(benchmark::State& state) {
  const geo::Ring ring = irregular_ring(static_cast<int>(state.range(0)));
  const auto pts = random_points(1024, 3);
  std::size_t i = 0;
  for (auto _ : state) {
    const geo::Vec2 p{pts[i & 1023].x / 60.0, pts[i & 1023].y / 60.0};
    benchmark::DoNotOptimize(ring.contains(p));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PointInPolygon)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_RTreeBuild(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 11);
  std::vector<index::RTree::Entry> entries;
  entries.reserve(pts.size());
  for (std::uint32_t i = 0; i < pts.size(); ++i) {
    entries.push_back({geo::BBox::of_point(pts[i]).inflated(0.05), i});
  }
  for (auto _ : state) {
    index::RTree tree(entries);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RTreeQuery(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 13);
  std::vector<index::RTree::Entry> entries;
  for (std::uint32_t i = 0; i < pts.size(); ++i) {
    entries.push_back({geo::BBox::of_point(pts[i]).inflated(0.05), i});
  }
  const index::RTree tree(entries);
  std::size_t i = 0;
  std::size_t found = 0;
  for (auto _ : state) {
    const geo::Vec2 q = pts[i % pts.size()];
    tree.query_point(q, [&found](std::uint32_t) { ++found; });
    ++i;
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RTreeQuery)->Arg(1000)->Arg(100000);

void BM_GridIndexQuery(benchmark::State& state) {
  // Ablation vs BM_RTreeQuery: point storage in a uniform grid.
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 13);
  const index::GridIndex idx(pts, geo::BBox{-125, 24, -66, 50}, 256, 128);
  std::size_t i = 0;
  std::size_t found = 0;
  for (auto _ : state) {
    const geo::Vec2 q = pts[i % pts.size()];
    idx.query(geo::BBox::of_point(q).inflated(0.05),
              [&found](std::uint32_t, geo::Vec2) { ++found; });
    ++i;
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GridIndexQuery)->Arg(1000)->Arg(100000);

void BM_ParallelReduce(benchmark::State& state) {
  // fa::exec region overhead + throughput on a trivially-parallel sum,
  // swept over thread caps (Arg = max_threads; 1 = serial inline path).
  const std::size_t n = 1 << 20;
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = static_cast<double>(i % 97) * 0.25;
  }
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const double total = exec::parallel_reduce(
        n, 0.0,
        [&values](std::size_t begin, std::size_t end, double& acc) {
          for (std::size_t i = begin; i < end; ++i) acc += values[i];
        },
        [](double& into, double&& part) { into += part; },
        {.grain = 1 << 14, .max_threads = threads});
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ParallelReduce)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_RasterizePolygon(benchmark::State& state) {
  raster::GridGeometry geom;
  geom.origin_x = -2.0;
  geom.origin_y = -2.0;
  geom.cell_w = geom.cell_h = 4.0 / state.range(0);
  geom.cols = geom.rows = static_cast<int>(state.range(0));
  const geo::Polygon poly{irregular_ring(64)};
  raster::MaskRaster mask(geom, 0);
  for (auto _ : state) {
    mask.fill(0);
    raster::rasterize_polygon(mask, poly, 1);
    benchmark::DoNotOptimize(mask.data().data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * state.range(0));
}
BENCHMARK(BM_RasterizePolygon)->Arg(64)->Arg(256)->Arg(1024);

void BM_DistanceTransform(benchmark::State& state) {
  raster::GridGeometry geom;
  geom.cell_w = geom.cell_h = 270.0;
  geom.cols = geom.rows = static_cast<int>(state.range(0));
  raster::MaskRaster mask(geom, 0);
  std::mt19937_64 rng(5);
  for (int k = 0; k < geom.cols; ++k) {
    mask.at(static_cast<int>(rng() % geom.cols),
            static_cast<int>(rng() % geom.rows)) = 1;
  }
  for (auto _ : state) {
    const raster::FloatRaster d = raster::distance_transform(mask);
    benchmark::DoNotOptimize(d.data().data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * state.range(0));
}
BENCHMARK(BM_DistanceTransform)->Arg(256)->Arg(1024);

void BM_AlbersForward(benchmark::State& state) {
  const geo::AlbersConus proj;
  const auto pts = random_points(1024, 17);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        proj.forward(geo::LonLat::from_vec(pts[i & 1023])));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AlbersForward);

void BM_FbmNoise(benchmark::State& state) {
  const synth::ValueNoise noise(42);
  double x = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(noise.fbm(x, -x * 0.7, 4));
    x += 0.01;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FbmNoise);

void BM_BufferHull(benchmark::State& state) {
  const geo::Ring ring = irregular_ring(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::buffer_hull(ring, 0.1));
  }
}
BENCHMARK(BM_BufferHull)->Arg(16)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  run_overlay_scaling_report();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Closed-loop load generator for the fa::serve query layer.
//
// Builds one snapshot per server mode and drives it with 1/2/4/8 client
// threads, each issuing a fixed count of queries back-to-back (closed
// loop: the next request leaves when the previous answer lands). Three
// configurations per thread count:
//
//   direct   cache disabled — every request recomputes (the baseline)
//   cached   sharded LRU on, fully warmed over the repeated-query pool
//   batched  cache on, point queries through the admission queue
//
// The workload repeats a fixed pool of mixed-shape queries, the regime
// the result cache is built for; the trailer reports QPS and p50/p99
// latency per row plus whether cache-on beat cache-off at every thread
// count (the PR's acceptance gate).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <random>
#include <thread>
#include <variant>
#include <vector>

#include "bench_common.hpp"
#include "exec/exec.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"

namespace {

using namespace fa;

using AnyQuery = std::variant<serve::PointRiskQuery, serve::BBoxAggregateQuery,
                              serve::ProviderExposureQuery,
                              serve::TopKSitesQuery>;

// Fixed pool of distinct queries; clients sample it with repetition.
// Shapes carry real evaluation cost (index probes + haversine filters),
// so a cache hit has something to win against.
std::vector<AnyQuery> query_pool(std::size_t distinct) {
  std::mt19937_64 rng(5'364'949);
  std::uniform_real_distribution<double> lon(-122.0, -70.0);
  std::uniform_real_distribution<double> lat(26.0, 48.0);
  std::vector<AnyQuery> pool;
  pool.reserve(distinct);
  for (std::size_t i = 0; i < distinct; ++i) {
    switch (i % 4) {
      case 0:
      case 1:  // point-heavy mix: the batcher's shape
        pool.push_back(
            serve::PointRiskQuery{{lon(rng), lat(rng)}, 40e3});
        break;
      case 2: {
        const double x = lon(rng);
        const double y = lat(rng);
        pool.push_back(serve::BBoxAggregateQuery{{x, y, x + 2.0, y + 1.5}});
        break;
      }
      default:
        pool.push_back(serve::TopKSitesQuery{{lon(rng), lat(rng)}, 75e3, 10});
        break;
    }
  }
  return pool;
}

serve::PointRiskResponse ask(serve::Server& server, const AnyQuery& q,
                             bool batched) {
  return std::visit(
      [&](const auto& query) -> serve::PointRiskResponse {
        using Q = std::decay_t<decltype(query)>;
        serve::PointRiskResponse sink;  // per-type epochs folded into one
        if constexpr (std::is_same_v<Q, serve::PointRiskQuery>) {
          sink = batched ? server.point_risk_batched(query)
                         : server.point_risk(query);
        } else if constexpr (std::is_same_v<Q, serve::BBoxAggregateQuery>) {
          sink.epoch = server.bbox_aggregate(query).epoch;
        } else if constexpr (std::is_same_v<Q, serve::ProviderExposureQuery>) {
          sink.epoch = server.provider_exposure(query).epoch;
        } else {
          sink.epoch = server.top_k_sites(query).epoch;
        }
        return sink;
      },
      q);
}

struct LoadResult {
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double hit_rate = 0.0;  // of this run's cache lookups
};

// Runs `threads` closed-loop clients for `per_thread` queries each.
LoadResult run_load(serve::Server& server, obs::Registry& registry,
                    const std::vector<AnyQuery>& pool, int threads,
                    std::size_t per_thread, bool batched) {
  using Clock = std::chrono::steady_clock;
  const std::uint64_t hits0 =
      registry.counter(obs::metrics::kServeCacheHits).value();
  const std::uint64_t misses0 =
      registry.counter(obs::metrics::kServeCacheMisses).value();

  std::vector<std::vector<std::uint64_t>> latencies(
      static_cast<std::size_t>(threads));
  std::atomic<bool> start{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      std::mt19937_64 rng(1000 + static_cast<std::uint64_t>(t));
      std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
      std::vector<std::uint64_t>& out =
          latencies[static_cast<std::size_t>(t)];
      out.reserve(per_thread);
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::size_t i = 0; i < per_thread; ++i) {
        const AnyQuery& q = pool[pick(rng)];
        const Clock::time_point t0 = Clock::now();
        const serve::PointRiskResponse r = ask(server, q, batched);
        const Clock::time_point t1 = Clock::now();
        if (r.epoch == 0) std::abort();  // a served response is never epoch 0
        out.push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
      }
    });
  }
  const Clock::time_point wall0 = Clock::now();
  start.store(true, std::memory_order_release);
  for (std::thread& c : clients) c.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - wall0).count();

  std::vector<std::uint64_t> all;
  all.reserve(static_cast<std::size_t>(threads) * per_thread);
  for (const std::vector<std::uint64_t>& v : latencies) {
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());
  const auto pct = [&all](double p) {
    const std::size_t i = static_cast<std::size_t>(
        p * static_cast<double>(all.size() - 1));
    return static_cast<double>(all[i]) * 1e-3;  // ns -> us
  };
  LoadResult result;
  result.qps = wall_s > 0.0 ? static_cast<double>(all.size()) / wall_s : 0.0;
  result.p50_us = pct(0.50);
  result.p99_us = pct(0.99);
  const std::uint64_t hits =
      registry.counter(obs::metrics::kServeCacheHits).value() - hits0;
  const std::uint64_t misses =
      registry.counter(obs::metrics::kServeCacheMisses).value() - misses0;
  result.hit_rate = hits + misses > 0
                        ? static_cast<double>(hits) /
                              static_cast<double>(hits + misses)
                        : 0.0;
  return result;
}

}  // namespace

int main() {
  bench::Stopwatch run_timer;
  const synth::ScenarioConfig cfg = bench::bench_scenario();
  std::printf("== Serve QPS: closed-loop load on the fa::serve layer ==\n");
  std::printf(
      "scenario: seed=%llu  whp_cell=%.0fm  corpus=1/%.0f of 5,364,949 "
      "(%zu transceivers)\n",
      static_cast<unsigned long long>(cfg.seed), cfg.whp_cell_m,
      cfg.corpus_scale, cfg.corpus_size());
  std::printf("host: %u hardware threads, pool of %d workers\n",
              std::thread::hardware_concurrency(),
              exec::ThreadPool::global().max_workers());

  constexpr std::size_t kDistinct = 192;
  constexpr std::size_t kPerThread = 1200;
  const std::vector<AnyQuery> pool = query_pool(kDistinct);

  struct Mode {
    const char* name;
    bool cache;
    bool batched;
  };
  const Mode modes[] = {{"direct", false, false},
                        {"cached", true, false},
                        {"batched", true, true}};
  const int thread_counts[] = {1, 2, 4, 8};

  std::printf("workload: %zu distinct queries, %zu per client thread, "
              "closed loop\n\n", kDistinct, kPerThread);

  core::TextTable table(
      {"Mode", "Threads", "QPS", "p50 (us)", "p99 (us)", "Hit rate"});
  io::JsonArray rows;
  // qps[mode][threads-row]
  double qps[3][4] = {};
  for (std::size_t m = 0; m < 3; ++m) {
    const Mode& mode = modes[m];
    obs::Registry registry;
    serve::ServerOptions options;
    options.cache_enabled = mode.cache;
    options.registry = &registry;
    bench::Stopwatch build_timer;
    serve::Server server(cfg, options);
    std::printf("[%s] snapshot build: %.2fs (epoch %llu)\n", mode.name,
                build_timer.seconds(),
                static_cast<unsigned long long>(server.epoch()));
    if (mode.cache) {
      // Warm the cache over the whole pool so every timed row measures
      // the steady state rather than the first pass's compulsory misses.
      for (const AnyQuery& q : pool) (void)ask(server, q, false);
    }
    for (std::size_t t = 0; t < 4; ++t) {
      const int threads = thread_counts[t];
      const LoadResult r = run_load(server, registry, pool, threads,
                                    kPerThread, mode.batched);
      qps[m][t] = r.qps;
      table.add_row({mode.name, std::to_string(threads),
                     core::fmt_double(r.qps, 0),
                     core::fmt_double(r.p50_us, 1),
                     core::fmt_double(r.p99_us, 1),
                     core::fmt_double(100.0 * r.hit_rate, 1) + "%"});
      rows.push_back(io::JsonObject{{"mode", std::string(mode.name)},
                                    {"threads", threads},
                                    {"cache", mode.cache},
                                    {"batched", mode.batched},
                                    {"qps", r.qps},
                                    {"p50_us", r.p50_us},
                                    {"p99_us", r.p99_us},
                                    {"hit_rate", r.hit_rate}});
    }
  }
  std::printf("\n%s\n", table.str().c_str());

  bool cache_wins = true;
  for (std::size_t t = 0; t < 4; ++t) cache_wins &= qps[1][t] > qps[0][t];
  std::printf("cache-on %s cache-off QPS at every thread count\n",
              cache_wins ? "beats" : "DOES NOT beat");

  io::JsonObject payload;
  payload["hardware_threads"] =
      static_cast<int>(std::thread::hardware_concurrency());
  payload["pool_workers"] = exec::ThreadPool::global().max_workers();
  payload["distinct_queries"] = kDistinct;
  payload["queries_per_thread"] = kPerThread;
  payload["cache_on_beats_off"] = cache_wins;
  payload["rows"] = io::JsonValue{std::move(rows)};
  bench::print_json_trailer("serve_qps", io::JsonValue{std::move(payload)},
                            &run_timer);
  return 0;
}

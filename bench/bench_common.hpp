// Shared scaffolding for the reproduction harness binaries.
//
// Every bench_* executable prints (a) the scenario banner, (b) the
// paper's rows next to the measured values, and (c) a machine-readable
// JSON trailer. The scenario can be overridden via environment:
//   FA_CELL_M  - WHP cell size in metres   (default 1350)
//   FA_SCALE   - corpus scale denominator  (default 8)
//   FA_SEED    - master seed               (default 20191022)
//   FA_POLICY  - ingestion RecoveryPolicy: strict|quarantine|best_effort
//                (default quarantine)
//   FA_FAULTS  - deterministic fault-injection spec, e.g.
//                "seed=42,ingest.txr=0.01" (see fault/injector.hpp)
#pragma once

#include <chrono>
#include <string>

#include "core/analysis_context.hpp"
#include "core/report.hpp"
#include "core/world.hpp"
#include "io/json.hpp"

namespace fa::bench {

// Scenario from defaults + environment overrides.
synth::ScenarioConfig bench_scenario();

// The process-wide AnalysisContext for the env-configured scenario.
// Prints the banner, and the build time when this call builds the world
// (first bench in the process; reruns reuse the cached scenario).
core::AnalysisContext& bench_context(const std::string& bench_name);

class Stopwatch {
 public:
  Stopwatch()
      : start_(std::chrono::steady_clock::now()),
        cpu_start_s_(process_cpu_seconds()) {}
  // Elapsed wall-clock time.
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  // Per-process CPU time consumed since construction (sums across
  // threads, so > seconds() whenever the exec pool is busy).
  double cpu_seconds() const { return process_cpu_seconds() - cpu_start_s_; }

 private:
  static double process_cpu_seconds();

  std::chrono::steady_clock::time_point start_;
  double cpu_start_s_;
};

// Prints the machine-readable trailer (single line, greppable). When
// `timer` is given the trailer gains a "timing" object with "wall_s"
// and "cpu_s". With observability on (FA_OBS, the default) also prints
// a one-line OBS profile and writes a chrome-trace file
// trace_<bench_name>.json (to FA_TRACE_DIR when set, else the working
// directory) — open it at chrome://tracing or https://ui.perfetto.dev.
void print_json_trailer(const std::string& bench_name,
                        const io::JsonValue& payload,
                        const Stopwatch* timer = nullptr);

// Paper-normalized count: measured * corpus_scale, for comparing scaled
// runs against the paper's full-corpus numbers.
double to_paper_scale(const core::World& world, std::size_t measured);

}  // namespace fa::bench

// Reproduces Table 2: per-provider transceivers (and share of fleet)
// inside Moderate / High / Very High WHP areas.
#include <cstdio>

#include "bench_common.hpp"
#include "core/provider_risk.hpp"

int main() {
  using namespace fa;
  core::AnalysisContext& ctx = bench::bench_context("Table 2: cellular service provider risk");
  const core::World& world = ctx.world();

  bench::Stopwatch timer;
  const core::ProviderRiskResult r = core::run_provider_risk(world);

  // Paper reference percentages (share of each provider's fleet).
  struct PaperRow {
    const char* m;
    const char* h;
    const char* vh;
  };
  const PaperRow paper[] = {
      {"5.44%", "2.87%", "0.59%"},  // AT&T
      {"4.26%", "2.48%", "0.47%"},  // T-Mobile
      {"3.90%", "1.99%", "0.33%"},  // Sprint
      {"5.50%", "3.14%", "0.49%"},  // Verizon
      {"3.90%", "2.04%", "0.31%"},  // Others
  };

  core::TextTable table({"Provider", "WHP M", "(%)", "paper", "WHP H", "(%)",
                         "paper", "WHP VH", "(%)", "paper"});
  io::JsonArray rows;
  for (std::size_t p = 0; p < r.rows.size(); ++p) {
    const core::ProviderRiskRow& row = r.rows[p];
    table.add_row({std::string{cellnet::provider_name(row.provider)},
                   core::fmt_count(row.moderate),
                   core::fmt_pct(row.pct_moderate() / 100.0, 2), paper[p].m,
                   core::fmt_count(row.high),
                   core::fmt_pct(row.pct_high() / 100.0, 2), paper[p].h,
                   core::fmt_count(row.very_high),
                   core::fmt_pct(row.pct_very_high() / 100.0, 2), paper[p].vh});
    rows.push_back(io::JsonObject{
        {"provider", std::string{cellnet::provider_name(row.provider)}},
        {"fleet", row.fleet},
        {"moderate", row.moderate},
        {"high", row.high},
        {"very_high", row.very_high}});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("regional brands with at-risk infrastructure: %s "
              "(paper footnote: 46)\n",
              core::fmt_count(r.regional_brands_at_risk).c_str());
  std::printf(
      "shape checks: AT&T holds the most at-risk transceivers; every row has\n"
      "%%M > %%H > %%VH; Sprint is the least-exposed national carrier.\n");
  std::printf("elapsed: %.2fs\n", timer.seconds());

  bench::print_json_trailer("table2_providers", io::JsonValue{std::move(rows)}, &timer);
  return 0;
}

// Continental scale-out bench: what does geographic sharding buy when
// the corpus is the real 5,364,949 transceivers?
//
// Builds the continental world (FA_SHARD_SCALE divides the corpus for
// smoke runs), persists it twice — one monolithic FASNAP01 image, one
// sharded FASHRD01 container — and measures:
//
//   build_s            full world build from synthesis
//   shard_s            ShardedWorld::from_world over the default layout
//   mono_cold_s        monolithic cold start to first answered point
//                      query (mmap + full decode + adopt + evaluate)
//   shard_cold_s       sharded cold start to first answered point query
//                      (mmap + O(sections) validation, zero decode)
//   mono_qps/shard_qps closed-loop point-query throughput at
//                      FA_SHARD_THREADS threads over each snapshot
//
// Acceptance gates in the trailer:
//   cold_speedup  = mono_cold_s / shard_cold_s   >= 10x
//   qps_ratio     = shard_qps / mono_qps         >= 2x
//   identity_ok   — every pooled query answered byte-identically by
//                   both snapshots (the gate that makes the other two
//                   mean anything)
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_common.hpp"
#include "core/provider_risk.hpp"
#include "core/world.hpp"
#include "serve/snapshot.hpp"
#include "shard/codec.hpp"
#include "shard/recovery.hpp"
#include "shard/world.hpp"
#include "store/codec.hpp"
#include "store/recovery.hpp"
#include "store/store.hpp"

namespace {

double env_or(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return end != value ? parsed : fallback;
}

// Deterministic CONUS point-risk pool; half neighborhood queries, half
// bare cell lookups.
std::vector<fa::serve::PointRiskQuery> make_pool(std::size_t n,
                                                 std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> lon(-122.0, -70.0);
  std::uniform_real_distribution<double> lat(26.0, 48.0);
  std::vector<fa::serve::PointRiskQuery> pool;
  pool.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pool.push_back(fa::serve::PointRiskQuery{
        {lon(rng), lat(rng)}, (i % 2 == 0) ? 30e3 : 0.0});
  }
  return pool;
}

// Closed loop: `threads` workers each run `per_thread` queries round-
// robin over the pool. Returns queries per second of wall time.
double run_qps(const fa::serve::Snapshot& snap,
               const std::vector<fa::serve::PointRiskQuery>& pool,
               std::size_t threads, std::size_t per_thread) {
  fa::bench::Stopwatch timer;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&snap, &pool, per_thread, t] {
      std::size_t at = t * 7919;  // decorrelate thread starting points
      volatile std::uint64_t sink = 0;
      for (std::size_t i = 0; i < per_thread; ++i) {
        sink = fa::serve::evaluate(snap, pool[at++ % pool.size()]).nearby_txr;
      }
      (void)sink;
    });
  }
  for (std::thread& w : workers) w.join();
  const double elapsed = timer.seconds();
  return elapsed > 0.0
             ? static_cast<double>(threads * per_thread) / elapsed
             : 0.0;
}

}  // namespace

int main() {
  using namespace fa;

  bench::Stopwatch run_timer;
  synth::ScenarioConfig cfg = synth::ScenarioConfig::continental();
  cfg.corpus_scale = env_or("FA_SHARD_SCALE", cfg.corpus_scale);
  cfg.whp_cell_m = env_or("FA_CELL_M", cfg.whp_cell_m);
  cfg.seed = static_cast<std::uint64_t>(env_or("FA_SEED", 20191022.0));
  const auto threads =
      static_cast<std::size_t>(env_or("FA_SHARD_THREADS", 8.0));
  const auto per_thread =
      static_cast<std::size_t>(env_or("FA_SHARD_QUERIES", 2000.0));

  std::printf("== fa::shard — continental scale-out ==\n");
  std::printf(
      "scenario: seed=%llu  whp_cell=%.0fm  corpus=1/%.0f of 5,364,949 "
      "(%zu transceivers)\n\n",
      static_cast<unsigned long long>(cfg.seed), cfg.whp_cell_m,
      cfg.corpus_scale, cfg.corpus_size());

  bench::Stopwatch build_timer;
  const core::World world = core::World::build(cfg);
  const core::ProviderRiskResult risk = core::run_provider_risk(world);
  const double build_s = build_timer.seconds();
  std::printf("world build: %.2fs (%zu transceivers)\n", build_s,
              world.corpus().size());

  bench::Stopwatch shard_timer;
  const shard::ShardedWorld sharded =
      shard::ShardedWorld::from_world(world, risk, shard::LayoutOptions{});
  const double shard_s = shard_timer.seconds();
  std::printf("shard: %.2fs (%zu shards)\n", shard_s,
              sharded.shard_count());

  char mono_tmpl[] = "/tmp/fashard-bench-mono-XXXXXX";
  char shrd_tmpl[] = "/tmp/fashard-bench-shrd-XXXXXX";
  const std::string mono_path = ::mkdtemp(mono_tmpl);
  const std::string shrd_path = ::mkdtemp(shrd_tmpl);

  const std::string mono_image = store::encode_world(world, risk);
  const std::string shrd_image = shard::encode_sharded(sharded);
  {
    store::StoreDir mono_dir = store::StoreDir::open(mono_path).take();
    store::StoreDir shrd_dir = store::StoreDir::open(shrd_path).take();
    if (!mono_dir.commit(mono_image).ok() ||
        !shrd_dir.commit(shrd_image).ok()) {
      std::fprintf(stderr, "commit failed\n");
      return 1;
    }
  }
  std::printf("images: monolithic %zu bytes, sharded %zu bytes\n",
              mono_image.size(), shrd_image.size());

  const std::vector<serve::PointRiskQuery> pool = make_pool(512, cfg.seed);

  // Monolithic cold start to first query: full decode, then adopt (which
  // wraps the recovered aggregate) and answer one point query.
  bench::Stopwatch mono_cold_timer;
  fault::Result<store::RecoveredWorld> mono_rec =
      store::recover_from(mono_path);
  if (!mono_rec.ok()) {
    std::fprintf(stderr, "monolithic recover failed: %s\n",
                 mono_rec.status().to_string().c_str());
    return 1;
  }
  const std::shared_ptr<const serve::Snapshot> mono_snap =
      serve::Snapshot::adopt(std::move(mono_rec.value().loaded.world), 1,
                             std::move(mono_rec.value().loaded.provider_risk));
  (void)serve::evaluate(*mono_snap, pool[0]);
  const double mono_cold_s = mono_cold_timer.seconds();
  std::printf("monolithic cold start to first query: %.3fs\n", mono_cold_s);

  // Sharded cold start to first query: zero-copy open, no decode.
  bench::Stopwatch shard_cold_timer;
  fault::Result<shard::RecoveredShardedWorld> shrd_rec =
      shard::recover_sharded(shrd_path);
  if (!shrd_rec.ok()) {
    std::fprintf(stderr, "sharded recover failed: %s\n",
                 shrd_rec.status().to_string().c_str());
    return 1;
  }
  const std::shared_ptr<const serve::Snapshot> shrd_snap =
      serve::Snapshot::adopt_sharded(std::move(shrd_rec.value().world), 1);
  (void)serve::evaluate(*shrd_snap, pool[0]);
  const double shard_cold_s = shard_cold_timer.seconds();
  const double cold_speedup =
      shard_cold_s > 0.0 ? mono_cold_s / shard_cold_s : 0.0;
  const bool cold_faster = cold_speedup >= 10.0;
  std::printf(
      "sharded cold start to first query: %.4fs  (%.0fx, %s the 10x "
      "gate)\n",
      shard_cold_s, cold_speedup, cold_faster ? "clears" : "MISSES");

  // Byte-identity spot check over the whole pool before timing anything:
  // a fast wrong answer is not a result.
  std::size_t mismatches = 0;
  for (const serve::PointRiskQuery& q : pool) {
    if (!(serve::evaluate(*mono_snap, q) == serve::evaluate(*shrd_snap, q))) {
      ++mismatches;
    }
  }
  const bool identity_ok = mismatches == 0;
  std::printf("identity: %zu/%zu pooled queries identical\n",
              pool.size() - mismatches, pool.size());

  const double mono_qps = run_qps(*mono_snap, pool, threads, per_thread);
  const double shard_qps = run_qps(*shrd_snap, pool, threads, per_thread);
  const double qps_ratio = mono_qps > 0.0 ? shard_qps / mono_qps : 0.0;
  const bool qps_faster = qps_ratio >= 2.0;
  std::printf(
      "point QPS at %zu threads: monolithic %.0f, sharded %.0f  (%.2fx, "
      "%s the 2x gate)\n",
      threads, mono_qps, shard_qps, qps_ratio,
      qps_faster ? "clears" : "MISSES");

  std::error_code ec;
  std::filesystem::remove_all(mono_path, ec);
  std::filesystem::remove_all(shrd_path, ec);

  io::JsonObject payload;
  payload["transceivers"] = world.corpus().size();
  payload["shards"] = sharded.shard_count();
  payload["mono_image_bytes"] = mono_image.size();
  payload["shard_image_bytes"] = shrd_image.size();
  payload["build_s"] = build_s;
  payload["shard_s"] = shard_s;
  payload["mono_cold_s"] = mono_cold_s;
  payload["shard_cold_s"] = shard_cold_s;
  payload["cold_speedup"] = cold_speedup;
  payload["cold_faster"] = cold_faster;
  payload["threads"] = threads;
  payload["mono_qps"] = mono_qps;
  payload["shard_qps"] = shard_qps;
  payload["qps_ratio"] = qps_ratio;
  payload["qps_faster"] = qps_faster;
  payload["identity_ok"] = identity_ok;
  bench::print_json_trailer("shard_scale", io::JsonValue{std::move(payload)},
                            &run_timer);
  return identity_ok ? 0 : 1;
}

// Ablation of the Section 3.11 "alternate approach": how much population
// actually loses *service* when a season burns, under two models —
// county-bucket degradation vs the spatial service-disc model — compared
// with the paper's raw "population served by at-risk transceivers".
#include <cstdio>

#include "bench_common.hpp"
#include "core/coverage.hpp"
#include "core/population.hpp"
#include "synth/firecalib.hpp"

int main() {
  using namespace fa;
  core::AnalysisContext& ctx = bench::bench_context("Coverage ablation: hardware-at-risk vs users-without-service");
  const core::World& world = ctx.world();

  bench::Stopwatch timer;
  // The paper's framing: population of counties holding at-risk hardware.
  const core::PopulationImpactResult impact =
      core::run_population_impact(world);
  std::printf("paper-style statistic — population of counties served by "
              "at-risk transceivers: %.1fM (paper: >85M)\n\n",
              impact.population_served / 1e6);

  // A concrete season: 2018.
  firesim::FireSimulator sim(world.whp(), world.atlas(),
                             world.config().seed);
  const firesim::FireSeason season =
      sim.simulate_year(synth::historical_fire_years().back());

  // Model A: county degradation curve.
  const core::CoverageResult county =
      core::run_coverage_loss(world, season.fires);
  // Model B: spatial service discs over the population surface.
  const synth::PopulationSurface population =
      synth::PopulationSurface::build(world.atlas(), world.config());
  const core::SpatialCoverageResult spatial =
      core::run_spatial_coverage_loss(world, season.fires, population);

  core::TextTable table({"Model", "Txr/sites lost", "Users affected"});
  table.add_row({"county degradation curve",
                 core::fmt_count(county.transceivers_lost),
                 core::fmt_count(static_cast<std::size_t>(
                     county.total_users_affected))});
  table.add_row({"spatial service discs", core::fmt_count(spatial.sites_lost),
                 core::fmt_count(static_cast<std::size_t>(
                     spatial.uncovered_by_fires))});
  std::printf("2018 season, users losing service:\n%s\n", table.str().c_str());
  std::printf(
      "population within a service radius of the 2018 fires: %.2fM, of\n"
      "which %.2fM had coverage and %s lose it — both models agree the\n"
      "service harm is orders of magnitude below the %.0fM-people-served\n"
      "headline, because redundancy absorbs scattered hardware losses.\n"
      "That gap is the paper's motivation for studying coverage directly.\n",
      spatial.population_analyzed / 1e6, spatial.covered_before / 1e6,
      core::fmt_count(static_cast<std::size_t>(spatial.uncovered_by_fires))
          .c_str(),
      impact.population_served / 1e6);
  std::printf("elapsed: %.2fs\n", timer.seconds());

  bench::print_json_trailer(
      "coverage_models",
      io::JsonObject{
          {"population_served_headline", impact.population_served},
          {"county_users_affected", county.total_users_affected},
          {"spatial_users_affected", spatial.uncovered_by_fires},
          {"spatial_population_analyzed", spatial.population_analyzed}}, &timer);
  return 0;
}

// Closed-loop socket load generator for the fa::net front door.
//
// Where bench_serve_qps measures the in-process serve::Server, this
// bench measures the full networked path: framed requests over real
// loopback TCP connections through the epoll IO thread, admission
// control, and the worker pool. Two phases:
//
//   throughput  1/2/4/8 client threads (one connection each) against a
//               generously-queued server — QPS and p50/p99 latency of
//               accepted replies, zero sheds expected
//   saturation  many closed-loop clients against 1 worker and a tiny
//               admission queue — BUSY sheds must rise while the p99 of
//               *accepted* replies stays bounded (the reject path is
//               cheap and never queues behind real work), and a
//               concurrent Server::rebuild() completes mid-overload
//               with every accepted response epoch-pure
//
// Sizes for smoke runs come from the environment:
//   FA_NET_WORKERS         throughput-phase worker threads (default 4)
//   FA_NET_PER_THREAD      queries per client thread        (default 600)
//   FA_NET_SAT_CLIENTS     saturation client threads        (default 16)
//   FA_NET_SAT_PER_THREAD  saturation queries per client    (default 400)
//   FA_NET_SAT_QUEUE       saturation admission queue cap   (default 4)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "bench_common.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "serve/server.hpp"

namespace {

using namespace fa;

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0'
             ? static_cast<std::size_t>(std::strtoull(v, nullptr, 10))
             : fallback;
}

// Mixed-shape request pool; clients sample it with repetition. Same
// spatial envelope as bench_serve_qps so the two benches stress the
// same snapshot regions.
std::vector<serve::Request> request_pool(std::size_t distinct) {
  std::mt19937_64 rng(5'364'949);
  std::uniform_real_distribution<double> lon(-122.0, -70.0);
  std::uniform_real_distribution<double> lat(26.0, 48.0);
  std::vector<serve::Request> pool;
  pool.reserve(distinct);
  for (std::size_t i = 0; i < distinct; ++i) {
    switch (i % 4) {
      case 0:
      case 1:
        pool.push_back(serve::PointRiskQuery{{lon(rng), lat(rng)}, 40e3});
        break;
      case 2: {
        const double x = lon(rng);
        const double y = lat(rng);
        pool.push_back(serve::BBoxAggregateQuery{{x, y, x + 2.0, y + 1.5}});
        break;
      }
      default:
        pool.push_back(serve::TopKSitesQuery{{lon(rng), lat(rng)}, 75e3, 10});
        break;
    }
  }
  return pool;
}

std::uint64_t response_epoch(const serve::Response& response) {
  return std::visit([](const auto& r) { return r.epoch; }, response);
}

struct LoadStats {
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;       // BUSY replies
  std::uint64_t rejected = 0;   // any other wire error
  double qps = 0.0;             // accepted replies per wall second
  double p50_us = 0.0;          // of accepted replies
  double p99_us = 0.0;
  std::uint64_t min_epoch = 0;
  std::uint64_t max_epoch = 0;
};

// `threads` closed-loop clients, one connection each, `per_thread`
// framed calls per client. BUSY/RATE_LIMITED are answers (counted, not
// retried); a transport failure aborts the bench.
LoadStats run_load(std::uint16_t port, const std::vector<serve::Request>& pool,
                   int threads, std::size_t per_thread) {
  using Clock = std::chrono::steady_clock;
  struct PerThread {
    std::vector<std::uint64_t> latencies_ns;
    std::uint64_t shed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t min_epoch = ~0ull;
    std::uint64_t max_epoch = 0;
  };
  std::vector<PerThread> per(static_cast<std::size_t>(threads));
  std::atomic<bool> start{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      fault::Result<net::Client> conn = net::Client::connect("127.0.0.1", port);
      if (!conn.ok()) {
        std::fprintf(stderr, "connect failed: %s\n",
                     conn.status().to_string().c_str());
        std::abort();
      }
      net::Client client = std::move(conn).take();
      std::mt19937_64 rng(1000 + static_cast<std::uint64_t>(t));
      std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
      PerThread& mine = per[static_cast<std::size_t>(t)];
      mine.latencies_ns.reserve(per_thread);
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::size_t i = 0; i < per_thread; ++i) {
        const serve::Request& req = pool[pick(rng)];
        const Clock::time_point t0 = Clock::now();
        fault::Result<net::Client::Reply> reply = client.call(req);
        const Clock::time_point t1 = Clock::now();
        if (!reply.ok()) {
          std::fprintf(stderr, "call failed: %s\n",
                       reply.status().to_string().c_str());
          std::abort();
        }
        const net::Client::Reply& r = reply.value();
        if (r.ok()) {
          mine.latencies_ns.push_back(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()));
          const std::uint64_t epoch = response_epoch(*r.response);
          mine.min_epoch = std::min(mine.min_epoch, epoch);
          mine.max_epoch = std::max(mine.max_epoch, epoch);
        } else if (r.error->code == net::ErrorCode::kBusy) {
          ++mine.shed;
        } else {
          ++mine.rejected;
        }
      }
    });
  }
  const Clock::time_point wall0 = Clock::now();
  start.store(true, std::memory_order_release);
  for (std::thread& c : clients) c.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - wall0).count();

  LoadStats stats;
  std::vector<std::uint64_t> all;
  stats.min_epoch = ~0ull;
  for (const PerThread& mine : per) {
    all.insert(all.end(), mine.latencies_ns.begin(), mine.latencies_ns.end());
    stats.shed += mine.shed;
    stats.rejected += mine.rejected;
    stats.min_epoch = std::min(stats.min_epoch, mine.min_epoch);
    stats.max_epoch = std::max(stats.max_epoch, mine.max_epoch);
  }
  stats.accepted = all.size();
  if (stats.min_epoch == ~0ull) stats.min_epoch = 0;
  std::sort(all.begin(), all.end());
  if (!all.empty()) {
    const auto pct = [&all](double p) {
      const std::size_t i = static_cast<std::size_t>(
          p * static_cast<double>(all.size() - 1));
      return static_cast<double>(all[i]) * 1e-3;  // ns -> us
    };
    stats.p50_us = pct(0.50);
    stats.p99_us = pct(0.99);
  }
  stats.qps = wall_s > 0.0
                  ? static_cast<double>(stats.accepted) / wall_s
                  : 0.0;
  return stats;
}

}  // namespace

int main() {
  bench::Stopwatch run_timer;
  const synth::ScenarioConfig cfg = bench::bench_scenario();
  std::printf("== Serve net: closed-loop socket load on the front door ==\n");
  std::printf(
      "scenario: seed=%llu  whp_cell=%.0fm  corpus=1/%.0f of 5,364,949 "
      "(%zu transceivers)\n",
      static_cast<unsigned long long>(cfg.seed), cfg.whp_cell_m,
      cfg.corpus_scale, cfg.corpus_size());

  const std::size_t workers = env_size("FA_NET_WORKERS", 4);
  const std::size_t per_thread = env_size("FA_NET_PER_THREAD", 600);
  const std::size_t sat_clients = env_size("FA_NET_SAT_CLIENTS", 16);
  const std::size_t sat_per_thread = env_size("FA_NET_SAT_PER_THREAD", 400);
  const std::size_t sat_queue = env_size("FA_NET_SAT_QUEUE", 4);

  constexpr std::size_t kDistinct = 192;
  const std::vector<serve::Request> pool = request_pool(kDistinct);

  bench::Stopwatch build_timer;
  serve::Server backend(cfg);
  std::printf("snapshot build: %.2fs (epoch %llu)\n\n", build_timer.seconds(),
              static_cast<unsigned long long>(backend.epoch()));

  // -- throughput phase ------------------------------------------------
  std::printf("[throughput] %zu workers, queue 256, %zu calls per client\n",
              workers, per_thread);
  core::TextTable table(
      {"Threads", "QPS", "p50 (us)", "p99 (us)", "Accepted", "Shed"});
  io::JsonArray rows;
  {
    net::NetServerOptions options;
    options.workers = static_cast<int>(workers);
    options.queue_capacity = 256;
    net::NetServer front(backend, options);
    for (const int threads : {1, 2, 4, 8}) {
      const LoadStats r =
          run_load(front.port(), pool, threads, per_thread);
      table.add_row({std::to_string(threads), core::fmt_double(r.qps, 0),
                     core::fmt_double(r.p50_us, 1),
                     core::fmt_double(r.p99_us, 1),
                     std::to_string(r.accepted), std::to_string(r.shed)});
      rows.push_back(io::JsonObject{
          {"threads", threads},
          {"qps", r.qps},
          {"p50_us", r.p50_us},
          {"p99_us", r.p99_us},
          {"accepted", static_cast<double>(r.accepted)},
          {"shed", static_cast<double>(r.shed)}});
    }
    front.shutdown(/*drain=*/true);
  }
  std::printf("%s\n", table.str().c_str());

  // -- saturation phase ------------------------------------------------
  // One worker, a tiny admission queue, and more closed-loop clients
  // than the queue can hold: overflow arrivals must be shed with cheap
  // BUSY frames while a rebuild() races the overload.
  std::printf("[saturation] 1 worker, queue %zu, %zu clients x %zu calls, "
              "rebuild() mid-flight\n",
              sat_queue, sat_clients, sat_per_thread);
  LoadStats sat;
  std::uint64_t final_epoch = 0;
  bool rebuild_ok = false;
  {
    net::NetServerOptions options;
    options.workers = 1;
    options.queue_capacity = sat_queue;
    net::NetServer front(backend, options);
    std::thread rebuilder([&] {
      // Give the clients a moment to reach saturation first.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      rebuild_ok = backend.rebuild(cfg).ok();
    });
    sat = run_load(front.port(), pool, static_cast<int>(sat_clients),
                   sat_per_thread);
    rebuilder.join();
    front.shutdown(/*drain=*/true);
  }
  final_epoch = backend.epoch();
  // Every accepted reply carries an epoch that existed while it was in
  // flight: nothing older than the starting snapshot, nothing newer
  // than the swapped-in one, no torn mixtures (the response types are
  // epoch-stamped by the snapshot they were answered from).
  const bool epoch_pure =
      sat.accepted > 0 && sat.min_epoch >= 1 && sat.max_epoch <= final_epoch;
  const bool shed_demonstrated = sat.shed > 0 && sat.accepted > 0;
  std::printf("  accepted %llu (p99 %.1f us)  shed %llu  rejected %llu\n",
              static_cast<unsigned long long>(sat.accepted), sat.p99_us,
              static_cast<unsigned long long>(sat.shed),
              static_cast<unsigned long long>(sat.rejected));
  std::printf("  rebuild %s; epochs seen [%llu, %llu], final %llu — %s\n",
              rebuild_ok ? "ok" : "FAILED",
              static_cast<unsigned long long>(sat.min_epoch),
              static_cast<unsigned long long>(sat.max_epoch),
              static_cast<unsigned long long>(final_epoch),
              epoch_pure ? "epoch-pure" : "EPOCH VIOLATION");
  std::printf("  load shedding %s\n\n",
              shed_demonstrated ? "demonstrated (BUSY while accepted flow)"
                                : "NOT demonstrated");

  io::JsonObject saturation;
  saturation["clients"] = static_cast<double>(sat_clients);
  saturation["queue_capacity"] = static_cast<double>(sat_queue);
  saturation["accepted"] = static_cast<double>(sat.accepted);
  saturation["shed"] = static_cast<double>(sat.shed);
  saturation["accepted_p99_us"] = sat.p99_us;
  saturation["rebuild_ok"] = rebuild_ok;
  saturation["final_epoch"] = static_cast<double>(final_epoch);
  saturation["epoch_pure"] = epoch_pure;

  io::JsonObject payload;
  payload["workers"] = static_cast<double>(workers);
  payload["per_thread"] = static_cast<double>(per_thread);
  payload["distinct_queries"] = static_cast<double>(kDistinct);
  payload["shed_demonstrated"] = shed_demonstrated;
  payload["rows"] = io::JsonValue{std::move(rows)};
  payload["saturation"] = io::JsonValue{std::move(saturation)};
  bench::print_json_trailer("serve_net", io::JsonValue{std::move(payload)},
                            &run_timer);
  return epoch_pure && rebuild_ok ? 0 : 1;
}

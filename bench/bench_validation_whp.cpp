// Reproduces Section 3.4: validating WHP-based risk flags against the
// 2019 fire season — the 46% hit rate, the concentration of misses in
// two LA-edge fires, and the 84% rate once those are excluded.
#include <cstdio>

#include "bench_common.hpp"
#include "core/validation.hpp"

int main() {
  using namespace fa;
  core::AnalysisContext& ctx = bench::bench_context("Section 3.4: WHP validation vs the 2019 season");
  const core::World& world = ctx.world();

  bench::Stopwatch timer;
  // One season realization, like the paper's single real 2019 (pass
  // replicas > 1 to pool several and shrink the variance).
  const core::ValidationResult v = core::run_whp_validation(world, 1);

  std::printf("in-perimeter transceivers: %s "
              "(paper, one season: 656)\n",
              core::fmt_count(v.in_perimeter).c_str());
  std::printf("flagged by WHP M/H/VH: %s  =>  accuracy %s   (paper: 46%%)\n",
              core::fmt_count(v.predicted).c_str(),
              core::fmt_pct(v.accuracy()).c_str());
  const std::size_t misses = v.in_perimeter - v.predicted;
  std::printf("misses: %s, of which the two worst fires hold %s "
              "(paper: 288 of 354)\n",
              core::fmt_count(misses).c_str(),
              core::fmt_count(v.misses_in_top2).c_str());
  std::printf("accuracy excluding those two fires: %s   (paper: 84%%)\n\n",
              core::fmt_pct(v.accuracy_excluding_top2()).c_str());

  core::TextTable table({"Fire (worst miss counts)", "Unflagged txr"});
  for (std::size_t i = 0; i < v.top_miss_fires.size() && i < 6; ++i) {
    table.add_row({v.top_miss_fires[i].name,
                   core::fmt_count(v.top_miss_fires[i].misses)});
  }
  if (table.rows() > 0) std::printf("%s\n", table.str().c_str());
  std::printf("elapsed: %.2fs\n", timer.seconds());

  bench::print_json_trailer(
      "validation_whp",
      io::JsonObject{{"in_perimeter", v.in_perimeter},
                     {"predicted", v.predicted},
                     {"accuracy", v.accuracy()},
                     {"misses_in_top2", v.misses_in_top2},
                     {"accuracy_excluding_top2", v.accuracy_excluding_top2()}}, &timer);
  return 0;
}

// Measures the prepared-geometry kernel layer against the scalar
// baseline on a synthetic conterminous-US corpus: the same fire-vs-point
// join the Fig 6/7 overlay runs, isolated from world build so the three
// code paths — scalar Polygon::contains via callback, prepared slab
// probes, and the span/contains_batch kernel — are directly comparable
// at one thread. All three must produce identical hit sets (checked),
// and the batch path is the ≥3x acceptance gate for the kernel layer.
//
// Env knobs (defaults in parentheses):
//   FA_GEO_POINTS (400000)  synthetic transceiver count
//   FA_GEO_FIRES  (32)      synthetic fire perimeters
//   FA_GEO_VERTS  (512)     vertices per perimeter
//   FA_GEO_REPS   (3)       repetitions; best wall time is reported
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "geo/polygon.hpp"
#include "geo/prepared.hpp"
#include "index/grid_index.hpp"
#include "obs/obs.hpp"

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long long parsed = std::atoll(v);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

// Star polygon around `center`: sorted angles with jittered radii give a
// simple, irregular ring like a spread-model perimeter.
fa::geo::Ring star_ring(std::mt19937_64& rng, fa::geo::Vec2 center,
                        double base_radius, std::size_t verts) {
  std::uniform_real_distribution<double> angle(0.0, 2.0 * 3.14159265358979);
  std::uniform_real_distribution<double> wobble(0.35, 1.0);
  std::vector<double> angles(verts);
  for (double& a : angles) a = angle(rng);
  std::sort(angles.begin(), angles.end());
  std::vector<fa::geo::Vec2> pts;
  pts.reserve(verts);
  for (const double a : angles) {
    const double r = base_radius * wobble(rng);
    pts.push_back({center.x + r * std::cos(a), center.y + r * std::sin(a)});
  }
  return fa::geo::Ring(std::move(pts));
}

}  // namespace

int main() {
  using namespace fa;
  const std::size_t num_points = env_size("FA_GEO_POINTS", 400000);
  const std::size_t num_fires = env_size("FA_GEO_FIRES", 32);
  const std::size_t num_verts = env_size("FA_GEO_VERTS", 512);
  const std::size_t reps = env_size("FA_GEO_REPS", 3);
  const std::uint64_t seed = env_size("FA_SEED", 20191022);

  std::printf(
      "geo kernel bench: %zu points, %zu fires x %zu verts, %zu reps, "
      "seed %llu (single thread)\n",
      num_points, num_fires, num_verts, reps,
      static_cast<unsigned long long>(seed));

  // Synthetic CONUS: uniform points over the lon/lat box, star-polygon
  // perimeters inside a margin so their bboxes stay on the corpus.
  const geo::BBox conus{-124.0, 25.0, -67.0, 49.0};
  std::mt19937_64 rng(seed ^ 0x6E05BA7CULL);
  std::uniform_real_distribution<double> ux(conus.min_x, conus.max_x);
  std::uniform_real_distribution<double> uy(conus.min_y, conus.max_y);
  std::vector<geo::Vec2> points(num_points);
  for (geo::Vec2& p : points) p = {ux(rng), uy(rng)};
  const index::GridIndex idx(points, conus, 512, 256);

  std::uniform_real_distribution<double> cx(conus.min_x + 2.5,
                                            conus.max_x - 2.5);
  std::uniform_real_distribution<double> cy(conus.min_y + 2.5,
                                            conus.max_y - 2.5);
  std::uniform_real_distribution<double> radius(0.8, 2.0);
  std::vector<geo::MultiPolygon> fires;
  fires.reserve(num_fires);
  for (std::size_t f = 0; f < num_fires; ++f) {
    std::vector<geo::Polygon> parts;
    parts.emplace_back(star_ring(rng, {cx(rng), cy(rng)}, radius(rng),
                                 num_verts));
    fires.emplace_back(std::move(parts));
  }

  const std::span<const std::uint32_t> ids = idx.binned_ids();
  const std::span<const double> xs = idx.binned_xs();
  const std::span<const double> ys = idx.binned_ys();

  // Hit accounting shared by all kernels: count + order-independent id
  // hash, so "identical" means identical hit sets per fire.
  struct KernelResult {
    std::size_t hits = 0;
    std::uint64_t id_hash = 0;
    double best_s = 1e300;
  };
  const auto note_hit = [](KernelResult& r, std::uint32_t id) {
    ++r.hits;
    r.id_hash ^= (id + 0x9E3779B97F4A7C15ULL) * 0xBF58476D1CE4E5B9ULL;
  };

  bench::Stopwatch total;
  KernelResult scalar, prepared, batch;
  std::size_t candidates = 0;
  for (const geo::MultiPolygon& fire : fires) {
    idx.query_candidates(fire.bbox(),
                         [&](std::uint32_t, geo::Vec2) { ++candidates; });
  }

  for (std::size_t rep = 0; rep < reps; ++rep) {
    // --- scalar baseline: Exact callback + Polygon::contains ---------
    {
      const obs::Span span("geo.kernel.scalar");
      KernelResult r;
      bench::Stopwatch timer;
      for (const geo::MultiPolygon& fire : fires) {
        idx.query(fire.bbox(), [&](std::uint32_t id, geo::Vec2 p) {
          if (fire.contains(p)) note_hit(r, id);
        });
      }
      r.best_s = std::min(scalar.best_s, timer.seconds());
      if (rep > 0 && (r.hits != scalar.hits || r.id_hash != scalar.id_hash)) {
        std::fprintf(stderr, "scalar kernel drifted between reps\n");
        return 1;
      }
      scalar = r;
    }
    // --- prepared: slab-indexed point-at-a-time probes ---------------
    {
      const obs::Span span("geo.kernel.prepared");
      KernelResult r;
      bench::Stopwatch timer;
      for (const geo::MultiPolygon& fire : fires) {
        const geo::PreparedMultiPolygon prep(fire);  // build is timed
        idx.query(fire.bbox(), [&](std::uint32_t id, geo::Vec2 p) {
          if (prep.contains(p)) note_hit(r, id);
        });
      }
      r.best_s = std::min(prepared.best_s, timer.seconds());
      prepared = r;
    }
    // --- batch: query_spans + contains_batch over SoA ----------------
    {
      const obs::Span span("geo.kernel.batch");
      KernelResult r;
      bench::Stopwatch timer;
      std::vector<std::uint8_t> mask;
      for (const geo::MultiPolygon& fire : fires) {
        const geo::PreparedMultiPolygon prep(fire);  // build is timed
        idx.query_spans(fire.bbox(), [&](std::uint32_t b, std::uint32_t e) {
          const std::size_t n = e - b;
          if (mask.size() < n) mask.resize(n);
          prep.contains_batch(xs.subspan(b, n), ys.subspan(b, n),
                              std::span(mask).first(n));
          for (std::size_t i = 0; i < n; ++i) {
            if (mask[i] != 0) note_hit(r, ids[b + i]);
          }
        });
      }
      r.best_s = std::min(batch.best_s, timer.seconds());
      batch = r;
    }
  }

  const bool identical = scalar.hits == prepared.hits &&
                         scalar.hits == batch.hits &&
                         scalar.id_hash == prepared.id_hash &&
                         scalar.id_hash == batch.id_hash;
  const double prepared_speedup = prepared.best_s > 0.0
                                      ? scalar.best_s / prepared.best_s
                                      : 0.0;
  const double batch_speedup =
      batch.best_s > 0.0 ? scalar.best_s / batch.best_s : 0.0;

  core::TextTable table({"kernel", "best ms", "Mprobe/s", "speedup"});
  const auto add_row = [&](const char* name, const KernelResult& r,
                           double speedup) {
    char ms[32], rate[32], sx[32];
    std::snprintf(ms, sizeof ms, "%.2f", r.best_s * 1e3);
    std::snprintf(rate, sizeof rate, "%.1f",
                  candidates / std::max(r.best_s, 1e-12) / 1e6);
    std::snprintf(sx, sizeof sx, "%.2fx", speedup);
    table.add_row({name, ms, rate, sx});
  };
  add_row("scalar", scalar, 1.0);
  add_row("prepared", prepared, prepared_speedup);
  add_row("batch", batch, batch_speedup);
  std::printf("%s\n", table.str().c_str());
  std::printf("candidates: %zu  hits: %zu  identical: %s\n", candidates,
              scalar.hits, identical ? "yes" : "NO");
  if (!identical) {
    std::fprintf(stderr, "kernel outputs diverged from scalar baseline\n");
    return 1;
  }

  bench::print_json_trailer(
      "geo_kernels",
      io::JsonObject{{"points", num_points},
                     {"fires", num_fires},
                     {"verts", num_verts},
                     {"candidates", candidates},
                     {"hits", scalar.hits},
                     {"identical", identical},
                     {"scalar_ms", scalar.best_s * 1e3},
                     {"prepared_ms", prepared.best_s * 1e3},
                     {"batch_ms", batch.best_s * 1e3},
                     {"prepared_speedup", prepared_speedup},
                     {"batch_speedup", batch_speedup}},
      &total);
  return 0;
}

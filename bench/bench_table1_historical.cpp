// Reproduces Table 1: historical wildfire statistics for the US,
// 2000-2018 — fires, acres burned, transceivers within perimeters, and
// transceivers per million acres — next to the paper's reference values.
#include <cstdio>

#include "bench_common.hpp"
#include "core/historical.hpp"

int main() {
  using namespace fa;
  core::AnalysisContext& ctx = bench::bench_context("Table 1: historical wildfire overlay, 2000-2018");
  const core::World& world = ctx.world();

  bench::Stopwatch timer;
  const core::HistoricalResult result =
      core::run_historical_overlay(world, synth::historical_fire_years());

  core::TextTable table({"Year", "Fires", "Acres (M)", "Txr in perims",
                         "x-scale", "Paper", "Txr/Macre"});
  io::JsonArray rows;
  for (const core::HistoricalYearRow& row : result.rows) {
    table.add_row({std::to_string(row.year), core::fmt_count(row.fires),
                   core::fmt_double(row.acres_millions, 3),
                   core::fmt_count(row.txr_in_perimeters),
                   core::fmt_count(static_cast<std::size_t>(
                       bench::to_paper_scale(world, row.txr_in_perimeters))),
                   core::fmt_count(static_cast<std::size_t>(row.paper_txr)),
                   core::fmt_double(row.txr_per_macre, 0)});
    rows.push_back(io::JsonObject{
        {"year", row.year},
        {"fires", row.fires},
        {"acres_millions", row.acres_millions},
        {"txr", row.txr_in_perimeters},
        {"paper_txr", row.paper_txr},
    });
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "total in perimeters: %s (x-scale %s, paper total 27,314)\n",
      core::fmt_count(result.total_txr).c_str(),
      core::fmt_count(
          static_cast<std::size_t>(bench::to_paper_scale(world, result.total_txr)))
          .c_str());
  std::printf(
      "shape checks: every year > 0 transceivers; range spans an order of\n"
      "magnitude; counts do not track acres (compare 2015 vs 2007 rows).\n");
  // Figure 3's geography: burned acreage by ignition state (one pass over
  // a representative 5-season sample keeps the bench fast).
  const core::BurnedByStateResult by_state = core::burned_by_state(
      world, synth::historical_fire_years().subspan(14, 5));
  core::TextTable states({"State", "Acres (M)", "Large fires"});
  for (std::size_t i = 0; i < by_state.rows.size() && i < 8; ++i) {
    const core::BurnedByStateRow& row = by_state.rows[i];
    states.add_row(
        {std::string{world.atlas()
                         .states()[static_cast<std::size_t>(row.state)]
                         .name},
         core::fmt_double(row.acres / 1e6, 2), core::fmt_count(row.fires)});
  }
  std::printf("burned acreage by state, 2014-2018 sample (Figure 3: 'fires "
              "concentrated in the western US'):\n%s",
              states.str().c_str());
  std::printf("west-of-100W share of burned acreage: %s\n\n",
              core::fmt_pct(by_state.west_share).c_str());

  std::printf("elapsed: %.2fs\n", timer.seconds());
  bench::print_json_trailer("table1_historical",
                            io::JsonValue{std::move(rows)}, &timer);
  return 0;
}

// Persistence bench: what does the snapshot store buy at cold start?
//
// Measures, on the env-configured scenario (FA_SCALE/FA_CELL_M/FA_SEED):
//   build_s             full world build from synthesis (the baseline a
//                       store-less boot pays every time)
//   save_s              encode + atomic commit of one generation
//   load_s              mmap + checksum ladder + structural decode of
//                       that generation (the stored cold-start path)
//   recover_fallback_s  the ladder when the newest generation is
//                       corrupt at rest and an older one must win
//
// The acceptance gate is the trailer's load_speedup (build_s / load_s):
// the mmap cold start must be >= 10x faster than a full rebuild.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include <unistd.h>

#include "bench_common.hpp"
#include "core/provider_risk.hpp"
#include "core/world.hpp"
#include "store/codec.hpp"
#include "store/recovery.hpp"
#include "store/store.hpp"

int main() {
  using namespace fa;

  bench::Stopwatch run_timer;
  core::AnalysisContext& ctx = bench::bench_context(
      "fa::store — snapshot persistence vs full rebuild");
  const synth::ScenarioConfig cfg = ctx.world().config();

  // Baseline: an honest, fresh build (the context's cached world was
  // built before our stopwatch started).
  bench::Stopwatch build_timer;
  core::World rebuilt = core::World::build(cfg);
  const double build_s = build_timer.seconds();
  const core::ProviderRiskResult risk = core::run_provider_risk(rebuilt);
  std::printf("full rebuild: %.3fs (%zu transceivers)\n", build_s,
              rebuilt.corpus().size());

  char tmpl[] = "/tmp/fastore-bench-XXXXXX";
  const std::string dir_path = ::mkdtemp(tmpl);

  // Save: encode + atomic commit.
  bench::Stopwatch save_timer;
  const std::string image = store::encode_world(rebuilt, risk);
  store::StoreDir dir = store::StoreDir::open(dir_path).take();
  fault::Result<store::Generation> committed = dir.commit(image);
  const double save_s = save_timer.seconds();
  if (!committed.ok()) {
    std::fprintf(stderr, "commit failed: %s\n",
                 committed.status().to_string().c_str());
    return 1;
  }
  std::printf("save: %.3fs (%zu bytes, generation %llu)\n", save_s,
              image.size(),
              static_cast<unsigned long long>(committed.value().number));

  // Load: the stored cold-start path (manifest -> mmap -> ladder).
  bench::Stopwatch load_timer;
  fault::Result<store::RecoveredWorld> loaded =
      store::recover_from(dir_path);
  const double load_s = load_timer.seconds();
  if (!loaded.ok()) {
    std::fprintf(stderr, "recover failed: %s\n",
                 loaded.status().to_string().c_str());
    return 1;
  }
  std::printf("load: %.3fs (%zu transceivers restored)\n", load_s,
              loaded.value().loaded.world.corpus().size());

  // Degraded recovery: newest generation corrupt at rest, older wins.
  std::string bad = image;
  bad[bad.size() / 2] ^= 0x20;
  (void)dir.commit(bad);
  bench::Stopwatch fallback_timer;
  fault::Result<store::RecoveredWorld> fallback = store::recover_from(dir_path);
  const double fallback_s = fallback_timer.seconds();
  const bool fallback_ok =
      fallback.ok() && fallback.value().generation.number == 1;
  std::printf("recover (newest corrupt): %.3fs, fell back to generation %llu\n",
              fallback_s,
              fallback.ok() ? static_cast<unsigned long long>(
                                  fallback.value().generation.number)
                            : 0ull);

  const double speedup = load_s > 0.0 ? build_s / load_s : 0.0;
  const bool load_faster = speedup >= 10.0;
  std::printf("cold start speedup: %.1fx (%s the 10x gate)\n", speedup,
              load_faster ? "clears" : "MISSES");

  std::error_code ec;
  std::filesystem::remove_all(dir_path, ec);

  io::JsonObject payload;
  payload["transceivers"] = rebuilt.corpus().size();
  payload["image_bytes"] = image.size();
  payload["build_s"] = build_s;
  payload["save_s"] = save_s;
  payload["load_s"] = load_s;
  payload["recover_fallback_s"] = fallback_s;
  payload["fallback_to_older_generation"] = fallback_ok;
  payload["load_speedup"] = speedup;
  payload["load_faster"] = load_faster;
  bench::print_json_trailer("store", io::JsonValue{std::move(payload)},
                            &run_timer);
  return 0;
}

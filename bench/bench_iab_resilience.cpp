// Ablation of the Section 3.5 forward-looking claim: 5G Integrated
// Access Backhaul "could allow on-demand wireless backhaul to complement
// disruptions in fiber backhaul". Sweeps the share of IAB-equipped sites
// through the 2019 case study and reports the transport-outage reduction.
#include <cstdio>

#include "bench_common.hpp"
#include "core/case_study.hpp"

int main() {
  using namespace fa;
  core::AnalysisContext& ctx = bench::bench_context("Section 3.5 extension: 5G IAB wireless-backhaul resilience");
  const core::World& world = ctx.world();

  bench::Stopwatch timer;
  core::TextTable table({"IAB share", "Peak total", "Transport site-days",
                         "Power site-days", "Transport vs 0%"});
  io::JsonArray rows;
  double baseline_transport = -1.0;
  for (const double iab : {0.0, 0.25, 0.50, 1.0}) {
    firesim::OutageSimConfig config;
    config.iab_fraction = iab;
    const firesim::DirsReport report =
        core::run_california_case_study(world, config);
    std::size_t peak = 0, transport = 0, power = 0;
    for (const firesim::DayOutages& day : report.days) {
      peak = std::max(peak, day.total());
      transport += day.transport;
      power += day.power;
    }
    if (baseline_transport < 0.0) {
      baseline_transport = static_cast<double>(transport);
    }
    table.add_row(
        {core::fmt_pct(iab, 0), core::fmt_count(peak),
         core::fmt_count(transport), core::fmt_count(power),
         core::fmt_pct(baseline_transport > 0.0
                           ? static_cast<double>(transport) / baseline_transport
                           : 0.0,
                       0)});
    rows.push_back(io::JsonObject{{"iab", iab},
                                  {"transport_site_days", transport},
                                  {"power_site_days", power}});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "reading: IAB eliminates transport-cause outages proportionally to\n"
      "deployment share but leaves the power category — the dominant cause —\n"
      "untouched, supporting the paper's ordering of mitigation priorities\n"
      "(backup power first, backhaul diversity second).\n");
  std::printf("elapsed: %.2fs\n", timer.seconds());

  bench::print_json_trailer("iab_resilience", io::JsonValue{std::move(rows)}, &timer);
  return 0;
}

// Section 3.8 motivation + Section 5 ongoing work: power-grid
// interdependence. Builds the distribution-grid model over California,
// quantifies the "clean site, dirty feeder" overhang, and replays the
// 2019 case study with real feeder topology, reporting how much of the
// power outage lands OUTSIDE fire perimeters.
#include <cstdio>

#include "bench_common.hpp"
#include "powergrid/psps.hpp"

int main() {
  using namespace fa;
  core::AnalysisContext& ctx = bench::bench_context("Power-grid interdependence (Sections 3.8 / 5)");
  const core::World& world = ctx.world();

  bench::Stopwatch timer;
  // California site fleet and its grid.
  const int ca = world.atlas().state_index("CA");
  std::vector<cellnet::Transceiver> ca_txr;
  for (const auto& t : world.corpus().transceivers()) {
    if (t.state == ca) ca_txr.push_back(t);
  }
  const cellnet::CellCorpus ca_corpus{std::move(ca_txr)};
  const std::vector<cellnet::CellSite> sites = ca_corpus.infer_sites(120.0);
  const powergrid::GridModel grid = powergrid::GridModel::build(
      sites, world.whp(), world.atlas(), world.config().seed);
  const powergrid::GridStats stats =
      powergrid::analyze_grid(grid, sites, world.whp());

  std::printf("California distribution model:\n");
  core::TextTable model({"Metric", "Value"});
  model.add_row({"cell sites", core::fmt_count(sites.size())});
  model.add_row({"substations", core::fmt_count(stats.substations)});
  model.add_row({"feeders", core::fmt_count(stats.feeders)});
  model.add_row({"mean feeder length",
                 core::fmt_double(stats.mean_feeder_length_km, 1) + " km"});
  model.add_row({"mean sites/feeder",
                 core::fmt_double(stats.mean_sites_per_feeder, 1)});
  model.add_row({"sites on fire-exposed feeders",
                 core::fmt_pct(stats.sites_on_exposed_feeders)});
  model.add_row({"NOT-at-risk sites on exposed feeders",
                 core::fmt_pct(stats.clean_sites_dirty_feeders)});
  std::printf("%s\n", model.str().c_str());

  std::printf(
      "the last row is the interdependence overhang: sites the WHP overlay\n"
      "calls safe but whose electricity crosses at-risk terrain — invisible\n"
      "to the paper's hardware-only analysis, visible to its case study.\n\n");

  // Grid-driven case study: where do the power outages actually land?
  const firesim::DirsReport report =
      powergrid::simulate_california_2019_with_grid(
          world.corpus(), world.whp(), world.atlas(), world.config().seed);
  core::TextTable days({"Day", "Power", "...outside any perimeter", "Share"});
  std::size_t power_total = 0, outside_total = 0;
  for (const firesim::DayOutages& day : report.days) {
    days.add_row({day.label, core::fmt_count(day.power),
                  core::fmt_count(day.power_outside_fire),
                  core::fmt_pct(day.power ? static_cast<double>(
                                                day.power_outside_fire) /
                                                day.power
                                          : 0.0)});
    power_total += day.power;
    outside_total += day.power_outside_fire;
  }
  std::printf("2019 case study with feeder topology:\n%s\n",
              days.str().c_str());
  std::printf(
      "%s of power-outage site-days were outside every fire perimeter —\n"
      "the paper's §3.8 point that \"disruptions to power distribution may\n"
      "occur outside wildfire perimeters\", now quantified.\n",
      core::fmt_pct(power_total ? static_cast<double>(outside_total) /
                                      power_total
                                : 0.0)
          .c_str());
  std::printf("elapsed: %.2fs\n", timer.seconds());

  bench::print_json_trailer(
      "power_interdependence",
      io::JsonObject{
          {"feeders", stats.feeders},
          {"sites_on_exposed_feeders", stats.sites_on_exposed_feeders},
          {"clean_sites_dirty_feeders", stats.clean_sites_dirty_feeders},
          {"power_site_days", power_total},
          {"power_outside_fire_site_days", outside_total}}, &timer);
  return 0;
}

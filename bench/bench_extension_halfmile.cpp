// Reproduces Section 3.8: extending the very-high WHP class by half a
// mile — the 26,307 -> 176,275 VH growth, the 430,844 -> 509,693 total,
// and the 46% -> 62% validation-accuracy gain — plus a radius-sweep
// ablation of the design choice.
#include <cstdio>

#include "bench_common.hpp"
#include "core/validation.hpp"

int main() {
  using namespace fa;
  core::AnalysisContext& ctx = bench::bench_context("Section 3.8: extending the very-high WHP class by 0.5 mi");
  const core::World& world = ctx.world();

  bench::Stopwatch timer;
  const core::ValidationResult v = core::run_whp_validation(world, 1);
  const core::ExtensionResult e = core::run_perimeter_extension(world, v);

  std::printf("dilation radius: %.0f m (discrete: ceil to whole %.0f m cells)\n\n",
              e.radius_m, world.config().whp_cell_m);
  core::TextTable table({"Metric", "Before", "After", "Paper before",
                         "Paper after"});
  table.add_row({"VH transceivers", core::fmt_count(e.vh_before),
                 core::fmt_count(e.vh_after), "26,307", "176,275"});
  table.add_row({"Total at risk", core::fmt_count(e.at_risk_before),
                 core::fmt_count(e.at_risk_after), "430,844", "509,693"});
  table.add_row({"2019 validation",
                 core::fmt_pct(e.accuracy_before()),
                 core::fmt_pct(e.accuracy_after()), "46%", "62%"});
  std::printf("%s\n", table.str().c_str());

  std::printf("Ablation — dilation radius sweep (VH growth and accuracy):\n");
  core::TextTable sweep({"Radius (mi)", "VH txr", "Total at risk",
                         "Validation"});
  io::JsonArray sweep_rows;
  for (const double miles : {0.0, 0.25, 0.5, 1.0, 2.0}) {
    const core::ExtensionResult s =
        miles == 0.0
            ? core::ExtensionResult{0.0, e.vh_before, e.vh_before,
                                    e.at_risk_before, e.at_risk_before,
                                    v.in_perimeter, v.predicted, v.predicted}
            : core::run_perimeter_extension(world, v, miles * 1609.344);
    sweep.add_row({core::fmt_double(miles, 2), core::fmt_count(s.vh_after),
                   core::fmt_count(s.at_risk_after),
                   core::fmt_pct(s.accuracy_after())});
    sweep_rows.push_back(io::JsonObject{{"miles", miles},
                                        {"vh", s.vh_after},
                                        {"at_risk", s.at_risk_after},
                                        {"accuracy", s.accuracy_after()}});
  }
  std::printf("%s\n", sweep.str().c_str());
  std::printf(
      "trade-off (paper's framing): each radius step buys validation "
      "accuracy\nby flagging more infrastructure; 0.5 mi was the paper's "
      "chosen balance.\n");
  std::printf("elapsed: %.2fs\n", timer.seconds());

  bench::print_json_trailer(
      "extension_halfmile",
      io::JsonObject{{"vh_before", e.vh_before},
                     {"vh_after", e.vh_after},
                     {"at_risk_before", e.at_risk_before},
                     {"at_risk_after", e.at_risk_after},
                     {"accuracy_before", e.accuracy_before()},
                     {"accuracy_after", e.accuracy_after()},
                     {"sweep", std::move(sweep_rows)}}, &timer);
  return 0;
}

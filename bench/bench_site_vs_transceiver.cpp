// Section 2.2.3 ablation: the paper counts transceivers because tower
// identity is uncertain in crowd-sourced data. This bench runs the
// overlay both ways — transceivers and inferred sites — and shows how
// the choice moves the at-risk share, plus a merge-distance sensitivity
// sweep for the inference itself.
#include <cstdio>

#include "bench_common.hpp"
#include "core/site_risk.hpp"

int main() {
  using namespace fa;
  core::AnalysisContext& ctx = bench::bench_context("Section 2.2.3 ablation: transceivers vs inferred towers");
  const core::World& world = ctx.world();

  bench::Stopwatch timer;
  const core::SiteRiskResult r = core::run_site_risk(world);

  std::printf("corpus: %s transceivers on %s inferred sites "
              "(%.1f radios/site; the real corpus averages ~10-14)\n\n",
              core::fmt_count(r.transceivers).c_str(),
              core::fmt_count(r.sites).c_str(), r.radios_per_site);

  core::TextTable table({"WHP class", "Transceivers", "Share", "Sites",
                         "Share"});
  for (int cls = 3; cls < synth::kNumWhpClasses; ++cls) {
    table.add_row(
        {std::string{synth::whp_class_name(static_cast<synth::WhpClass>(cls))},
         core::fmt_count(r.txr_by_class[static_cast<std::size_t>(cls)]),
         core::fmt_pct(static_cast<double>(
                           r.txr_by_class[static_cast<std::size_t>(cls)]) /
                       r.transceivers),
         core::fmt_count(r.sites_by_class[static_cast<std::size_t>(cls)]),
         core::fmt_pct(static_cast<double>(
                           r.sites_by_class[static_cast<std::size_t>(cls)]) /
                       r.sites)});
  }
  std::printf("%s\n", table.str().c_str());

  std::printf("at risk: %s of transceivers vs %s of sites\n",
              core::fmt_pct(static_cast<double>(r.txr_at_risk()) /
                            r.transceivers)
                  .c_str(),
              core::fmt_pct(static_cast<double>(r.sites_at_risk()) / r.sites)
                  .c_str());
  std::printf("radios per at-risk site %.1f vs per safe site %.1f —\n"
              "at-risk structures are rural and thin, so transceiver counts\n"
              "UNDERSTATE the share of physical towers in danger. The paper's\n"
              "transceiver choice is the conservative one.\n\n",
              r.radios_per_at_risk_site, r.radios_per_safe_site);

  std::printf("merge-distance sensitivity (site inference):\n");
  core::TextTable sweep({"Merge (m)", "Sites", "Sites at risk"});
  io::JsonArray rows;
  for (const double merge : {50.0, 120.0, 250.0, 500.0}) {
    const core::SiteRiskResult s = core::run_site_risk(world, merge);
    sweep.add_row({core::fmt_double(merge, 0), core::fmt_count(s.sites),
                   core::fmt_pct(static_cast<double>(s.sites_at_risk()) /
                                 s.sites)});
    rows.push_back(io::JsonObject{{"merge_m", merge},
                                  {"sites", s.sites},
                                  {"sites_at_risk", s.sites_at_risk()}});
  }
  std::printf("%s\n", sweep.str().c_str());
  std::printf("elapsed: %.2fs\n", timer.seconds());

  bench::print_json_trailer(
      "site_vs_transceiver",
      io::JsonObject{{"sites", r.sites},
                     {"transceivers", r.transceivers},
                     {"txr_at_risk", r.txr_at_risk()},
                     {"sites_at_risk", r.sites_at_risk()},
                     {"sweep", std::move(rows)}}, &timer);
  return 0;
}

// Methodology ablation: the reproduction reports scaled counts with an
// x-scale normalization (DESIGN.md choice 6). This bench demonstrates the
// normalization is sound: *shares* and *orderings* are stable across
// corpus scales and grid resolutions, so full-corpus conclusions can be
// read off scaled runs.
#include <cstdio>

#include "bench_common.hpp"
#include "core/whp_overlay.hpp"

int main() {
  using namespace fa;
  bench::Stopwatch run_timer;
  std::printf("== Ablation: scale invariance of the overlay metrics ==\n\n");

  struct Cell {
    double scale;
    double cell_m;
  };
  const Cell scenarios[] = {
      {64.0, 2700.0}, {32.0, 2700.0}, {16.0, 2700.0},
      {16.0, 5400.0}, {16.0, 1350.0},
  };

  core::TextTable table({"Corpus", "Cell (m)", "At-risk share", "M:H:VH",
                         "Top 3 states"});
  io::JsonArray rows;
  for (const Cell& s : scenarios) {
    synth::ScenarioConfig config;
    config.corpus_scale = s.scale;
    config.whp_cell_m = s.cell_m;
    const core::AnalysisContext ctx(config);
    const core::World& world = ctx.world();
    const core::WhpOverlayResult overlay = core::run_whp_overlay(world);
    const double share = static_cast<double>(overlay.total_at_risk()) /
                         world.corpus().size();
    const double m = static_cast<double>(overlay.txr_by_class[3]);
    const auto ratio = [&](int cls) {
      return core::fmt_double(
          static_cast<double>(overlay.txr_by_class[cls]) / m, 2);
    };
    std::string top3;
    const auto rank = overlay.rank_by_at_risk();
    for (int i = 0; i < 3; ++i) {
      if (i) top3 += " ";
      top3 += world.atlas().states()[static_cast<std::size_t>(rank[i])].abbr;
    }
    table.add_row({"1/" + core::fmt_double(s.scale, 0),
                   core::fmt_double(s.cell_m, 0), core::fmt_pct(share),
                   "1:" + ratio(4) + ":" + ratio(5), top3});
    rows.push_back(io::JsonObject{{"scale", s.scale},
                                  {"cell_m", s.cell_m},
                                  {"at_risk_share", share},
                                  {"top1", top3.substr(0, 2)}});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "reading: the at-risk share and the CA/FL/TX ordering hold across a\n"
      "4x corpus sweep and a 4x resolution sweep; class ratios drift mildly\n"
      "with resolution (finer grids resolve more very-high pockets), which\n"
      "is why EXPERIMENTS.md pins one scenario for its comparisons.\n");

  bench::print_json_trailer("scale_invariance", io::JsonValue{std::move(rows)}, &run_timer);
  return 0;
}

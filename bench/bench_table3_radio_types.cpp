// Reproduces Table 3: cell transceiver types (CDMA/GSM/LTE/UMTS) at risk
// per WHP class.
#include <cstdio>

#include "bench_common.hpp"
#include "core/provider_risk.hpp"

int main() {
  using namespace fa;
  core::AnalysisContext& ctx = bench::bench_context("Table 3: transceiver types at risk");
  const core::World& world = ctx.world();

  bench::Stopwatch timer;
  const core::RadioRiskResult r = core::run_radio_risk(world);

  // Paper row order: CDMA, GSM, LTE, UMTS (alphabetical), with totals.
  const cellnet::RadioType order[] = {
      cellnet::RadioType::kCdma, cellnet::RadioType::kGsm,
      cellnet::RadioType::kLte, cellnet::RadioType::kUmts};
  struct PaperRow {
    const char* vh;
    const char* h;
    const char* m;
    const char* total;
  };
  const PaperRow paper[] = {
      {"2,178", "13,801", "25,062", "41,041"},
      {"1,943", "10,096", "17,955", "29,994"},
      {"12,022", "75,072", "141,324", "228,418"},
      {"10,164", "43,999", "77,228", "131,391"},
  };

  core::TextTable table({"Type", "WHP VH", "WHP H", "WHP M", "Total",
                         "x-scale", "Paper total"});
  io::JsonArray rows;
  for (std::size_t i = 0; i < std::size(order); ++i) {
    const core::RadioRiskRow& row =
        r.rows[static_cast<std::size_t>(order[i])];
    table.add_row({std::string{cellnet::radio_type_name(row.radio)},
                   core::fmt_count(row.very_high), core::fmt_count(row.high),
                   core::fmt_count(row.moderate), core::fmt_count(row.total()),
                   core::fmt_count(static_cast<std::size_t>(
                       bench::to_paper_scale(world, row.total()))),
                   paper[i].total});
    rows.push_back(io::JsonObject{
        {"type", std::string{cellnet::radio_type_name(row.radio)}},
        {"very_high", row.very_high},
        {"high", row.high},
        {"moderate", row.moderate}});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "shape checks: LTE leads every class, UMTS second, CDMA > GSM; no NR\n"
      "rows (the 2019 snapshot pre-dates 5G, Section 3.5).\n");
  std::printf("elapsed: %.2fs\n", timer.seconds());

  bench::print_json_trailer("table3_radio_types",
                            io::JsonValue{std::move(rows)}, &timer);
  return 0;
}

// Reproduces Figure 5: daily cell-site outages by cause during the
// Oct 25 - Nov 1 2019 California PSPS event (FCC DIRS reporting window).
#include <cstdio>

#include "bench_common.hpp"
#include "core/case_study.hpp"

int main() {
  using namespace fa;
  core::AnalysisContext& ctx = bench::bench_context("Figure 5: 2019 California PSPS case study");
  const core::World& world = ctx.world();

  bench::Stopwatch timer;
  const firesim::DirsReport report = core::run_california_case_study(world);

  core::TextTable table(
      {"Day", "Damage", "Power", "Transport", "Total", "Power share"});
  io::JsonArray days;
  for (const firesim::DayOutages& day : report.days) {
    const double share =
        day.total() ? static_cast<double>(day.power) / day.total() : 0.0;
    table.add_row({day.label, core::fmt_count(day.damaged),
                   core::fmt_count(day.power), core::fmt_count(day.transport),
                   core::fmt_count(day.total()), core::fmt_pct(share)});
    days.push_back(io::JsonObject{{"label", day.label},
                                  {"damage", day.damaged},
                                  {"power", day.power},
                                  {"transport", day.transport}});
  }
  std::printf("%s\n", table.str().c_str());

  const firesim::DayOutages& peak =
      report.days[static_cast<std::size_t>(report.peak_day())];
  std::printf("sites monitored: %s (California, scaled corpus)\n",
              core::fmt_count(report.sites_monitored).c_str());
  std::printf("peak: %s with %s sites out — paper peaked Oct 28 at 874\n",
              peak.label.c_str(), core::fmt_count(peak.total()).c_str());
  std::printf("power share at peak: %s — paper: 'over 80%%' (702/874)\n",
              core::fmt_pct(peak.total() ? static_cast<double>(peak.power) /
                                               peak.total()
                                         : 0.0)
                  .c_str());
  std::printf("final day: %s sites still out — paper: 110 incl. 21 damaged\n",
              core::fmt_count(report.days.back().total()).c_str());
  std::printf("elapsed: %.2fs\n", timer.seconds());

  bench::print_json_trailer(
      "fig5_case_study",
      io::JsonObject{{"days", std::move(days)},
                     {"sites_monitored", report.sites_monitored},
                     {"peak_day", report.peak_day()}}, &timer);
  return 0;
}

#include "bench_common.hpp"

#include <ctime>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/obs.hpp"

namespace fa::bench {

namespace {

double env_or(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return end != value ? parsed : fallback;
}

}  // namespace

synth::ScenarioConfig bench_scenario() {
  synth::ScenarioConfig cfg;
  cfg.whp_cell_m = env_or("FA_CELL_M", 1350.0);
  cfg.corpus_scale = env_or("FA_SCALE", 8.0);
  cfg.seed = static_cast<std::uint64_t>(env_or("FA_SEED", 20191022.0));
  return cfg;
}

core::AnalysisContext& bench_context(const std::string& bench_name) {
  const synth::ScenarioConfig cfg = bench_scenario();
  std::printf("== %s ==\n", bench_name.c_str());
  std::printf(
      "scenario: seed=%llu  whp_cell=%.0fm  corpus=1/%.0f of 5,364,949 "
      "(%zu transceivers)\n",
      static_cast<unsigned long long>(cfg.seed), cfg.whp_cell_m,
      cfg.corpus_scale, cfg.corpus_size());
  std::printf("observability: %s (FA_OBS)\n", obs::enabled() ? "on" : "off");
  core::AnalysisContext& ctx = core::AnalysisContext::shared(cfg);
  if (const char* policy = std::getenv("FA_POLICY");
      policy != nullptr && *policy != '\0') {
    if (const auto parsed = fault::recovery_policy_from_name(policy)) {
      ctx.recovery_policy = *parsed;
    } else {
      std::fprintf(stderr, "FA_POLICY: unknown policy '%s' (ignored)\n",
                   policy);
    }
  }
  if (!ctx.built()) {
    Stopwatch timer;
    ctx.world();
    std::printf("world build: %.2fs  policy=%s\n",
                timer.seconds(),
                std::string(fault::recovery_policy_name(ctx.recovery_policy))
                    .c_str());
    std::printf("%s\n\n",
                core::coverage_line(ctx.world().corpus().size(),
                                    ctx.diagnostics())
                    .c_str());
  } else {
    std::printf("world: cached scenario reused\n\n");
  }
  return ctx;
}

double Stopwatch::process_cpu_seconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

void print_json_trailer(const std::string& bench_name,
                        const io::JsonValue& payload,
                        const Stopwatch* timer) {
  io::JsonObject doc;
  doc["bench"] = bench_name;
  doc["result"] = payload;
  if (timer != nullptr) {
    io::JsonObject timing;
    timing["wall_s"] = timer->seconds();
    timing["cpu_s"] = timer->cpu_seconds();
    doc["timing"] = io::JsonValue{std::move(timing)};
  }
  std::printf("\nJSON %s\n", io::to_json(io::JsonValue{std::move(doc)}).c_str());
  if (!obs::enabled()) return;
  // Stage-by-stage profile: one greppable line plus a chrome-trace file.
  std::printf("OBS %s\n", obs::to_json().c_str());
  std::string path;
  if (const char* dir = std::getenv("FA_TRACE_DIR");
      dir != nullptr && *dir != '\0') {
    path = std::string(dir) + "/";
  }
  path += "trace_" + bench_name + ".json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (out) {
    out << obs::to_chrome_trace();
    std::printf("trace: %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "trace: cannot write %s\n", path.c_str());
  }
}

double to_paper_scale(const core::World& world, std::size_t measured) {
  return static_cast<double>(measured) * world.config().corpus_scale;
}

}  // namespace fa::bench

// Reproduces Figure 6 (the WHP map) and Figure 7 (transceivers located
// in Moderate / High / Very High WHP areas).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/maps.hpp"
#include "core/whp_overlay.hpp"
#include "raster/morphology.hpp"

int main() {
  using namespace fa;
  core::AnalysisContext& ctx = bench::bench_context("Figures 6-7: Wildfire Hazard Potential overlay");
  const core::World& world = ctx.world();

  // --- Figure 6: the hazard surface ----------------------------------------
  // Glyphs by class: offshore/non-burnable ' ', very low '.', low ':',
  // moderate 'm', high 'H', very high '#'.
  std::printf("Figure 6 — synthetic WHP (m=moderate, H=high, #=very high):\n%s\n",
              core::render_ascii_classes(world.whp().grid(), " .:mH#", 110, 32)
                  .c_str());
  const auto area = raster::class_area(world.whp().grid());
  core::TextTable areas({"WHP class", "Cells", "Share of CONUS"});
  const auto hist = raster::class_histogram(world.whp().grid());
  std::size_t land_cells = 0;
  for (const auto& [cls, count] : hist) land_cells += count;
  for (int cls = 0; cls < synth::kNumWhpClasses; ++cls) {
    const auto it = hist.find(static_cast<std::uint8_t>(cls));
    const std::size_t cells = it == hist.end() ? 0 : it->second;
    areas.add_row({std::string{synth::whp_class_name(
                       static_cast<synth::WhpClass>(cls))},
                   core::fmt_count(cells),
                   core::fmt_pct(static_cast<double>(cells) / land_cells)});
  }
  std::printf("%s\n", areas.str().c_str());
  (void)area;

  // --- Figure 7: transceivers per at-risk class -----------------------------
  bench::Stopwatch timer;
  const core::WhpOverlayResult overlay = core::run_whp_overlay(world);
  core::TextTable table({"WHP class", "Transceivers", "x-scale", "Paper"});
  const char* paper[] = {"-", "-", "-", "261,569", "142,968", "26,307"};
  for (int cls = 3; cls < synth::kNumWhpClasses; ++cls) {
    const std::size_t n = overlay.txr_by_class[static_cast<std::size_t>(cls)];
    table.add_row(
        {std::string{synth::whp_class_name(static_cast<synth::WhpClass>(cls))},
         core::fmt_count(n),
         core::fmt_count(
             static_cast<std::size_t>(bench::to_paper_scale(world, n))),
         paper[cls]});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "total at risk: %s (x-scale %s; paper 430,844 = 8.0%% of corpus; "
      "measured share %s)\n",
      core::fmt_count(overlay.total_at_risk()).c_str(),
      core::fmt_count(static_cast<std::size_t>(
                          bench::to_paper_scale(world, overlay.total_at_risk())))
          .c_str(),
      core::fmt_pct(static_cast<double>(overlay.total_at_risk()) /
                    world.corpus().size())
          .c_str());
  std::printf("elapsed: %.2fs\n", timer.seconds());

  bench::print_json_trailer(
      "fig6_7_whp_overlay",
      io::JsonObject{{"moderate", overlay.txr_by_class[3]},
                     {"high", overlay.txr_by_class[4]},
                     {"very_high", overlay.txr_by_class[5]},
                     {"total_at_risk", overlay.total_at_risk()}}, &timer);
  return 0;
}

// Reproduces Figures 2-4 as quick-look maps: the transceiver corpus
// (Fig 2), the 2000-2018 fire perimeters (Fig 3), and the transceivers
// inside those perimeters (Fig 4). ASCII to stdout, PGM exports next to
// the binary for a GIS-free visual check.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/historical.hpp"
#include "core/maps.hpp"
#include "core/overlay.hpp"

int main() {
  using namespace fa;
  bench::Stopwatch run_timer;
  core::AnalysisContext& ctx = bench::bench_context("Figures 2-4: corpus, perimeters and overlap maps");
  const core::World& world = ctx.world();
  const geo::BBox conus = world.atlas().conus_bbox();

  // --- Figure 2: every transceiver -----------------------------------------
  std::vector<geo::Vec2> all_points;
  all_points.reserve(world.corpus().size());
  for (const auto& t : world.corpus().transceivers()) {
    all_points.push_back(t.position.as_vec());
  }
  std::printf("Figure 2 — cell transceivers in the conterminous US:\n%s\n",
              core::render_ascii_density(all_points, conus, 110, 32).c_str());
  core::save_density_pgm("fig2_transceivers.pgm", all_points, conus, 880, 256);

  // --- Figure 3: wildfire perimeters 2000-2018 ------------------------------
  firesim::FireSimulator sim(world.whp(), world.atlas(), world.config().seed);
  std::vector<firesim::FirePerimeter> all_fires;
  std::vector<geo::Vec2> fire_points;  // perimeter vertices as density proxy
  for (const auto& year : synth::historical_fire_years()) {
    firesim::FireSeason season = sim.simulate_year(year);
    for (auto& fire : season.fires) {
      for (const auto& part : fire.perimeter.parts()) {
        for (const geo::Vec2& v : part.outer().points()) {
          fire_points.push_back(v);
        }
      }
      all_fires.push_back(std::move(fire));
    }
  }
  std::printf("Figure 3 — wildfire perimeters 2000-2018 (%zu large fires):\n%s\n",
              all_fires.size(),
              core::render_ascii_density(fire_points, conus, 110, 32).c_str());
  core::save_density_pgm("fig3_perimeters.pgm", fire_points, conus, 880, 256);

  // --- Figure 4: transceivers inside perimeters ------------------------------
  const auto hit_ids = core::transceivers_in_perimeters(world, all_fires);
  std::vector<geo::Vec2> hits;
  hits.reserve(hit_ids.size());
  for (const std::uint32_t id : hit_ids) {
    hits.push_back(world.corpus()[id].position.as_vec());
  }
  std::printf(
      "Figure 4 — transceivers inside 2000-2018 perimeters (%zu, x-scale %.0f; "
      "paper: 'over 27,000'):\n%s\n",
      hits.size(), bench::to_paper_scale(world, hits.size()),
      core::render_ascii_density(hits, conus, 110, 32).c_str());
  core::save_density_pgm("fig4_txr_in_perimeters.pgm", hits, conus, 880, 256);
  std::printf("PGM exports: fig2_transceivers.pgm fig3_perimeters.pgm "
              "fig4_txr_in_perimeters.pgm\n");

  bench::print_json_trailer(
      "fig2_3_4_maps",
      io::JsonObject{{"transceivers", all_points.size()},
                     {"large_fires", all_fires.size()},
                     {"txr_in_perimeters", hits.size()}}, &run_timer);
  return 0;
}

// Extension of Section 3.9 beyond the SLC-Denver corridor: project every
// western at-risk transceiver to 2040 using Littell-style ecoregion
// burn-area deltas, and rank states by projected exposure. The paper's
// forward-looking question — where should long-term deployment planning
// concentrate — answered CONUS-wide.
#include <cstdio>

#include "bench_common.hpp"
#include "core/climate.hpp"

int main() {
  using namespace fa;
  core::AnalysisContext& ctx = bench::bench_context("Section 3.9 extension: 2040 exposure projection, CONUS-wide");
  const core::World& world = ctx.world();

  bench::Stopwatch timer;
  const core::FutureExposureResult r = core::run_future_exposure(world);
  const auto& states = world.atlas().states();

  std::printf("aggregate at-risk exposure: %s today -> %.0f in 2040 "
              "(%+.0f%%)\n\n",
              core::fmt_count(r.at_risk_now).c_str(), r.at_risk_2040,
              100.0 * (r.at_risk_2040 / std::max<double>(1.0, r.at_risk_now) -
                       1.0));

  core::TextTable table({"Rank", "State", "At risk now", "2040 index",
                         "Growth"});
  io::JsonArray rows;
  const auto rank = r.rank();
  for (int i = 0; i < 12; ++i) {
    const core::FutureStateRow& row =
        r.states[static_cast<std::size_t>(rank[i])];
    table.add_row(
        {std::to_string(i + 1),
         std::string{states[static_cast<std::size_t>(row.state)].name},
         core::fmt_count(row.at_risk_now),
         core::fmt_double(row.at_risk_2040, 0),
         core::fmt_double(row.growth(), 2) + "x"});
    rows.push_back(io::JsonObject{
        {"state", std::string{states[static_cast<std::size_t>(row.state)].abbr}},
        {"now", row.at_risk_now},
        {"index_2040", row.at_risk_2040}});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "reading: the mountain-west states (+1.3x to +2.4x growth bands) climb\n"
      "the ranking while the southeastern states — outside the Littell\n"
      "projection — hold today's exposure. California stays first: the\n"
      "largest base grows on the Sierra (+85%%) and Great Basin (+160%%)\n"
      "bands. This is the 'install infrastructure robustly now' argument of\n"
      "the paper's Section 3.9, made state-actionable.\n");
  std::printf("elapsed: %.2fs\n", timer.seconds());

  bench::print_json_trailer(
      "future_exposure",
      io::JsonObject{{"at_risk_now", r.at_risk_now},
                     {"index_2040", r.at_risk_2040},
                     {"by_state", std::move(rows)}}, &timer);
  return 0;
}

// Ensemble engine throughput + hardening-optimizer gate.
//
// Phase 1 runs the same seeded fire-season ensemble at 1/2/4/8 exec
// threads and reports members/sec. The correctness gate is the
// ensemble's determinism contract: every thread count must produce a
// bit-identical report (aggregates, per-site expectations, exceedance
// curve, fragility ordering) — the scaling rows are only meaningful if
// the work being scaled is invariant.
//
// Phase 2 is the optimizer gate: the greedy/lazy (CELF) hardening plan
// must beat both the unhardened baseline and a random plan of the same
// budget when all three are re-simulated against the ensemble — the
// submodular surrogate has to survive contact with the simulator it
// approximates.
//
//   FA_ENS_MEMBERS   ensemble members per run (default 256)
//   FA_ENS_SEED      ensemble seed            (default 7)
#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ensemble/ensemble.hpp"
#include "ensemble/harden.hpp"
#include "exec/exec.hpp"

namespace {

using namespace fa;

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0'
             ? static_cast<std::size_t>(std::strtoull(v, nullptr, 10))
             : fallback;
}

// Bit-exact fingerprint of everything a report derives from the
// ensemble: if any double in any aggregate differs by one ulp between
// thread counts, the fingerprints diverge.
std::uint64_t fingerprint(const ensemble::EnsembleReport& r) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  };
  const auto mix_f = [&mix](double v) { mix(std::bit_cast<std::uint64_t>(v)); };
  mix(r.members);
  mix(r.quarantined);
  mix(r.sites);
  mix(r.fires);
  mix(r.outage_site_days);
  mix_f(r.expected_user_hours);
  mix_f(r.expected_power_user_hours);
  mix_f(r.expected_pop_exposure);
  mix_f(r.expected_overlap_user_hours);
  for (const ensemble::MemberStats& m : r.member_stats) {
    mix_f(m.user_hours);
    mix_f(m.power_user_hours);
    mix_f(m.pop_exposure);
    mix_f(m.overlap_user_hours);
    mix(m.fires);
    mix(m.outage_site_days);
    mix(m.quarantined);
  }
  for (const double v : r.site_expected_user_hours) mix_f(v);
  for (const double v : r.site_expected_power_user_hours) mix_f(v);
  for (const double v : r.site_outage_probability) mix_f(v);
  for (const ensemble::ExceedancePoint& p : r.exceedance) {
    mix_f(p.user_hours);
    mix_f(p.probability);
  }
  for (const std::uint32_t s : r.fragile_order) mix(s);
  return h;
}

}  // namespace

int main() {
  core::AnalysisContext& ctx = bench::bench_context("ensemble");
  const bench::Stopwatch run_timer;

  ensemble::EnsembleConfig config;
  config.members =
      static_cast<std::uint32_t>(env_size("FA_ENS_MEMBERS", 256));
  config.seed = static_cast<std::uint64_t>(env_size("FA_ENS_SEED", 7));

  const bench::Stopwatch inputs_timer;
  const ensemble::SharedInputs inputs =
      ensemble::SharedInputs::build(ctx.world(), config);
  std::printf("shared inputs: %zu CA sites, %zu ignition cells (%.2fs)\n",
              inputs.sites.size(), inputs.ignition_cells.size(),
              inputs_timer.seconds());

  // -- phase 1: members/sec at 1/2/4/8 threads, bit-identical gate ------
  struct Row {
    int threads;
    double seconds;
    double members_per_s;
  };
  std::vector<Row> rows;
  std::uint64_t reference_fp = 0;
  bool identical = true;
  double baseline_user_hours = 0.0;
  ensemble::EnsembleReport baseline;
  for (const int threads : {1, 2, 4, 8}) {
    const exec::ConcurrencyLimit limit(threads);
    const bench::Stopwatch timer;
    ensemble::EnsembleReport report = ensemble::run_ensemble(inputs, config);
    const double s = timer.seconds();
    const std::uint64_t fp = fingerprint(report);
    if (threads == 1) {
      reference_fp = fp;
      baseline_user_hours = report.expected_user_hours;
      baseline = std::move(report);
    } else if (fp != reference_fp) {
      identical = false;
    }
    const double rate = s > 0.0 ? static_cast<double>(config.members) / s : 0.0;
    rows.push_back({threads, s, rate});
    std::printf("  %d thread%s  %7.3fs  %8.1f members/s%s\n", threads,
                threads == 1 ? " " : "s", s, rate,
                fp == reference_fp ? "" : "  FP MISMATCH");
  }
  std::printf("thread-count invariance: %s\n",
              identical ? "bit-identical" : "DIVERGED");

  // -- phase 2: greedy hardening vs random vs unhardened ----------------
  const ensemble::HardenConfig harden;
  const ensemble::HardeningPlan greedy =
      ensemble::optimize_hardening(inputs, baseline, harden);
  const ensemble::HardeningPlan random =
      ensemble::random_hardening(inputs, harden, config.seed);
  const double greedy_user_hours =
      ensemble::run_ensemble(inputs, config, &greedy).expected_user_hours;
  const double random_user_hours =
      ensemble::run_ensemble(inputs, config, &random).expected_user_hours;
  const bool beats_random = greedy_user_hours < random_user_hours;
  const bool beats_baseline = greedy_user_hours < baseline_user_hours;
  std::printf(
      "hardening (budget %u): baseline %.3e uh, greedy %.3e uh "
      "(predicted -%.3e), random %.3e uh\n",
      harden.budget, baseline_user_hours, greedy_user_hours,
      greedy.predicted_savings, random_user_hours);
  std::printf("optimizer gate: greedy %s random, %s baseline\n",
              beats_random ? "beats" : "LOSES TO",
              beats_baseline ? "beats" : "LOSES TO");

  io::JsonObject payload;
  payload["members"] = static_cast<std::size_t>(config.members);
  payload["sites"] = inputs.sites.size();
  payload["identical"] = identical;
  payload["baseline_user_hours"] = baseline_user_hours;
  payload["greedy_user_hours"] = greedy_user_hours;
  payload["random_user_hours"] = random_user_hours;
  payload["predicted_savings"] = greedy.predicted_savings;
  payload["optimizer_beats_random"] = beats_random;
  payload["optimizer_beats_baseline"] = beats_baseline;
  io::JsonArray threads;
  for (const Row& row : rows) {
    io::JsonObject r;
    r["threads"] = row.threads;
    r["seconds"] = row.seconds;
    r["members_per_s"] = row.members_per_s;
    threads.push_back(io::JsonValue{std::move(r)});
  }
  payload["threads"] = io::JsonValue{std::move(threads)};
  bench::print_json_trailer("ensemble", io::JsonValue{std::move(payload)},
                            &run_timer);
  return identical && beats_random && beats_baseline ? 0 : 1;
}

// Quantifies the Section 3.4 miss mechanism: roadside transceivers sit
// in cells the WHP calls low-risk even when the surrounding terrain
// burns. Prints the roadside-vs-interior flag rates and the share of
// unflagged roadside towers a neighborhood (half-mile-style) test would
// recover — plus the DIRS filing view of the same event.
#include <cstdio>

#include "bench_common.hpp"
#include "core/roadside.hpp"
#include "firesim/dirs.hpp"

int main() {
  using namespace fa;
  core::AnalysisContext& ctx = bench::bench_context("Roadside shadow analysis + DIRS filings (Sections 3.2/3.4)");
  const core::World& world = ctx.world();

  bench::Stopwatch timer;
  const core::RoadsideResult r = core::run_roadside_shadow(world, 4);

  core::TextTable table({"Population", "Transceivers", "WHP-flagged",
                         "Flag rate"});
  table.add_row({"roadside (<=3 km of corridor)", core::fmt_count(r.roadside),
                 core::fmt_count(r.roadside_flagged),
                 core::fmt_pct(r.roadside_flag_rate())});
  table.add_row({"interior", core::fmt_count(r.interior),
                 core::fmt_count(r.interior_flagged),
                 core::fmt_pct(r.interior_flag_rate())});
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "shadowed roadside transceivers (unflagged, at-risk terrain within "
      "2.7 km): %s\n=> a neighborhood test recovers %s of the unflagged "
      "roadside population —\nthe same lever as the paper's half-mile "
      "extension (Section 3.8).\n\n",
      core::fmt_count(r.roadside_shadowed).c_str(),
      core::fmt_pct(r.shadow_share()).c_str());

  // DIRS activation view of the 2019 event.
  const firesim::DirsActivation activation = firesim::run_dirs_activation(
      world.corpus(), world.whp(), world.atlas(), world.counties(),
      world.config().seed);
  std::printf("DIRS activation: %s filings, %s counties, %s providers "
              "reporting (2019 real event: 37 counties)\n",
              core::fmt_count(activation.filings.size()).c_str(),
              core::fmt_count(activation.counties_covered).c_str(),
              core::fmt_count(activation.providers_reporting).c_str());
  core::TextTable worst({"County (peak outage)", "State", "Sites out"});
  const auto counties = activation.worst_counties();
  for (std::size_t i = 0; i < counties.size() && i < 6; ++i) {
    const synth::County& county = world.counties().county(counties[i].first);
    worst.add_row(
        {county.name,
         std::string{world.atlas()
                         .states()[static_cast<std::size_t>(county.state)]
                         .abbr},
         core::fmt_count(counties[i].second)});
  }
  std::printf("%s\n", worst.str().c_str());
  std::printf("elapsed: %.2fs\n", timer.seconds());

  bench::print_json_trailer(
      "roadside_shadow",
      io::JsonObject{{"roadside_flag_rate", r.roadside_flag_rate()},
                     {"interior_flag_rate", r.interior_flag_rate()},
                     {"shadow_share", r.shadow_share()},
                     {"dirs_filings", activation.filings.size()},
                     {"dirs_counties", activation.counties_covered}}, &timer);
  return 0;
}

// Reproduces Figures 14-15: ecoregion burn-area projections for the Salt
// Lake City - Denver corridor (Littell et al.) overlaid with current
// cellular infrastructure and today's WHP risk.
#include <cstdio>

#include "bench_common.hpp"
#include "core/climate.hpp"
#include "core/maps.hpp"

int main() {
  using namespace fa;
  core::AnalysisContext& ctx = bench::bench_context("Figures 14-15: SLC-Denver corridor climate projection");
  const core::World& world = ctx.world();

  bench::Stopwatch timer;
  const core::ClimateResult r = core::run_climate_projection(world);

  std::printf("corridor: lon [%.1f, %.1f], lat [%.1f, %.1f] — %s "
              "transceivers\n\n",
              r.corridor.min_x, r.corridor.max_x, r.corridor.min_y,
              r.corridor.max_y,
              core::fmt_count(r.corridor_transceivers).c_str());

  std::printf("Figure 14 — ecoregion projections with current infrastructure "
              "(paper: +240%% max, -119%% min):\n");
  core::TextTable table({"Ecoregion", "dBurn 2040", "Transceivers",
                         "At risk now", "Projected exposure"});
  io::JsonArray rows;
  for (const core::EcoregionRiskRow& row : r.rows) {
    table.add_row({row.name,
                   core::fmt_double(row.delta_burn_pct_2040, 0) + "%",
                   core::fmt_count(row.transceivers),
                   core::fmt_count(row.at_risk),
                   core::fmt_double(row.projected_exposure(), 0)});
    rows.push_back(io::JsonObject{{"name", row.name},
                                  {"delta_pct", row.delta_burn_pct_2040},
                                  {"transceivers", row.transceivers},
                                  {"at_risk", row.at_risk}});
  }
  std::printf("%s\n", table.str().c_str());

  // Figure 15 context: corridor transceiver density map.
  std::vector<geo::Vec2> corridor_points;
  world.txr_index().query(r.corridor, [&](std::uint32_t, geo::Vec2 p) {
    corridor_points.push_back(p);
  });
  std::printf("Figure 15 — corridor infrastructure (SLC left, Denver right; "
              "I-80 string visible along the top):\n%s\n",
              core::render_ascii_density(corridor_points, r.corridor, 100, 20)
                  .c_str());
  std::printf(
      "shape checks: infrastructure concentrates in the metro ecoregions;\n"
      "the +240%% Wyoming-Basin band holds the I-80 corridor string whose\n"
      "future exposure multiplies fastest (the paper's key concern).\n");
  std::printf("elapsed: %.2fs\n", timer.seconds());

  bench::print_json_trailer("fig14_15_climate", io::JsonValue{std::move(rows)}, &timer);
  return 0;
}

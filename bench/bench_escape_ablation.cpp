// Ablation of the Section 3.11 extension: escape-probability-weighted
// risk (HOT framework, Moritz et al.) vs the paper's plain WHP flags.
// Shows which states move when spread-into-lower-risk-terrain is modelled
// and how strongly the two rankings agree.
#include <cstdio>

#include "bench_common.hpp"
#include "core/escape.hpp"
#include "core/whp_overlay.hpp"

int main() {
  using namespace fa;
  core::AnalysisContext& ctx = bench::bench_context("Section 3.11 extension: HOT escape-probability weighting");
  const core::World& world = ctx.world();

  bench::Stopwatch timer;
  const core::EscapeResult escape = core::run_escape_risk(world, 8);
  const core::WhpOverlayResult overlay = core::run_whp_overlay(world);
  const auto& states = world.atlas().states();

  std::printf("state ranking: plain WHP at-risk count vs escape-weighted "
              "mean score (top 10)\n");
  core::TextTable table({"Rank", "WHP ranking", "Escape-weighted ranking",
                         "Mean score"});
  const auto whp_rank = overlay.rank_by_at_risk();
  const auto esc_rank = escape.rank();
  for (int i = 0; i < 10; ++i) {
    table.add_row(
        {std::to_string(i + 1),
         std::string{states[static_cast<std::size_t>(whp_rank[i])].name},
         std::string{states[static_cast<std::size_t>(esc_rank[i])].name},
         core::fmt_double(
             escape.states[static_cast<std::size_t>(esc_rank[i])].mean_score,
             4)});
  }
  std::printf("%s\n", table.str().c_str());

  const double rho = core::escape_vs_whp_rank_correlation(world, escape);
  std::printf("Spearman rank correlation (states): %.3f\n", rho);
  std::printf(
      "reading: high correlation confirms WHP flags already capture most of\n"
      "the escape-weighted ordering; the residual movement is states whose\n"
      "infrastructure sits in low-risk pockets surrounded by high-risk\n"
      "terrain — exactly the gap Section 3.4's validation identified.\n");

  // Alpha sensitivity: heavier tails (smaller alpha) raise long-range risk.
  std::printf("\nalpha sensitivity (HOT tail exponent):\n");
  core::TextTable sweep({"alpha", "Top state", "Rank correlation vs WHP"});
  for (const double alpha : {0.4, 0.62, 0.9}) {
    core::EscapeConfig cfg;
    cfg.alpha = alpha;
    const core::EscapeResult e = core::run_escape_risk(world, 32, cfg);
    sweep.add_row(
        {core::fmt_double(alpha, 2),
         std::string{states[static_cast<std::size_t>(e.rank()[0])].name},
         core::fmt_double(core::escape_vs_whp_rank_correlation(world, e), 3)});
  }
  std::printf("%s\n", sweep.str().c_str());
  std::printf("elapsed: %.2fs\n", timer.seconds());

  bench::print_json_trailer(
      "escape_ablation",
      io::JsonObject{{"rank_correlation", rho},
                     {"top_state_whp",
                      std::string{states[static_cast<std::size_t>(whp_rank[0])].abbr}},
                     {"top_state_escape",
                      std::string{states[static_cast<std::size_t>(esc_rank[0])].abbr}}}, &timer);
  return 0;
}

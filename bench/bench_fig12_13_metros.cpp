// Reproduces Figure 12 (metro areas ranked by at-risk transceivers) and
// the Figure 13 observation (risk grows with distance from the metro
// center — the WUI gradient).
#include <cstdio>

#include "bench_common.hpp"
#include "core/metro.hpp"

int main() {
  using namespace fa;
  core::AnalysisContext& ctx = bench::bench_context("Figures 12-13: metro-area exposure");
  const core::World& world = ctx.world();

  bench::Stopwatch timer;
  const auto rows = core::run_metro_risk(world);

  std::printf("Figure 12 — metros ranked by at-risk transceivers (top 14)\n");
  std::printf("(paper highlights: LA, Miami, San Diego, Bay Area, Phoenix; "
              "most metros have M > H > VH)\n");
  core::TextTable table({"Rank", "Metro", "St", "Moderate", "High",
                         "Very High", "Total"});
  io::JsonArray json_rows;
  for (std::size_t i = 0; i < rows.size() && i < 14; ++i) {
    const core::MetroRiskRow& row = rows[i];
    table.add_row({std::to_string(i + 1), row.metro, row.state_abbr,
                   core::fmt_count(row.moderate), core::fmt_count(row.high),
                   core::fmt_count(row.very_high),
                   core::fmt_count(row.total())});
    json_rows.push_back(io::JsonObject{{"metro", row.metro},
                                       {"state", row.state_abbr},
                                       {"total", row.total()}});
  }
  std::printf("%s\n", table.str().c_str());

  std::printf("Figure 13 — at-risk share vs distance from the Los Angeles "
              "center (WUI gradient):\n");
  core::TextTable gradient({"Ring (km)", "Transceivers", "At risk", "Share"});
  for (const core::MetroRing& ring :
       core::metro_risk_gradient(world, {-118.244, 34.052})) {
    gradient.add_row(
        {core::fmt_double(ring.inner_m / 1000.0, 0) + "-" +
             core::fmt_double(ring.outer_m / 1000.0, 0),
         core::fmt_count(ring.transceivers), core::fmt_count(ring.at_risk),
         core::fmt_pct(ring.at_risk_share())});
  }
  std::printf("%s\n", gradient.str().c_str());
  std::printf("shape check: the share column rises away from the core "
              "(no risk downtown, rising through the suburbs).\n");
  std::printf("elapsed: %.2fs\n", timer.seconds());

  bench::print_json_trailer("fig12_13_metros",
                            io::JsonValue{std::move(json_rows)}, &timer);
  return 0;
}
